//! Social-network exploration — the paper's second motivating scenario.
//!
//! "In social network exploratory, queries could start off broad (e.g.,
//! all people in a geographic location) and become gradually narrower
//! (e.g., by homing in on specific demographics)." Meanwhile groups form,
//! dissolve and rewire: "newly added groups, break-up of existed groups,
//! and the changed relations/interactions among group members are
//! frequently happening."
//!
//! This example models a dataset of *group interaction graphs* (vertices =
//! member roles, labeled by demographic bucket; edges = interactions). An
//! analyst drills down with a chain of increasingly specific patterns —
//! each a supergraph of the previous query — while the groups churn.
//! GC+'s exclusion hits shine here: once a narrow pattern has an answer,
//! broader-to-narrower refinements are answered mostly from cache.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use graphcache_plus::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Demographic buckets used as vertex labels.
const BUCKETS: u16 = 6;

/// A random group-interaction graph: 8–40 members, sparse interactions.
fn random_group(rng: &mut StdRng) -> LabeledGraph {
    let n = rng.random_range(8..40usize);
    let extra = rng.random_range(1..n / 2);
    gc_graph::generate::random_connected_graph(rng, n, extra, |r| r.random_range(0..BUCKETS))
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2017);
    let groups: Vec<LabeledGraph> = (0..300).map(|_| random_group(&mut rng)).collect();
    println!("dataset: {} interaction groups", groups.len());

    let mut gc = GraphCachePlus::new(GcConfig::default(), groups.clone());

    // The analyst's drill-down: start from a 3-edge pattern extracted from
    // a real group, then *extend* it edge by edge (each refinement is a
    // supergraph of the previous query).
    let source = &groups[42];
    let broad = gc_graph::generate::bfs_extract(&mut rng, source, 0, 3).expect("extractable");
    let mut refinements = vec![broad.clone()];
    for size in [5usize, 8, 11, 14] {
        let q = gc_graph::generate::bfs_extract(&mut rng, source, 0, size).expect("extractable");
        refinements.push(q);
    }

    println!("\n-- drill-down session #1 (static dataset) --");
    for (step, q) in refinements.iter().enumerate() {
        let out = gc.execute(q, QueryKind::Subgraph);
        println!(
            "step {step}: pattern |E|={:2} → {:3} matching groups, {:3} sub-iso tests ({} saved)",
            q.edge_count(),
            out.answer.count_ones(),
            out.metrics.subiso_tests,
            out.metrics.tests_saved,
        );
    }

    // Group churn: two groups dissolve, one forms, interactions rewire.
    println!("\n-- group churn --");
    gc.apply(ChangeOp::Del(17)).unwrap();
    gc.apply(ChangeOp::Del(23)).unwrap();
    let fresh = random_group(&mut rng);
    let new_id = gc.apply(ChangeOp::Add(fresh)).unwrap();
    println!("groups 17 and 23 dissolved; new group {new_id} formed");
    // rewiring inside group 42: one interaction ends, a new one starts
    let (u, v) = groups[42].edges().next().expect("has edges");
    gc.apply(ChangeOp::Ur { id: 42, u, v }).unwrap();
    let w = (groups[42].vertex_count() - 1) as u32;
    if !groups[42].has_edge(0, w) {
        gc.apply(ChangeOp::Ua { id: 42, u: 0, v: w }).unwrap();
    }

    // Re-run the drill-down: CON keeps all knowledge not invalidated by
    // the churn; answers remain exact.
    println!("\n-- drill-down session #2 (after churn) --");
    let oracle = MethodM::new(Algorithm::Vf2Plus);
    for (step, q) in refinements.iter().enumerate() {
        let out = gc.execute(q, QueryKind::Subgraph);
        let truth = baseline_execute(gc.store(), &oracle, q, QueryKind::Subgraph);
        assert_eq!(out.answer, truth.answer, "GC+ must stay exact under churn");
        println!(
            "step {step}: {:3} matching groups, {:3} sub-iso tests ({} saved) — exact ✓",
            out.answer.count_ones(),
            out.metrics.subiso_tests,
            out.metrics.tests_saved,
        );
    }

    let agg = gc.aggregate_metrics();
    println!(
        "\nsession total: {} queries, {} tests executed, {} tests alleviated by cache",
        agg.queries, agg.total_tests, agg.total_tests_saved
    );
}
