//! Biochemical motif screening — the paper's first motivating scenario.
//!
//! "In protein datasets, there is a hierarchy of queries for aminoacids,
//! proteins, protein mixtures, …" and "biochemical datasets keep
//! refreshing by newly-translated, disregarded or transformed proteins."
//!
//! This example screens an AIDS-like molecule dataset with a *hierarchy*
//! of structural motifs (small motifs contained in larger ones), using
//! **supergraph queries** as well: given a large candidate scaffold, find
//! all dataset fragments contained in it. The dataset refreshes between
//! screening rounds (new compounds translated in, obsolete ones dropped,
//! bonds corrected), exercising the CON validity machinery in both
//! answer-polarity directions.
//!
//! ```text
//! cargo run --release --example protein_motifs
//! ```

use graphcache_plus::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1996);
    let compounds = synthetic_aids(&AidsConfig::scaled(400, 11));
    println!(
        "compound library: {} molecules\n{}",
        compounds.len(),
        gc_graph::stats::DatasetStats::compute(&compounds)
    );

    let mut gc = GraphCachePlus::new(
        GcConfig {
            method: MethodM::new(Algorithm::GraphQl),
            ..GcConfig::default()
        },
        compounds.clone(),
    );

    // A motif hierarchy extracted from one scaffold compound: 4-edge core,
    // 8-edge ring system, 12-edge extended system, 16-edge scaffold.
    let scaffold_src = &compounds[99];
    let motifs: Vec<LabeledGraph> = [4usize, 8, 12, 16]
        .iter()
        .map(|&size| {
            gc_graph::generate::bfs_extract(&mut rng, scaffold_src, 2, size)
                .expect("scaffold supports motif sizes")
        })
        .collect();

    println!("\n== screening round 1: subgraph queries (which compounds contain each motif?) ==");
    for (i, m) in motifs.iter().enumerate() {
        let out = gc.execute(m, QueryKind::Subgraph);
        println!(
            "motif {i} (|E|={:2}): {:3} compounds contain it  [{:3} tests, {:3} saved]",
            m.edge_count(),
            out.answer.count_ones(),
            out.metrics.subiso_tests,
            out.metrics.tests_saved
        );
    }

    println!(
        "\n== screening round 2: supergraph queries (which fragments fit in the scaffold?) =="
    );
    // fragment library: each compound trimmed to its first 6 edges
    for (i, m) in motifs.iter().enumerate().rev() {
        let out = gc.execute(m, QueryKind::Supergraph);
        println!(
            "scaffold {i} (|E|={:2}): {:3} library entries contained in it  [{:3} tests, {:3} saved]",
            m.edge_count(),
            out.answer.count_ones(),
            out.metrics.subiso_tests,
            out.metrics.tests_saved
        );
    }

    // Library refresh: translate in 5 new compounds, disregard 5, and
    // correct bonds (UA/UR) in a few entries.
    println!("\n== library refresh ==");
    for (k, compound) in compounds.iter().take(5).enumerate() {
        gc.apply(ChangeOp::Add(compound.clone())).unwrap();
        gc.apply(ChangeOp::Del(300 + k)).unwrap();
    }
    let mut corrected = 0;
    for id in [10usize, 20, 30] {
        let g = gc.store().get(id).expect("live").clone();
        let first_edge = g.edges().next();
        if let Some((u, v)) = first_edge {
            gc.apply(ChangeOp::Ur { id, u, v }).unwrap();
            corrected += 1;
        }
    }
    println!("5 compounds added, 5 disregarded, {corrected} bond corrections");

    println!("\n== screening round 3: repeat both directions after the refresh ==");
    let oracle = MethodM::new(Algorithm::Vf2);
    for (i, m) in motifs.iter().enumerate() {
        for kind in [QueryKind::Subgraph, QueryKind::Supergraph] {
            let out = gc.execute(m, kind);
            let truth = baseline_execute(gc.store(), &oracle, m, kind);
            assert_eq!(
                out.answer, truth.answer,
                "stale answer for motif {i} ({kind:?})"
            );
            println!(
                "motif {i} {:10}: {:3} answers, {:3} tests ({:3} saved) — exact ✓",
                kind.name(),
                out.answer.count_ones(),
                out.metrics.subiso_tests,
                out.metrics.tests_saved
            );
        }
    }

    let agg = gc.aggregate_metrics();
    println!(
        "\ntotals: {} queries | {} tests executed | {} alleviated | {} exact-match shortcuts",
        agg.queries, agg.total_tests, agg.total_tests_saved, agg.exact_shortcuts
    );
}
