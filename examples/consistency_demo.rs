//! EVI vs CON vs a (deliberately broken) stale cache, head to head.
//!
//! This example demonstrates *why* cache consistency needs the paper's
//! machinery. Three systems process the same query stream over the same
//! churning dataset:
//!
//! 1. **STALE** — a GC-style cache that ignores dataset changes (what you
//!    get if you deploy the original GraphCache against a dynamic
//!    dataset). It returns wrong answers; we count them.
//! 2. **EVI** — correct, by evicting everything on every change.
//! 3. **CON** — correct, by per-graph validity (Algorithms 1 & 2), while
//!    saving far more sub-iso tests than EVI.
//!
//! ```text
//! cargo run --release --example consistency_demo
//! ```

use graphcache_plus::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A minimal stale cache: remembers every (query, answer) pair forever and
/// replays it on exact repeat — with no invalidation whatsoever.
struct StaleCache {
    store: GraphStore,
    memo: Vec<(LabeledGraph, BitSet)>,
    method: MethodM,
    tests: u64,
    wrong: u64,
}

impl StaleCache {
    fn execute(&mut self, q: &LabeledGraph) -> BitSet {
        if let Some((_, a)) = self.memo.iter().find(|(g, _)| g == q) {
            let answer = a.clone();
            // ground truth for error accounting
            let truth = self.method.run(
                q,
                QueryKind::Subgraph,
                &self.store,
                &self.store.live_bitset(),
            );
            if truth.answer != answer {
                self.wrong += 1;
            }
            return answer;
        }
        let r = self.method.run(
            q,
            QueryKind::Subgraph,
            &self.store,
            &self.store.live_bitset(),
        );
        self.tests += r.tests;
        self.memo.push((q.clone(), r.answer.clone()));
        r.answer
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let dataset = synthetic_aids(&AidsConfig::scaled(150, 5));

    // a pool of 12 queries replayed Zipf-style (repeats are the point)
    let pool: Vec<LabeledGraph> = (0..12)
        .map(|i| {
            let src = &dataset[i * 3];
            let size = [4usize, 6, 8][i % 3];
            gc_graph::generate::bfs_extract(&mut rng, src, 0, size).expect("extractable")
        })
        .collect();
    let zipf = Zipf::new(pool.len(), 1.4);

    let cfg = |model| GcConfig {
        model,
        method: MethodM::new(Algorithm::Vf2Plus),
        ..GcConfig::default()
    };
    let mut evi = GraphCachePlus::new(cfg(CacheModel::Evi), dataset.clone());
    let mut con = GraphCachePlus::new(cfg(CacheModel::Con), dataset.clone());
    let mut stale = StaleCache {
        store: GraphStore::from_graphs(dataset.clone()),
        memo: Vec::new(),
        method: MethodM::new(Algorithm::Vf2Plus),
        tests: 0,
        wrong: 0,
    };

    let mut divergences = 0u64;
    for step in 0..400 {
        // churn every 10 queries: one UR + one UA somewhere
        if step % 10 == 9 {
            let live: Vec<usize> = con.store().iter_live().map(|(i, _)| i).collect();
            let id = live[rng.random_range(0..live.len())];
            let g = con.store().get(id).expect("live").clone();
            let first_edge = g.edges().next();
            if let Some((u, v)) = first_edge {
                for sys in [&mut evi, &mut con] {
                    sys.apply(ChangeOp::Ur { id, u, v }).unwrap();
                }
                stale.store.remove_edge(id, u, v).unwrap();
            }
        }
        let q = &pool[zipf.sample(&mut rng)];
        let a_evi = evi.execute(q, QueryKind::Subgraph).answer;
        let a_con = con.execute(q, QueryKind::Subgraph).answer;
        let a_stale = stale.execute(q);
        assert_eq!(a_evi, a_con, "both correct models must agree");
        if a_stale != a_con {
            divergences += 1;
        }
    }

    let (e, c) = (evi.aggregate_metrics(), con.aggregate_metrics());
    println!("400 Zipf-replayed queries over a dataset churning every 10 queries\n");
    println!("| system | sub-iso tests | tests saved | wrong answers |");
    println!("|--------|---------------|-------------|---------------|");
    println!(
        "| STALE  | {:13} | {:11} | {:13} |",
        stale.tests, "-", stale.wrong
    );
    println!(
        "| EVI    | {:13} | {:11} | {:13} |",
        e.total_tests, e.total_tests_saved, 0
    );
    println!(
        "| CON    | {:13} | {:11} | {:13} |",
        c.total_tests, c.total_tests_saved, 0
    );
    println!(
        "\nstale cache diverged from ground truth on {divergences} of 400 queries \
         — the failure mode GC+ exists to prevent."
    );
    println!(
        "CON executed {:.1}% of EVI's sub-iso tests while staying exact.",
        100.0 * c.total_tests as f64 / e.total_tests.max(1) as f64
    );
    assert!(stale.wrong > 0, "demo should exhibit staleness");
    assert!(c.total_tests <= e.total_tests);
}
