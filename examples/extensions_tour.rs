//! Tour of the §8 future-work extensions implemented in this repo:
//! CON-R retrospective validation, the updatable FTV filter, and the
//! sharded (decentralized) deployment — all stacked, all exact.
//!
//! ```text
//! cargo run --release --example extensions_tour
//! ```

use graphcache_plus::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = synthetic_aids(&AidsConfig::scaled(300, 99));
    let mut rng = StdRng::seed_from_u64(7);
    let query = gc_graph::generate::bfs_extract(&mut rng, &dataset[10], 0, 8)
        .expect("graph 10 supports an 8-edge query");

    // ---- 1. CON vs CON-R under churn that cancels out ----
    println!("== CON vs CON-R: net-neutral churn (UR then UA of the same edge) ==");
    for model in [CacheModel::Con, CacheModel::ConRetro] {
        let mut gc = GraphCachePlus::new(
            GcConfig {
                model,
                method: MethodM::new(Algorithm::Vf2Plus),
                ..GcConfig::default()
            },
            dataset.clone(),
        );
        gc.execute(&query, QueryKind::Subgraph); // warm the cache
                                                 // oscillate an edge on 30 graphs — dataset ends bit-identical
        for id in 0..30usize {
            let g = gc.store().get(id).expect("live").clone();
            let first_edge = g.edges().next();
            if let Some((u, v)) = first_edge {
                gc.apply(ChangeOp::Ur { id, u, v }).unwrap();
                gc.apply(ChangeOp::Ua { id, u, v }).unwrap();
            }
        }
        let out = gc.execute(&query, QueryKind::Subgraph);
        println!(
            "  {:6} → {:3} sub-iso tests on repeat (exact-match shortcut: {})",
            model.name(),
            out.metrics.subiso_tests,
            out.metrics.hits.exact_shortcut
        );
    }

    // ---- 2. scan-backed vs index-backed CS_M ----
    println!("\n== full-scan vs postings-index candidate sets ==");
    for source in [CandidateSource::LiveScan, CandidateSource::LabelIndex] {
        let mut gc = GraphCachePlus::new(
            GcConfig {
                candidate_source: source,
                method: MethodM::new(Algorithm::Vf2Plus),
                ..GcConfig::default()
            },
            dataset.clone(),
        );
        let out = gc.execute(&query, QueryKind::Subgraph);
        println!(
            "  {:10} → |CS_M| = {:3}, {:3} tests, {:2} answers",
            source.name(),
            out.metrics.candidate_size,
            out.metrics.subiso_tests,
            out.answer.count_ones()
        );
    }

    // ---- 3. sharded deployment with threaded fan-out ----
    println!("\n== sharded GC+ (3 shards, threaded fan-out) ==");
    let mut sharded =
        ShardedGraphCache::new(GcConfig::default(), dataset.clone(), 3).with_parallel_fanout(true);
    let mut flat = GraphCachePlus::new(GcConfig::default(), dataset.clone());
    let sharded_out = sharded.execute(&query, QueryKind::Subgraph);
    let flat_out = flat.execute(&query, QueryKind::Subgraph);
    assert_eq!(sharded_out.answer, flat_out.answer);
    println!(
        "  3 shards answered {} graphs — identical to the single instance: {}",
        sharded_out.answer.count_ones(),
        sharded_out.answer == flat_out.answer
    );
    // a change routed to one shard, then an exact repeat
    sharded.apply(ChangeOp::Del(10)).unwrap();
    flat.apply(ChangeOp::Del(10)).unwrap();
    let again = sharded.execute(&query, QueryKind::Subgraph);
    let flat_again = flat.execute(&query, QueryKind::Subgraph);
    assert_eq!(again.answer, flat_again.answer);
    println!(
        "  after deleting the query's source graph: {} answers (still exact)",
        again.answer.count_ones()
    );

    // ---- 4. canonical forms for isomorphism-class statistics ----
    println!("\n== canonical forms ==");
    let w = generate_type_a(&dataset, &TypeAConfig::zz(300, 3));
    println!(
        "  ZZ stream: {} queries, {} distinct isomorphism classes — repetition the exact-match optimal case exploits",
        w.len(),
        w.distinct_queries()
    );
}
