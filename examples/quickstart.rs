//! Quickstart: build a small molecule-like dataset, run subgraph queries
//! through GraphCache+ while the dataset changes, and watch the cache
//! save sub-iso tests without ever returning a stale answer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graphcache_plus::prelude::*;

fn main() {
    // 1. A synthetic AIDS-like dataset of 200 molecule graphs
    //    (≈45 vertices, ≈47 edges each, 62-symbol Zipf label alphabet).
    let dataset = synthetic_aids(&AidsConfig::scaled(200, 42));
    println!("dataset: {} graphs", dataset.len());

    // 2. GC+ with the paper's defaults: CON consistency model, HD
    //    replacement policy, cache 100 / window 20, VF2 as Method M.
    let mut gc = GraphCachePlus::new(GcConfig::default(), dataset.clone());

    // 3. Extract a query from dataset graph 7 (so it has answers), then
    //    run it twice: the second run is answered by the cache without a
    //    single subgraph-isomorphism test.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let query = gc_graph::generate::bfs_extract(&mut rng, &dataset[7], 0, 8)
        .expect("graph 7 has at least 8 edges");

    let first = gc.execute(&query, QueryKind::Subgraph);
    println!(
        "first run : {:3} answers, {:4} sub-iso tests, {:?}",
        first.answer.count_ones(),
        first.metrics.subiso_tests,
        first.metrics.query_time
    );

    let second = gc.execute(&query, QueryKind::Subgraph);
    println!(
        "second run: {:3} answers, {:4} sub-iso tests (exact-match shortcut: {}), {:?}",
        second.answer.count_ones(),
        second.metrics.subiso_tests,
        second.metrics.hits.exact_shortcut,
        second.metrics.query_time
    );
    assert_eq!(first.answer, second.answer);
    assert_eq!(second.metrics.subiso_tests, 0);

    // 4. The dataset changes: delete a graph, add a new one, flip edges.
    gc.apply(ChangeOp::Del(3)).unwrap();
    gc.apply(ChangeOp::Add(dataset[11].clone())).unwrap();
    let (u, v) = dataset[5].edges().next().expect("graph 5 has edges");
    gc.apply(ChangeOp::Ur { id: 5, u, v }).unwrap();

    // 5. Re-run: CON refreshed the cached validity bits (Algorithms 1+2),
    //    so the still-valid knowledge keeps pruning and the answer is
    //    exact for the *changed* dataset.
    let third = gc.execute(&query, QueryKind::Subgraph);
    let truth = baseline_execute(
        gc.store(),
        &MethodM::new(Algorithm::Vf2),
        &query,
        QueryKind::Subgraph,
    );
    println!(
        "after churn: {:3} answers, {:4} sub-iso tests (saved {:4}) — matches ground truth: {}",
        third.answer.count_ones(),
        third.metrics.subiso_tests,
        third.metrics.tests_saved,
        third.answer == truth.answer
    );
    assert_eq!(third.answer, truth.answer);

    // 6. Aggregate metrics, the quantities behind the paper's figures.
    let agg = gc.aggregate_metrics();
    println!(
        "\ntotals: {} queries, {} tests run, {} tests saved, {} exact-match shortcut(s)",
        agg.queries, agg.total_tests, agg.total_tests_saved, agg.exact_shortcuts
    );
}
