//! # GraphCache+ — consistency-preserving caching for graph-pattern queries
//!
//! A Rust reproduction of *"Ensuring Consistency in Graph Cache for
//! Graph-Pattern Queries"* (Wang, Ntarmos, Triantafillou — EDBT/ICDT 2017
//! Workshops).
//!
//! Subgraph/supergraph queries over a dataset of labeled graphs entail the
//! NP-complete subgraph isomorphism problem. GraphCache+ (GC+) caches
//! previously executed queries together with their answer sets and uses
//! subgraph/supergraph relationships between new and cached queries to
//! prune the candidate set — while the dataset *changes underneath* (graph
//! additions/deletions, edge additions/removals). Two consistency models
//! are provided: **EVI** (evict everything on change) and **CON**
//! (fine-grained per-graph validity bits refreshed from the dataset change
//! log — the paper's Algorithms 1 & 2).
//!
//! This crate re-exports the workspace's public API:
//!
//! * [`graph`] — labeled graphs, bitsets, generators ([`gc_graph`]);
//! * [`subiso`] — VF2 / VF2+ / GraphQL matchers and Method M
//!   ([`gc_subiso`]);
//! * [`dataset`] — dynamic graph store, change log, log analyzer, change
//!   plans, the synthetic AIDS dataset ([`gc_dataset`]);
//! * [`workload`] — the paper's Type A / Type B query workload generators
//!   ([`gc_workload`]);
//! * [`cache`] — the GraphCache+ system itself ([`gc_core`]).
//!
//! ## Quickstart
//!
//! ```
//! use graphcache_plus::prelude::*;
//!
//! // a tiny dataset: three labeled graphs
//! let dataset = vec![
//!     LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
//!     LabeledGraph::from_parts(vec![0, 0, 1], &[(0, 1), (1, 2)]).unwrap(),
//!     LabeledGraph::from_parts(vec![1, 1], &[(0, 1)]).unwrap(),
//! ];
//! let mut gc = GraphCachePlus::new(GcConfig::default(), dataset);
//!
//! // subgraph query: which dataset graphs contain a 0–0 edge?
//! let q = LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap();
//! let out = gc.execute(&q, QueryKind::Subgraph);
//! assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
//!
//! // the dataset changes; GC+ keeps its answers exact
//! gc.apply(ChangeOp::Del(0)).unwrap();
//! let out = gc.execute(&q, QueryKind::Subgraph);
//! assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![1]);
//! ```

pub use gc_core as cache;
pub use gc_dataset as dataset;
pub use gc_graph as graph;
pub use gc_subiso as subiso;
pub use gc_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use gc_core::runtime::ftv_baseline_execute;
    pub use gc_core::{
        baseline_execute, CacheModel, CandidateSource, ConcurrentGraphCache, GcConfig,
        GraphCachePlus, MaintenanceMode, Policy, QueryOutcome, ShardedGraphCache,
    };
    pub use gc_dataset::{
        aids::{synthetic_aids, AidsConfig},
        ChangeLog, ChangeOp, ChangePlan, ChangePlanConfig, GraphStore, LabelIndex, PlanExecutor,
        RetroAnalyzer,
    };
    pub use gc_graph::{BitSet, GraphSource, Label, LabeledGraph, VertexId, Zipf};
    pub use gc_subiso::{Algorithm, MethodM, QueryKind, SubgraphMatcher};
    pub use gc_workload::{generate_type_a, generate_type_b, TypeAConfig, TypeBConfig, Workload};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_wires_up() {
        let dataset = vec![LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap()];
        let mut gc = GraphCachePlus::new(GcConfig::default(), dataset);
        let q = LabeledGraph::from_parts(vec![0], &[]).unwrap();
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(out.answer.count_ones(), 1);
    }
}
