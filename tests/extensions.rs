//! Workspace-level tests of the three §8 extensions working *together*:
//! a sharded deployment whose shards run CON-R over FTV-filtered candidate
//! sets, checked against a flat cache-less ground truth under churn.

use graphcache_plus::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn extended_config() -> GcConfig {
    GcConfig {
        model: CacheModel::ConRetro,
        candidate_source: CandidateSource::LabelIndex,
        method: MethodM::new(Algorithm::Vf2Plus),
        ..GcConfig::default()
    }
}

#[test]
fn all_extensions_stacked_stay_exact() {
    let mut rng = StdRng::seed_from_u64(2024);
    let dataset = synthetic_aids(&AidsConfig::scaled(90, 77));
    let mut sharded =
        ShardedGraphCache::new(extended_config(), dataset.clone(), 3).with_parallel_fanout(true);
    let mut flat_store = GraphStore::from_graphs(dataset.clone());
    let oracle = MethodM::new(Algorithm::Vf2);

    for step in 0..60 {
        // churn: oscillating UR+UA (CON-R's target), occasional DEL/ADD
        if step % 4 == 1 {
            let pick = loop {
                let id = rng.random_range(0..dataset.len());
                if sharded.get(id).is_some() {
                    break id;
                }
            };
            let graph = sharded.get(pick).expect("live").clone();
            let first_edge = graph.edges().next();
            if let Some((u, v)) = first_edge {
                sharded.apply(ChangeOp::Ur { id: pick, u, v }).unwrap();
                flat_store.remove_edge(pick, u, v).unwrap();
                if step % 8 == 1 {
                    sharded.apply(ChangeOp::Ua { id: pick, u, v }).unwrap();
                    flat_store.add_edge(pick, u, v).unwrap();
                }
            }
        }
        if step == 30 {
            let global = sharded.apply(ChangeOp::Add(dataset[0].clone())).unwrap();
            let flat_id = flat_store.add_graph(dataset[0].clone());
            assert_eq!(global, flat_id, "id spaces stay aligned");
        }

        // query extracted from a random live graph
        let q = loop {
            let id = rng.random_range(0..dataset.len());
            if let Some(src) = sharded.get(id) {
                let src = src.clone();
                if let Some(q) =
                    gc_graph::generate::bfs_extract(&mut rng, &src, 0, src.edge_count().clamp(1, 8))
                {
                    break q;
                }
            }
        };
        let kind = if step % 3 == 0 {
            QueryKind::Supergraph
        } else {
            QueryKind::Subgraph
        };
        let got = sharded.execute(&q, kind);
        let truth = baseline_execute(&flat_store, &oracle, &q, kind);
        assert_eq!(
            got.answer, truth.answer,
            "divergence at step {step} ({kind:?})"
        );
    }
}

#[test]
fn ftv_filter_shrinks_candidates_without_losing_answers() {
    let dataset = synthetic_aids(&AidsConfig::scaled(120, 5));
    let workload = generate_type_a(&dataset, &TypeAConfig::zu(40, 9));

    let mut filtered = GraphCachePlus::new(extended_config(), dataset.clone());
    let mut unfiltered = GraphCachePlus::new(
        GcConfig {
            candidate_source: CandidateSource::LiveScan,
            ..extended_config()
        },
        dataset.clone(),
    );
    let mut total_filtered_cands = 0u64;
    let mut total_unfiltered_cands = 0u64;
    for q in &workload.queries {
        let a = filtered.execute(q, workload.kind);
        let b = unfiltered.execute(q, workload.kind);
        assert_eq!(a.answer, b.answer);
        total_filtered_cands += a.metrics.candidate_size;
        total_unfiltered_cands += b.metrics.candidate_size;
    }
    assert!(
        total_filtered_cands < total_unfiltered_cands,
        "filter should shrink CS_M: {total_filtered_cands} vs {total_unfiltered_cands}"
    );
}

#[test]
fn retro_preserves_exact_match_shortcuts_across_neutral_churn() {
    let dataset = synthetic_aids(&AidsConfig::scaled(60, 6));
    let mut rng = StdRng::seed_from_u64(1);
    let q = gc_graph::generate::bfs_extract(&mut rng, &dataset[3], 0, 6).expect("extractable");

    let run = |model: CacheModel| {
        let mut gc = GraphCachePlus::new(
            GcConfig {
                model,
                method: MethodM::new(Algorithm::Vf2Plus),
                // Pin invalidate-mode maintenance: this test contrasts
                // which *validation model* discards validity under
                // neutral churn, a distinction delta repair erases by
                // restoring the discarded bits for either model.
                maintenance: MaintenanceMode::Invalidate,
                ..GcConfig::default()
            },
            dataset.clone(),
        );
        gc.execute(&q, QueryKind::Subgraph);
        // neutral churn on many graphs
        for id in 0..20usize {
            let g = gc.store().get(id).expect("live").clone();
            let first_edge = g.edges().next();
            if let Some((u, v)) = first_edge {
                gc.apply(ChangeOp::Ur { id, u, v }).unwrap();
                gc.apply(ChangeOp::Ua { id, u, v }).unwrap();
            }
        }
        gc.execute(&q, QueryKind::Subgraph)
            .metrics
            .hits
            .exact_shortcut
    };

    assert!(
        !run(CacheModel::Con),
        "plain CON loses full validity under mixed ops"
    );
    assert!(
        run(CacheModel::ConRetro),
        "CON-R proves the churn neutral and keeps the zero-test shortcut"
    );
}

#[test]
fn sharded_metrics_aggregate_sensibly() {
    let dataset = synthetic_aids(&AidsConfig::scaled(45, 8));
    let mut rng = StdRng::seed_from_u64(4);
    let q = gc_graph::generate::bfs_extract(&mut rng, &dataset[0], 0, 4).expect("extractable");

    // paper-faithful scan source: every live graph is a candidate
    let mut scan = ShardedGraphCache::new(
        GcConfig {
            candidate_source: CandidateSource::LiveScan,
            ..GcConfig::default()
        },
        dataset.clone(),
        3,
    );
    let out = scan.execute(&q, QueryKind::Subgraph);
    assert_eq!(
        out.metrics.candidate_size, 45,
        "all live graphs across shards"
    );
    assert_eq!(out.metrics.subiso_tests, 45, "cold caches test everything");

    let again = scan.execute(&q, QueryKind::Subgraph);
    assert_eq!(again.answer, out.answer);
    assert_eq!(again.metrics.subiso_tests, 0, "every shard exact-matches");
    assert_eq!(again.metrics.tests_saved, 45);

    // default (index-backed) source: the postings pre-filter runs inside
    // each shard, so aggregated candidates can only shrink and cold-cache
    // tests equal the candidates that survived it
    let mut indexed = ShardedGraphCache::new(GcConfig::default(), dataset, 3);
    let cold = indexed.execute(&q, QueryKind::Subgraph);
    assert_eq!(cold.answer, out.answer, "sources agree on the answer");
    assert!(cold.metrics.candidate_size <= 45);
    assert_eq!(
        cold.metrics.subiso_tests, cold.metrics.candidate_size,
        "cold caches test every index candidate"
    );
    let warm = indexed.execute(&q, QueryKind::Subgraph);
    assert_eq!(warm.metrics.subiso_tests, 0, "every shard exact-matches");
    assert_eq!(warm.metrics.tests_saved, warm.metrics.candidate_size);
}
