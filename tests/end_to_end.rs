//! Workspace-level end-to-end test: the full experiment pipeline — the
//! synthetic AIDS dataset, a paper workload, the paper change plan, and
//! both cache models — with exactness verified against cache-less Method
//! M on every query.

use graphcache_plus::prelude::*;

fn scale_dataset() -> Vec<LabeledGraph> {
    synthetic_aids(&AidsConfig::scaled(80, 21))
}

#[test]
fn type_a_workload_replay_is_exact_under_churn() {
    let dataset = scale_dataset();
    let workload = generate_type_a(&dataset, &TypeAConfig::zu(120, 3));
    let plan = ChangePlan::generate(&ChangePlanConfig {
        batches: 6,
        ops_per_batch: 10,
        num_queries: 120,
        seed: 5,
    });

    for model in [CacheModel::Evi, CacheModel::Con] {
        let config = GcConfig {
            model,
            method: MethodM::new(Algorithm::Vf2Plus),
            ..GcConfig::default()
        };
        let mut gc = GraphCachePlus::new(config, dataset.clone());
        let mut exec = PlanExecutor::new(plan.clone(), dataset.clone(), 9);
        let oracle = MethodM::new(Algorithm::Vf2);

        for (i, q) in workload.queries.iter().enumerate() {
            gc.with_dataset(|store, log| exec.apply_due(i, store, log));
            let got = gc.execute(q, workload.kind);
            let truth = baseline_execute(gc.store(), &oracle, q, workload.kind);
            assert_eq!(got.answer, truth.answer, "{model} diverged at query {i}");
        }
        // every Type A query matches at least one graph in the *initial*
        // dataset, and the cache must have saved something by the end
        let agg = gc.aggregate_metrics();
        assert!(agg.total_tests_saved > 0, "{model} saved no tests at all");
        assert_eq!(agg.queries, 120);
    }
}

#[test]
fn type_b_workload_replay_with_noanswer_queries() {
    let dataset = scale_dataset();
    let cfg = TypeBConfig {
        num_queries: 80,
        positive_pool: 20,
        noanswer_pool: 8,
        noanswer_prob: 0.5,
        sizes: vec![4, 8],
        zipf_alpha: 1.4,
        seed: 11,
        max_relabel_attempts: 300,
    };
    let workload = generate_type_b(&dataset, &cfg);

    let mut gc = GraphCachePlus::new(GcConfig::default(), dataset.clone());
    let oracle = MethodM::new(Algorithm::Vf2Plus);
    let mut empties = 0;
    for q in &workload.queries {
        let got = gc.execute(q, workload.kind);
        let truth = baseline_execute(gc.store(), &oracle, q, workload.kind);
        assert_eq!(got.answer, truth.answer);
        if got.answer.is_empty() {
            empties += 1;
        }
    }
    assert!(
        empties > 10,
        "50% workload should produce empty answers, got {empties}"
    );
    // with heavy pool repetition the exact-match optimal case must fire
    assert!(gc.aggregate_metrics().exact_shortcuts > 0);
}

#[test]
fn con_dominates_evi_in_saved_tests_under_churn() {
    let dataset = scale_dataset();
    let workload = generate_type_a(&dataset, &TypeAConfig::zz(150, 13));
    let plan = ChangePlan::generate(&ChangePlanConfig {
        batches: 10,
        ops_per_batch: 6,
        num_queries: 150,
        seed: 17,
    });

    let run = |model| {
        let config = GcConfig {
            model,
            method: MethodM::new(Algorithm::Vf2Plus),
            ..GcConfig::default()
        };
        let mut gc = GraphCachePlus::new(config, dataset.clone());
        let mut exec = PlanExecutor::new(plan.clone(), dataset.clone(), 9);
        for (i, q) in workload.queries.iter().enumerate() {
            gc.with_dataset(|store, log| exec.apply_due(i, store, log));
            gc.execute(q, workload.kind);
        }
        gc.aggregate_metrics().total_tests
    };

    let evi_tests = run(CacheModel::Evi);
    let con_tests = run(CacheModel::Con);
    assert!(
        con_tests <= evi_tests,
        "CON ({con_tests}) must not execute more tests than EVI ({evi_tests})"
    );
}

#[test]
fn dataset_io_roundtrip_through_store() {
    // the text format persists a dataset; reloading reproduces identical
    // query answers
    let dataset = scale_dataset();
    let text = gc_graph::io::write_dataset(&dataset);
    let reloaded = gc_graph::io::parse_dataset(&text).expect("roundtrip");
    assert_eq!(dataset, reloaded);

    let q = gc_graph::generate::bfs_extract(
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1),
        &dataset[0],
        0,
        4,
    )
    .expect("extractable");
    let m = MethodM::new(Algorithm::GraphQl);
    let a = m.run(
        &q,
        QueryKind::Subgraph,
        &dataset,
        &BitSet::from_indices(0..dataset.len()),
    );
    let b = m.run(
        &q,
        QueryKind::Subgraph,
        &reloaded,
        &BitSet::from_indices(0..reloaded.len()),
    );
    assert_eq!(a, b);
}
