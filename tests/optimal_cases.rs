//! Directed tests of the §6.3 optimal cases and the §6 worked examples,
//! through the public API.

use graphcache_plus::prelude::*;

fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
    LabeledGraph::from_parts(labels, edges).unwrap()
}

fn dataset() -> Vec<LabeledGraph> {
    vec![
        g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]), // 0: triangle
        g(vec![0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]), // 1: path4
        g(vec![0, 0], &[(0, 1)]),                    // 2: edge
        g(vec![1, 1, 1], &[(0, 1), (1, 2)]),         // 3: labeled path
        g(vec![2, 2], &[(0, 1)]),                    // 4: 2-2 edge
    ]
}

/// §6.3 case 1 — isomorphic cached query with full validity answers the
/// query with zero sub-iso tests; after changes break full validity, the
/// shortcut stops firing until the twin refreshes.
#[test]
fn exact_match_shortcut_lifecycle() {
    // Pin invalidate-mode maintenance: this test documents the paper's
    // §6.3 stale-then-refresh lifecycle, which delta repair deliberately
    // short-circuits (see the repair-mode contrast test below).
    let mut gc = GraphCachePlus::new(
        GcConfig {
            maintenance: MaintenanceMode::Invalidate,
            ..GcConfig::default()
        },
        dataset(),
    );
    let q = g(vec![0, 0, 0], &[(0, 1), (1, 2)]); // 0-0-0 path
    let first = gc.execute(&q, QueryKind::Subgraph);
    assert_eq!(first.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1]);

    // an isomorphic restatement of the same pattern (different vertex
    // order) must hit the optimal case
    let q_iso = g(vec![0, 0, 0], &[(2, 1), (1, 0)]);
    let second = gc.execute(&q_iso, QueryKind::Subgraph);
    assert!(second.metrics.hits.exact_shortcut);
    assert_eq!(second.metrics.subiso_tests, 0);
    assert_eq!(second.answer, first.answer);

    // a UR on an answered graph kills full validity → no shortcut,
    // but the refreshed twin restores it on the following repeat
    gc.apply(ChangeOp::Ur { id: 1, u: 2, v: 3 }).unwrap();
    let third = gc.execute(&q, QueryKind::Subgraph);
    assert!(
        !third.metrics.hits.exact_shortcut,
        "stale twin must not shortcut"
    );
    assert_eq!(third.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
    let fourth = gc.execute(&q, QueryKind::Subgraph);
    assert!(
        fourth.metrics.hits.exact_shortcut,
        "refreshed twin shortcuts again"
    );
    assert_eq!(fourth.answer, third.answer);
}

/// The delta-repair contrast to the lifecycle above: under the default
/// maintenance mode the UR's impact on the cached twin is repaired in
/// place, so the exact-match shortcut never goes stale — and the answer
/// is still the recomputed truth.
#[test]
fn exact_match_shortcut_survives_ur_under_repair() {
    let mut gc = GraphCachePlus::new(GcConfig::default(), dataset());
    let q = g(vec![0, 0, 0], &[(0, 1), (1, 2)]); // 0-0-0 path
    let first = gc.execute(&q, QueryKind::Subgraph);
    assert_eq!(first.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1]);

    gc.apply(ChangeOp::Ur { id: 1, u: 2, v: 3 }).unwrap();
    let repaired = gc.execute(&q, QueryKind::Subgraph);
    assert!(
        repaired.metrics.hits.exact_shortcut,
        "repair keeps the twin fully valid across the UR"
    );
    // graph 1 is now a 3-path plus an isolated vertex — still a match
    assert_eq!(repaired.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
    assert!(repaired.metrics.invalidations_avoided > 0);
}

/// §6.3 case 2 — a cached no-answer query proves empty results for all of
/// its supergraphs.
#[test]
fn empty_answer_shortcut() {
    let mut gc = GraphCachePlus::new(GcConfig::default(), dataset());
    // 1-1-1 triangle matches nothing
    let probe = g(vec![1, 1, 1], &[(0, 1), (1, 2), (0, 2)]);
    let first = gc.execute(&probe, QueryKind::Subgraph);
    assert!(first.answer.is_empty());
    assert_eq!(
        first.metrics.subiso_tests, 0,
        "postings index proves CS_M empty: the only label-1 graph lacks the edge count"
    );

    // under the paper's full-scan CS_M the same cold query examines every
    // live graph (prefilter decisions count as tests — Figure 5's premise)
    let mut scan = GraphCachePlus::new(GcConfig::paper(Algorithm::Vf2, CacheModel::Con), dataset());
    let scanned = scan.execute(&probe, QueryKind::Subgraph);
    assert_eq!(scanned.answer, first.answer);
    assert_eq!(
        scanned.metrics.subiso_tests, 5,
        "cold cache, full scan: every live graph is examined"
    );

    // any supergraph of the probe is provably empty — zero tests
    let bigger = g(vec![1, 1, 1, 0], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
    let second = gc.execute(&bigger, QueryKind::Subgraph);
    assert!(second.answer.is_empty());
    assert!(second.metrics.hits.empty_shortcut);
    assert_eq!(second.metrics.subiso_tests, 0);

    // adding a graph invalidates full validity → shortcut must not fire
    // (the new graph might contain the pattern)
    gc.apply(ChangeOp::Add(g(vec![1, 1, 1], &[(0, 1), (1, 2), (0, 2)])))
        .unwrap();
    let third = gc.execute(&bigger, QueryKind::Subgraph);
    assert!(!third.metrics.hits.empty_shortcut);
    // and indeed the answer is no longer empty for the probe itself
    let probe_again = gc.execute(&probe, QueryKind::Subgraph);
    assert_eq!(probe_again.answer.iter_ones().collect::<Vec<_>>(), vec![5]);
}

/// Figure 3(a) rebuilt end-to-end: a cached query's stale positive answer
/// must be re-verified, its valid positive answer must be test-free.
#[test]
fn figure_3a_through_public_api() {
    // dataset tailored so q' = 0-0 edge answers graphs {0,1,2}
    let mut gc = GraphCachePlus::new(
        GcConfig {
            method: MethodM::new(Algorithm::Vf2),
            ..GcConfig::default()
        },
        dataset(),
    );
    let q_prime = g(vec![0, 0], &[(0, 1)]);
    let first = gc.execute(&q_prime, QueryKind::Subgraph);
    assert_eq!(first.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);

    // UR on graph 1 (path4) invalidates q'’s knowledge of graph 1
    gc.apply(ChangeOp::Ur { id: 1, u: 0, v: 1 }).unwrap();

    // new query g ⊆ q' (single 0-vertex): graphs 0 and 2 are test-free
    // via the direct hit; graph 1 must be re-verified
    let q = g(vec![0], &[]);
    let out = gc.execute(&q, QueryKind::Subgraph);
    assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    assert!(out.metrics.hits.direct_hits >= 1);
    // 5 live graphs; 0 and 2 pruned by the hit → at most 3 tests
    assert!(
        out.metrics.subiso_tests <= 3,
        "tests: {}",
        out.metrics.subiso_tests
    );
}

/// Figure 3(b) rebuilt end-to-end: a valid negative answer of a cached
/// subquery excludes candidates; stale knowledge forces verification.
#[test]
fn figure_3b_through_public_api() {
    let mut gc = GraphCachePlus::new(GcConfig::default(), dataset());
    // q'' = 2-2 edge: only graph 4 contains it
    let q_pp = g(vec![2, 2], &[(0, 1)]);
    let first = gc.execute(&q_pp, QueryKind::Subgraph);
    assert_eq!(first.answer.iter_ones().collect::<Vec<_>>(), vec![4]);

    // new query g ⊇ q'': a 2-2-2 path. Graphs 0..3 are valid negatives of
    // q'' → excluded without tests; only graph 4 is verified.
    let q = g(vec![2, 2, 2], &[(0, 1), (1, 2)]);
    let out = gc.execute(&q, QueryKind::Subgraph);
    assert!(out.answer.is_empty());
    assert!(out.metrics.hits.exclusion_hits >= 1);
    assert!(
        out.metrics.subiso_tests <= 1,
        "tests: {}",
        out.metrics.subiso_tests
    );
}

/// The supergraph-query duals of both §6.3 cases.
#[test]
fn supergraph_optimal_cases() {
    let mut gc = GraphCachePlus::new(GcConfig::default(), dataset());
    // supergraph query: triangle contains graphs {0 (itself), 2 (edge)}
    let tri = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
    let first = gc.execute(&tri, QueryKind::Supergraph);
    assert_eq!(first.answer.iter_ones().collect::<Vec<_>>(), vec![0, 2]);

    // exact repeat → optimal case 1
    let second = gc.execute(&tri, QueryKind::Supergraph);
    assert!(second.metrics.hits.exact_shortcut);
    assert_eq!(second.metrics.subiso_tests, 0);

    // empty-answer dual: a query containing nothing proves its subgraphs
    // also contain nothing
    let tiny = g(vec![3], &[]); // label 3 appears nowhere
    let empty1 = gc.execute(&tiny, QueryKind::Supergraph);
    assert!(empty1.answer.is_empty());
    // q ⊆ tiny? the only subgraph of a single vertex is itself/empty —
    // use a different shape: cache a 2-vertex query with empty answer,
    // then query its subgraph
    let q_big = g(vec![3, 3], &[(0, 1)]);
    let empty2 = gc.execute(&q_big, QueryKind::Supergraph);
    assert!(empty2.answer.is_empty());
    let sub_of_big = g(vec![3], &[]);
    let out = gc.execute(&sub_of_big, QueryKind::Supergraph);
    assert!(out.answer.is_empty());
    assert!(
        out.metrics.hits.empty_shortcut || out.metrics.subiso_tests == 0,
        "dual empty shortcut should avoid tests"
    );
}
