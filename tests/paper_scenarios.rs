//! The paper's running example (Figure 2) replayed through the public
//! API, plus workload-characteristic assertions from §7.1.

use graphcache_plus::prelude::*;

fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
    LabeledGraph::from_parts(labels, edges).unwrap()
}

/// Figure 2's timeline with concrete graphs:
/// T0: dataset {G0..G3}, empty CON cache.
/// T1: query g′ executed and cached   (answers G2, G3).
/// T2: ADD G4; UR on G3.
/// T3: query g″ executed and cached   (fresh validity over 5 ids).
/// T4: DEL G0; UA on G1.
/// T5: query g arrives and is served with the surviving validity.
#[test]
fn figure_2_timeline() {
    // g′ is a 7-7 edge; G2, G3 contain it; G0, G1 do not.
    let g0 = g(vec![1, 2], &[(0, 1)]);
    let g1 = g(vec![1, 7], &[(0, 1)]);
    let g2 = g(vec![7, 7, 1], &[(0, 1), (1, 2)]);
    let g3 = g(vec![7, 7, 7], &[(0, 1), (1, 2), (0, 2)]);
    let mut gc = GraphCachePlus::new(
        GcConfig {
            window_capacity: 1, // entries go straight to cache in this walkthrough
            ..GcConfig::default()
        },
        vec![g0, g1, g2.clone(), g3],
    );

    // T1 — query g′
    let g_prime = g(vec![7, 7], &[(0, 1)]);
    let out1 = gc.execute(&g_prime, QueryKind::Subgraph);
    assert_eq!(out1.answer.iter_ones().collect::<Vec<_>>(), vec![2, 3]);

    // T2 — ADD G4 (a copy of G2), UR on G3
    gc.apply(ChangeOp::Add(g2)).unwrap();
    gc.apply(ChangeOp::Ur { id: 3, u: 0, v: 1 }).unwrap();

    // T3 — query g″ (single 7-vertex) executed, enters cache fresh
    let g_dprime = g(vec![7], &[]);
    let out3 = gc.execute(&g_dprime, QueryKind::Subgraph);
    assert_eq!(
        out3.answer.iter_ones().collect::<Vec<_>>(),
        vec![1, 2, 3, 4]
    );

    // T4 — DEL G0, UA on G1 (add an edge slot first: G1 has 2 vertices &
    // 1 edge → complete; instead UA on G2 which has a free slot)
    gc.apply(ChangeOp::Del(0)).unwrap();
    gc.apply(ChangeOp::Ua { id: 2, u: 0, v: 2 }).unwrap();

    // T5 — query g = g′ again. G2 was UA'd: g′'s positive answer on G2
    // survives (UA-exclusive + positive). G3 was UR'd at T2: that
    // knowledge was already re-verified at... g′ is cached from T1; its
    // validity on G3 died at T2 and was never refreshed, so G3 must be
    // re-verified; the exact-match shortcut must NOT fire.
    let out5 = gc.execute(&g_prime, QueryKind::Subgraph);
    assert!(!out5.metrics.hits.exact_shortcut);
    // ground truth: G2 (still has 7-7 edge), G3 lost edge (0,1) but the
    // triangle had (1,2) and (0,2) with all-7 labels → still contains 7-7.
    // G4 is a copy of old G2 → contains it.
    let truth = baseline_execute(
        gc.store(),
        &MethodM::new(Algorithm::Vf2),
        &g_prime,
        QueryKind::Subgraph,
    );
    assert_eq!(out5.answer, truth.answer);
    assert_eq!(out5.answer.iter_ones().collect::<Vec<_>>(), vec![2, 3, 4]);
    // and the UA-exclusive optimization shows: G2 was answered test-free
    assert!(out5.metrics.tests_saved >= 1);
}

/// §7.1 workload characteristics, asserted on the real generators.
#[test]
fn workload_characteristics_match_paper() {
    let dataset = synthetic_aids(&AidsConfig::scaled(120, 33));

    // Type A: sizes ∈ {4,8,12,16,20}, connected, non-empty answers
    let wa = generate_type_a(&dataset, &TypeAConfig::zz(60, 1));
    assert_eq!(wa.name, "ZZ");
    let m = Algorithm::Vf2Plus.matcher();
    for q in &wa.queries {
        assert!([4, 8, 12, 16, 20].contains(&q.edge_count()));
        assert!(q.is_connected());
        assert!(dataset.iter().any(|t| m.contains(q, t)));
    }

    // ZZ repeats more than UU (Zipf source-graph + start-node skew):
    // repetition needs a large enough sample — tiny streams are all
    // distinct under any distribution
    let wa_big = generate_type_a(&dataset, &TypeAConfig::zz(400, 1));
    let wu_big = generate_type_a(&dataset, &TypeAConfig::uu(400, 1));
    assert!(
        wa_big.distinct_queries() < wu_big.distinct_queries(),
        "ZZ ({}) should repeat more than UU ({})",
        wa_big.distinct_queries(),
        wu_big.distinct_queries()
    );

    // Type B 50%: contains no-answer queries that still have candidates
    let wb = generate_type_b(
        &dataset,
        &TypeBConfig {
            num_queries: 40,
            positive_pool: 10,
            noanswer_pool: 6,
            noanswer_prob: 0.5,
            sizes: vec![4, 8],
            zipf_alpha: 1.4,
            seed: 2,
            max_relabel_attempts: 300,
        },
    );
    let empties = wb
        .queries
        .iter()
        .filter(|q| !dataset.iter().any(|t| m.contains(q, t)))
        .count();
    assert!(empties >= 5, "empties: {empties}");
}

/// The paper's Figure-5 premise at workspace level: identical pruned
/// candidate sets (hence test counts) across Method M choices.
#[test]
fn test_counts_are_method_independent() {
    let dataset = synthetic_aids(&AidsConfig::scaled(60, 44));
    let workload = generate_type_a(&dataset, &TypeAConfig::zu(40, 7));
    let mut counts: Vec<Vec<u64>> = Vec::new();
    for algo in Algorithm::ALL {
        let mut gc = GraphCachePlus::new(
            GcConfig {
                method: MethodM::new(algo),
                ..GcConfig::default()
            },
            dataset.clone(),
        );
        counts.push(
            workload
                .queries
                .iter()
                .map(|q| gc.execute(q, workload.kind).metrics.subiso_tests)
                .collect(),
        );
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}
