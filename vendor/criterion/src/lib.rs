//! Offline stand-in for `criterion`.
//!
//! A deliberately small wall-clock micro-benchmark harness exposing the API
//! subset the workspace's benches use: `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros. The statistics engine is minimal but honest: the measuring
//! window is split into [`SAMPLES`] independent samples, Tukey's fences
//! (`q1 − 1.5·IQR`, `q3 + 1.5·IQR`) reject outlier samples — a GC pause,
//! a scheduler preemption — and the report prints the surviving samples'
//! mean ± standard deviation with the kept/rejected counts, so a noisy
//! run is visibly noisy instead of silently folded into the mean.
//!
//! Knobs (environment variables / CLI args):
//! * `--quick` arg or `CRITERION_QUICK=1` — cut measuring time ~6×, for CI
//!   smoke runs;
//! * `CRITERION_MEASURE_MS` — target measuring window per benchmark
//!   (default 300 ms, quick 50 ms).

use std::time::{Duration, Instant};

/// Independent timing samples per benchmark (the window is split across
/// them); 12 gives stable quartiles without stretching the wall clock.
pub const SAMPLES: usize = 12;

/// Sample statistics after outlier rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Mean per-iteration time of the surviving samples.
    pub mean: Duration,
    /// Standard deviation of the surviving samples.
    pub std_dev: Duration,
    /// Samples inside Tukey's fences.
    pub kept: usize,
    /// Samples rejected as outliers.
    pub rejected: usize,
}

impl Summary {
    const ZERO: Summary = Summary {
        mean: Duration::ZERO,
        std_dev: Duration::ZERO,
        kept: 0,
        rejected: 0,
    };
}

/// Folds raw per-iteration samples into a [`Summary`]: samples outside
/// Tukey's fences (`q1 − 1.5·IQR`, `q3 + 1.5·IQR`; quartiles at the
/// `n/4` and `3n/4` order statistics) are rejected, then the mean and
/// standard deviation of the survivors are computed. An empty slice
/// yields the zero summary.
pub fn summarize(samples: &[Duration]) -> Summary {
    if samples.is_empty() {
        return Summary::ZERO;
    }
    let mut sorted: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let q1 = sorted[n / 4];
    let q3 = sorted[(3 * n) / 4];
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = sorted
        .iter()
        .copied()
        .filter(|&s| s >= lo && s <= hi)
        .collect();
    let mean = kept.iter().sum::<f64>() / kept.len() as f64;
    let var = kept.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / kept.len() as f64;
    Summary {
        mean: Duration::from_secs_f64(mean),
        std_dev: Duration::from_secs_f64(var.sqrt()),
        kept: kept.len(),
        rejected: n - kept.len(),
    }
}

/// Target measuring window.
fn measure_window() -> Duration {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let default_ms = if quick { 50 } else { 300 };
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms)
}

/// Batch-size hint for `iter_batched` (accepted, not acted upon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures.
pub struct Bencher {
    window: Duration,
    /// Statistics of the last run.
    last_summary: Summary,
}

impl Bencher {
    /// Times `routine`: the measuring window is split into [`SAMPLES`]
    /// samples, each a mean over a calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warmup + calibration: find an iteration count filling one sample
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = self.window / SAMPLES as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        self.last_summary = summarize(&samples);
    }

    /// Times `routine` over fresh inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = self.window / SAMPLES as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                total += t.elapsed();
            }
            samples.push(total / iters as u32);
        }
        self.last_summary = summarize(&samples);
    }
}

fn report(name: &str, s: Summary) {
    println!(
        "{name:<50} time: [{:>12.3?} ± {:>9.3?} /iter]  ({}/{} samples, {} outliers rejected)",
        s.mean,
        s.std_dev,
        s.kept,
        s.kept + s.rejected,
        s.rejected,
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    window: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive window ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            window: self.window,
            last_summary: Summary::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.last_summary);
        self
    }

    /// Benchmarks `f` with a shared input under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            window: self.window,
            last_summary: Summary::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.last_summary);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The harness entry point.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            window: measure_window(),
        }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let window = self.window;
        BenchmarkGroup {
            name: name.into(),
            window,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            window: self.window,
            last_summary: Summary::ZERO,
        };
        f(&mut b);
        report(id, b.last_summary);
        self
    }
}

/// Re-export matching `criterion::black_box` (benches may use either this
/// or `std::hint::black_box`).
pub use std::hint::black_box;

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("count", |b| b.iter(|| (0..1000u32).sum::<u32>()));
        group.bench_with_input(BenchmarkId::new("sum", 5), &5u32, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u32>(), BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn summarize_computes_mean_and_deviation() {
        let ms = Duration::from_millis;
        let s = summarize(&[ms(10), ms(12), ms(14)]);
        assert_eq!(s.kept, 3);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.mean, ms(12));
        // population σ of {10, 12, 14} = sqrt(8/3) ≈ 1.633 ms (Duration
        // rounds to whole nanoseconds, hence the loose tolerance)
        let sigma = s.std_dev.as_secs_f64() * 1000.0;
        assert!((sigma - (8.0f64 / 3.0).sqrt()).abs() < 1e-5, "{sigma}");
    }

    #[test]
    fn summarize_rejects_tukey_outliers() {
        let ms = Duration::from_millis;
        // eleven tight samples and one scheduler hiccup
        let samples: Vec<Duration> = [9, 10, 10, 10, 10, 11, 11, 11, 12, 12, 13, 500]
            .into_iter()
            .map(ms)
            .collect();
        let s = summarize(&samples);
        assert_eq!(s.rejected, 1, "the 500 ms spike is outside the fences");
        assert_eq!(s.kept, 11);
        assert!(s.mean < ms(12), "mean must not absorb the spike: {s:?}");
        // without rejection the spike would dominate the deviation
        assert!(s.std_dev < ms(2), "{s:?}");
    }

    #[test]
    fn summarize_degenerate_inputs() {
        let s = summarize(&[]);
        assert_eq!((s.kept, s.rejected), (0, 0));
        assert_eq!(s.mean, Duration::ZERO);
        let one = summarize(&[Duration::from_micros(7)]);
        assert_eq!(one.kept, 1);
        assert_eq!(one.mean, Duration::from_micros(7));
        assert_eq!(one.std_dev, Duration::ZERO);
    }
}
