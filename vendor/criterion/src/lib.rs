//! Offline stand-in for `criterion`.
//!
//! A deliberately small wall-clock micro-benchmark harness exposing the API
//! subset the workspace's benches use: `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros. No statistics engine — each benchmark is warmed up, then timed
//! over an adaptive iteration count, and the mean time per iteration is
//! printed.
//!
//! Knobs (environment variables / CLI args):
//! * `--quick` arg or `CRITERION_QUICK=1` — cut measuring time ~6×, for CI
//!   smoke runs;
//! * `CRITERION_MEASURE_MS` — target measuring window per benchmark
//!   (default 300 ms, quick 50 ms).

use std::time::{Duration, Instant};

/// Target measuring window.
fn measure_window() -> Duration {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let default_ms = if quick { 50 } else { 300 };
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms)
}

/// Batch-size hint for `iter_batched` (accepted, not acted upon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures.
pub struct Bencher {
    window: Duration,
    /// Mean time per iteration of the last run.
    last_mean: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly for the measuring window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warmup + calibration: find an iteration count filling the window
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (self.window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.last_mean = start.elapsed() / iters as u32;
    }

    /// Times `routine` over fresh inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (self.window.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
        }
        self.last_mean = total / iters as u32;
    }
}

fn report(name: &str, mean: Duration) {
    println!("{name:<50} time: [{mean:>12.3?}/iter]");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    window: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive window ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            window: self.window,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.last_mean);
        self
    }

    /// Benchmarks `f` with a shared input under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            window: self.window,
            last_mean: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.last_mean);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The harness entry point.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            window: measure_window(),
        }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let window = self.window;
        BenchmarkGroup {
            name: name.into(),
            window,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            window: self.window,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        report(id, b.last_mean);
        self
    }
}

/// Re-export matching `criterion::black_box` (benches may use either this
/// or `std::hint::black_box`).
pub use std::hint::black_box;

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("count", |b| b.iter(|| (0..1000u32).sum::<u32>()));
        group.bench_with_input(BenchmarkId::new("sum", 5), &5u32, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u32>(), BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
