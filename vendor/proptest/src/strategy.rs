//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Boxes a strategy for use in [`Union`] (see `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform union over same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A constant strategy (`Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
