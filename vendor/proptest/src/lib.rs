//! Offline stand-in for `proptest`.
//!
//! Implements exactly the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map`, integer-range and tuple strategies,
//! * [`prop_oneof!`] unions,
//! * `prop::collection::{vec, hash_set}`,
//! * `prop_assert!` / `prop_assert_eq!` (plain assertions here),
//! * [`ProptestConfig::with_cases`].
//!
//! There is **no shrinking**: a failing case panics with its inputs in the
//! assertion message, and every run is deterministic (the per-test RNG seed
//! is derived from the test's name), so failures reproduce exactly. Case
//! count defaults to 64 and can be raised via the `PROPTEST_CASES`
//! environment variable.

pub mod collection;
pub mod strategy;

pub use strategy::{Strategy, TestRng};

/// Per-proptest-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Deterministic per-test case runner used by the [`proptest!`] expansion.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner whose RNG seed is derived from the test name.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRunner {
            config,
            rng: TestRng::from_seed(h),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The case RNG (advances continuously across cases).
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]`-attributed function running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for __case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::generate(&$strat, runner.rng());)+
                $body
            }
        }
    )*};
}

/// Boolean property assertion (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Union of strategies with uniform arm selection.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_maps_compose(x in 0u64..100, y in (0usize..10).prop_map(|v| v * 2)) {
            prop_assert!(x < 100);
            prop_assert!(y % 2 == 0 && y < 20);
        }

        #[test]
        fn oneof_and_collections(v in prop::collection::vec(prop_oneof![0u32..5, 100u32..105], 0..20)) {
            prop_assert!(v.len() < 20);
            for e in v {
                prop_assert!(e < 5 || (100..105).contains(&e));
            }
        }

        #[test]
        fn hash_sets_respect_domain(s in prop::collection::hash_set(0usize..50, 0..10)) {
            prop_assert!(s.len() < 10);
            prop_assert!(s.iter().all(|&e| e < 50));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut a = crate::TestRunner::new(ProptestConfig::with_cases(4), "t");
        let mut b = crate::TestRunner::new(ProptestConfig::with_cases(4), "t");
        let sa = Strategy::generate(&(0u64..1000), a.rng());
        let sb = Strategy::generate(&(0u64..1000), b.rng());
        assert_eq!(sa, sb);
    }
}
