//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = if self.size.is_empty() {
            self.size.start
        } else {
            rng.random_range(self.size.clone())
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>`; duplicates collapse, so the resulting
/// set can be smaller than the drawn size (same as upstream proptest's
/// behavior under a narrow element domain).
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates hash sets of `element` values with up to `size` elements.
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = if self.size.is_empty() {
            self.size.start
        } else {
            rng.random_range(self.size.clone())
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
