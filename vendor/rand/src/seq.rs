//! Sequence helpers: in-place shuffling and uniform element selection.

use crate::{Rng, RngCore};

/// In-place uniform shuffling.
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Uniform selection by index.
pub trait IndexedRandom {
    /// Element type.
    type Item;

    /// Uniformly picks one element; `None` on an empty collection.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1u8, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
