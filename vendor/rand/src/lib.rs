//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! The build environment for this workspace has no crates.io access, so the
//! subset of `rand` the workspace actually uses is vendored here as a plain
//! path dependency:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`), statistically solid for the seeded
//!   simulations and property tests in this repo;
//! * the [`Rng`] extension trait with `random`, `random_bool` and
//!   `random_range` (half-open and inclusive integer/float ranges);
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates) and
//!   [`seq::IndexedRandom::choose`].
//!
//! Everything is deterministic per seed, which the whole experiment harness
//! depends on. The numeric streams differ from upstream `rand`, so seeds
//! written against the real crate reproduce *a* valid run, not the same run.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain (the `random::<T>()`
/// family).
pub trait UniformSample: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u8 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl UniformSample for u16 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl UniformSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for usize {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // highest bit: xoshiro's strongest bits are the upper ones
        rng.next_u64() >> 63 == 1
    }
}

impl UniformSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // uniform in [0, 1) with 53 bits of precision
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` without modulo bias (Lemire's method).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // widening multiply; the tiny residual bias (< 2^-64 per draw) is far
    // below anything the seeded tests can observe
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full-domain inclusive range
                    return <$t as UniformSample>::sample_from(rng);
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    // full-domain inclusive range: take the raw bits
                    return uniform_below(rng, u64::MAX) as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_from(rng)
    }
}

/// The user-facing random-value API, blanket-implemented over every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value over `T`'s whole domain (`f64`/`f32`: `[0,1)`).
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws uniformly from `range`; panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(4..=5);
            assert!((4..=5).contains(&y));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            let expected = draws as f64 / 10.0;
            assert!((c as f64 - expected).abs() < expected * 0.05, "count {c}");
        }
        // mean of f64 draws ~ 0.5
        let mean: f64 = (0..draws).map(|_| rng.random::<f64>()).sum::<f64>() / draws as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bools_are_balanced() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..100_000).filter(|_| rng.random::<bool>()).count();
        assert!((45_000..55_000).contains(&trues), "trues {trues}");
        let biased = (0..100_000).filter(|_| rng.random_bool(0.2)).count();
        assert!((18_000..22_000).contains(&biased), "biased {biased}");
    }
}
