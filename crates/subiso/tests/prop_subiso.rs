//! Cross-validation of the three production SI algorithms against the
//! brute-force oracle, plus structural properties of embeddings. These are
//! the tests that certify the `Mverifier` implementations behind every
//! experiment table.

use gc_graph::generate::{bfs_extract, random_connected_graph, random_walk_extract};
use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::bruteforce::BruteForce;
use gc_subiso::vf2::verify_embedding;
use gc_subiso::{filter, Algorithm, MethodM, QueryKind, SubgraphMatcher};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a (pattern, target) pair from a seed. Half the cases extract the
/// pattern from the target (guaranteed positive), half generate it
/// independently (usually negative, occasionally positive).
fn make_case(seed: u64) -> (LabeledGraph, LabeledGraph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let tn = rng.random_range(3..11usize);
    let extra = rng.random_range(0..tn);
    let labels = rng.random_range(1..4u16);
    let target = random_connected_graph(&mut rng, tn, extra, |r| r.random_range(0..labels));
    let pattern = if seed.is_multiple_of(2) {
        let start = rng.random_range(0..tn as u32);
        let want = rng.random_range(1..=target.edge_count().min(5));
        bfs_extract(&mut rng, &target, start, want)
            .or_else(|| random_walk_extract(&mut rng, &target, start, want))
            .unwrap_or_else(|| {
                random_connected_graph(&mut rng, 3, 0, |r| r.random_range(0..labels))
            })
    } else {
        let pn = rng.random_range(1..7usize);
        let pextra = rng.random_range(0..2usize);
        random_connected_graph(&mut rng, pn, pextra, |r| r.random_range(0..labels))
    };
    (pattern, target)
}

proptest! {
    /// All three algorithms agree with the brute-force oracle.
    #[test]
    fn algorithms_agree_with_oracle(seed in 0u64..2000) {
        let (pattern, target) = make_case(seed);
        let expected = BruteForce.contains(&pattern, &target);
        for algo in Algorithm::ALL {
            let got = algo.matcher().contains(&pattern, &target);
            prop_assert_eq!(
                got, expected,
                "{} disagrees with oracle on seed {}:\nP={:?}\nT={:?}",
                algo, seed, &pattern, &target
            );
        }
    }

    /// Whenever an algorithm reports containment, the embedding it returns
    /// is a genuine label-preserving injective homomorphism.
    #[test]
    fn embeddings_are_valid(seed in 0u64..800) {
        let (pattern, target) = make_case(seed);
        for algo in Algorithm::ALL {
            if let Some(e) = algo.matcher().find_embedding(&pattern, &target) {
                prop_assert!(
                    verify_embedding(&pattern, &target, &e),
                    "{} returned an invalid embedding on seed {}", algo, seed
                );
            }
        }
    }

    /// Extracted subgraphs are always found — the soundness direction that
    /// Type A/B workload generation depends on (every extracted query must
    /// have its source graph in the answer set).
    #[test]
    fn extraction_implies_containment(seed in 0u64..800) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tn = rng.random_range(4..16usize);
        let extra = rng.random_range(0..tn);
        let target = random_connected_graph(&mut rng, tn, extra, |r| r.random_range(0..3u16));
        let start = rng.random_range(0..tn as u32);
        let want = rng.random_range(1..=target.edge_count().min(8));
        let pattern = if seed % 2 == 0 {
            bfs_extract(&mut rng, &target, start, want)
        } else {
            random_walk_extract(&mut rng, &target, start, want)
        };
        if let Some(p) = pattern {
            for algo in Algorithm::ALL {
                prop_assert!(
                    algo.matcher().contains(&p, &target),
                    "{} missed an extracted subgraph (seed {})", algo, seed
                );
            }
        }
    }

    /// The signature pre-filter is *sound*: whenever it rejects a
    /// (pattern, target) pair, the brute-force oracle confirms
    /// non-containment — so pre-filtering can never drop a true answer.
    /// Dually, every oracle-positive pair passes the pre-filter.
    #[test]
    fn signature_prefilter_never_drops_a_true_answer(seed in 0u64..1500) {
        let (pattern, target) = make_case(seed);
        let feasible = filter::signature_may_contain(pattern.signature(), target.signature());
        let truth = BruteForce.contains(&pattern, &target);
        if !feasible {
            prop_assert!(
                !truth,
                "pre-filter rejected a contained pair (seed {}):\nP={:?}\nT={:?}",
                seed, &pattern, &target
            );
        }
        if truth {
            prop_assert!(feasible, "oracle-positive pair must pass the pre-filter");
        }
        // and the fuller degree-sequence tier stays sound too
        if truth {
            prop_assert!(filter::may_contain(&pattern, &target));
        }
    }

    /// Method M's pre-filtered scan returns exactly the brute-force answer
    /// set over a random candidate pool, for both query kinds — the
    /// scan-level statement of pre-filter soundness.
    #[test]
    fn prefiltered_scan_matches_bruteforce_oracle(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37).wrapping_add(13));
        let pool: Vec<LabeledGraph> = (0..12)
            .map(|_| {
                let n = rng.random_range(2..9usize);
                let extra = rng.random_range(0..3usize);
                random_connected_graph(&mut rng, n, extra, |r| r.random_range(0..3u16))
            })
            .collect();
        let (query, _) = make_case(seed);
        let cands = BitSet::from_indices(0..pool.len());
        for kind in [QueryKind::Subgraph, QueryKind::Supergraph] {
            let got = MethodM::new(Algorithm::Vf2Plus).run(&query, kind, &pool, &cands);
            let expected: Vec<usize> = pool
                .iter()
                .enumerate()
                .filter(|(_, g)| match kind {
                    QueryKind::Subgraph => BruteForce.contains(&query, g),
                    QueryKind::Supergraph => BruteForce.contains(g, &query),
                })
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(
                got.answer.iter_ones().collect::<Vec<_>>(),
                expected,
                "seed {} kind {:?}", seed, kind
            );
            prop_assert_eq!(got.tests, pool.len() as u64);
        }
    }

    /// Containment is reflexive and respects edge monotonicity: removing an
    /// edge from the pattern preserves containment.
    #[test]
    fn edge_removal_monotonicity(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        let n = rng.random_range(3..9usize);
        let extra = rng.random_range(0..n);
        let g = random_connected_graph(&mut rng, n, extra, |r| r.random_range(0..3u16));
        for algo in Algorithm::ALL {
            prop_assert!(algo.matcher().contains(&g, &g), "{} not reflexive", algo);
        }
        // drop one random edge from a copy — still contained in original
        let edges: Vec<_> = g.edges().collect();
        if !edges.is_empty() {
            let (u, v) = edges[rng.random_range(0..edges.len())];
            let mut smaller = g.clone();
            smaller.remove_edge(u, v).unwrap();
            for algo in Algorithm::ALL {
                prop_assert!(
                    algo.matcher().contains(&smaller, &g),
                    "{} violated edge monotonicity", algo
                );
            }
        }
    }
}
