//! Cross-validation of two independent isomorphism deciders:
//!
//! * `gc_graph::canon` — refinement + branching canonical forms;
//! * mutual non-induced containment with equal sizes (the §6.3 criterion
//!   GC+ itself uses for exact-match detection), decided by VF2.
//!
//! For any two graphs of equal size signature these must agree — a strong
//! consistency check tying the cache's exact-match logic to an
//! independently implemented certificate.

use gc_graph::canon::isomorphic;
use gc_graph::generate::random_connected_graph;
use gc_graph::LabeledGraph;
use gc_subiso::vf2::Vf2;
use gc_subiso::SubgraphMatcher;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The §6.3 exact-match criterion: same vertex/edge counts + one-way
/// containment (which forces the injection to be an isomorphism).
fn iso_by_subiso(a: &LabeledGraph, b: &LabeledGraph) -> bool {
    a.vertex_count() == b.vertex_count() && a.edge_count() == b.edge_count() && Vf2.contains(a, b)
}

fn permute(graph: &LabeledGraph, rng: &mut StdRng) -> LabeledGraph {
    let n = graph.vertex_count();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(rng);
    let mut labels = vec![0u16; n];
    for v in 0..n {
        labels[perm[v] as usize] = graph.label(v as u32);
    }
    let edges: Vec<(u32, u32)> = graph
        .edges()
        .map(|(u, v)| (perm[u as usize], perm[v as usize]))
        .collect();
    LabeledGraph::from_parts(labels, &edges).unwrap()
}

proptest! {
    /// Positive direction: permuted copies are isomorphic under both
    /// deciders.
    #[test]
    fn permuted_copies_agree(seed in 0u64..600) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(2..10usize);
        let extra = rng.random_range(0..4usize);
        let a = random_connected_graph(&mut rng, n, extra, |r| r.random_range(0..3u16));
        let b = permute(&a, &mut rng);
        prop_assert!(isomorphic(&a, &b), "canon missed an isomorphism (seed {})", seed);
        prop_assert!(iso_by_subiso(&a, &b), "sub-iso missed an isomorphism (seed {})", seed);
    }

    /// Both deciders give the same verdict on arbitrary same-size pairs.
    #[test]
    fn deciders_agree_on_random_pairs(seed in 0u64..800) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7919));
        let n = rng.random_range(2..8usize);
        let extra_a = rng.random_range(0..3usize);
        let extra_b = rng.random_range(0..3usize);
        let a = random_connected_graph(&mut rng, n, extra_a, |r| r.random_range(0..2u16));
        let b = random_connected_graph(&mut rng, n, extra_b, |r| r.random_range(0..2u16));
        // only meaningful when the cheap preconditions match
        if a.edge_count() == b.edge_count() {
            prop_assert_eq!(
                isomorphic(&a, &b),
                iso_by_subiso(&a, &b),
                "deciders disagree (seed {}):\nA={:?}\nB={:?}", seed, &a, &b
            );
        }
    }
}
