//! Differential harness, Method M layer: the postings-bitset index with
//! Method M's pre-filter folded in must be *operationally equivalent* to
//! the paper's full scan with the per-candidate pre-filter on. For every
//! random dataset, query and kind:
//!
//! * **bit-identical answers** — scanning the index's candidate set with
//!   the pre-filter off returns exactly the full scan's answer bitset;
//! * **metrics-compatible counts** — the index emits precisely the
//!   candidates the pre-filter would pass, so `full.prefilter_skips ==
//!   live − |index candidates|` and the folded scan runs one test per
//!   index candidate with zero skips;
//! * the equivalence survives parallel scanning, budget cancellation
//!   (both sides' partial answers are sound subsets) and per-candidate
//!   panic containment.

use gc_dataset::{ChangeLog, GraphStore, LabelIndex};
use gc_graph::generate::{bfs_extract, random_connected_graph};
use gc_graph::{BitSet, GraphSource, LabeledGraph};
use gc_subiso::{Algorithm, CancelToken, MethodM, QueryKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_store(seed: u64) -> (GraphStore, ChangeLog, Vec<LabeledGraph>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(8..30usize);
    let labels = rng.random_range(2..5u16);
    let graphs: Vec<LabeledGraph> = (0..n)
        .map(|_| {
            let v = rng.random_range(3..12usize);
            let extra = rng.random_range(0..v);
            random_connected_graph(&mut rng, v, extra, |r| r.random_range(0..labels))
        })
        .collect();
    let store = GraphStore::from_graphs(graphs.clone());
    (store, ChangeLog::new(), graphs)
}

fn make_query(rng: &mut StdRng, graphs: &[LabeledGraph]) -> LabeledGraph {
    if rng.random_range(0..10u32) < 7 {
        let src = &graphs[rng.random_range(0..graphs.len())];
        let start = rng.random_range(0..src.vertex_count() as u32);
        let want = rng.random_range(1..=src.edge_count().min(5));
        if let Some(q) = bfs_extract(rng, src, start, want) {
            return q;
        }
    }
    let v = rng.random_range(2..6usize);
    random_connected_graph(rng, v, 1, |r| r.random_range(0..5u16))
}

fn index_candidates(idx: &LabelIndex, q: &LabeledGraph, kind: QueryKind) -> BitSet {
    match kind {
        QueryKind::Subgraph => idx.subgraph_candidates(q),
        QueryKind::Supergraph => idx.supergraph_candidates(q),
    }
}

proptest! {
    /// The fold identity: prefiltered-full-scan ≡ unfiltered-scan over
    /// the index's candidates — answers bit-identical, counts reconciled.
    #[test]
    fn folded_index_scan_equals_prefiltered_full_scan(seed in 0u64..250) {
        let (store, log, graphs) = build_store(seed);
        let idx = LabelIndex::build(&store, &log);
        let live = store.live_bitset();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF01D);
        for kind in [QueryKind::Subgraph, QueryKind::Supergraph] {
            let q = make_query(&mut rng, &graphs);
            let cands = index_candidates(&idx, &q, kind);
            for algo in [Algorithm::Vf2, Algorithm::Vf2Plus] {
                let full = MethodM::new(algo).run(&q, kind, &store, &live);
                let folded = MethodM::new(algo)
                    .with_prefilter(false)
                    .run(&q, kind, &store, &cands);
                prop_assert_eq!(&folded.answer, &full.answer, "answer divergence ({:?})", kind);
                // one test per candidate on both sides...
                prop_assert_eq!(full.tests, live.count_ones() as u64);
                prop_assert_eq!(folded.tests, cands.count_ones() as u64);
                // ...and the index rejected exactly what the pre-filter
                // would have skipped: the fold loses no information
                prop_assert_eq!(
                    full.prefilter_skips,
                    (live.count_ones() - cands.count_ones()) as u64,
                    "index candidates must be exactly the pre-filter survivors"
                );
                prop_assert_eq!(folded.prefilter_skips, 0);
            }
        }
    }

    /// The fold equivalence is preserved by the parallel scan path.
    #[test]
    fn folded_scan_is_parallel_safe(seed in 0u64..60) {
        let (store, log, graphs) = build_store(seed);
        let idx = LabelIndex::build(&store, &log);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9A11);
        let q = make_query(&mut rng, &graphs);
        let cands = index_candidates(&idx, &q, QueryKind::Subgraph);
        let seq = MethodM::new(Algorithm::Vf2)
            .with_prefilter(false)
            .run(&q, QueryKind::Subgraph, &store, &cands);
        let par = MethodM::parallel(Algorithm::Vf2, 4)
            .with_prefilter(false)
            .run(&q, QueryKind::Subgraph, &store, &cands);
        prop_assert_eq!(&par.answer, &seq.answer);
        prop_assert_eq!(par.tests, seq.tests);
    }

    /// Under a fired test-cap budget both pipelines degrade *soundly*:
    /// every positive is verified, so both partial answers are subsets of
    /// the exact answer, and the folded side never exceeds its cap.
    #[test]
    fn budget_cancellation_stays_sound_on_both_sides(seed in 0u64..60, cap in 1u64..6) {
        let (store, log, graphs) = build_store(seed);
        let idx = LabelIndex::build(&store, &log);
        let live = store.live_bitset();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0D6);
        let q = make_query(&mut rng, &graphs);
        let cands = index_candidates(&idx, &q, QueryKind::Subgraph);
        let exact = MethodM::new(Algorithm::Vf2).run(&q, QueryKind::Subgraph, &store, &live);

        let m = MethodM::new(Algorithm::Vf2);
        let full = m.run_budgeted(
            &q, QueryKind::Subgraph, &store, &live,
            &CancelToken::new(None, Some(cap)),
        );
        let folded = m.with_prefilter(false).run_budgeted(
            &q, QueryKind::Subgraph, &store, &cands,
            &CancelToken::new(None, Some(cap)),
        );
        prop_assert!(full.answer.is_subset_of(&exact.answer));
        prop_assert!(folded.answer.is_subset_of(&exact.answer));
        prop_assert!(folded.tests <= cap);
        // a budget generous enough for every index candidate decides the
        // folded side exactly, even if the full scan would still be short
        let enough = m.with_prefilter(false).run_budgeted(
            &q, QueryKind::Subgraph, &store, &cands,
            &CancelToken::new(None, Some(cands.count_ones() as u64 + 1)),
        );
        prop_assert!(enough.interrupted.is_none());
        prop_assert_eq!(&enough.answer, &exact.answer);
    }
}

/// A graph source that panics when one specific id is examined — the
/// containment path both pipelines must survive identically.
struct PanicOn {
    graphs: Vec<LabeledGraph>,
    bomb: usize,
}

impl GraphSource for PanicOn {
    fn graph(&self, id: usize) -> Option<&LabeledGraph> {
        assert!(id != self.bomb, "injected graph-access panic");
        self.graphs.get(id)
    }
    fn id_span(&self) -> usize {
        self.graphs.len()
    }
}

#[test]
fn injected_panic_is_contained_identically_by_both_pipelines() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let (store, log, graphs) = build_store(17);
    let idx = LabelIndex::build(&store, &log);
    let mut rng = StdRng::seed_from_u64(17);
    let q = make_query(&mut rng, &graphs);
    let cands = idx.subgraph_candidates(&q);
    let bomb = cands.iter_ones().next().expect("non-empty candidate set");
    let source = PanicOn {
        graphs: graphs.clone(),
        bomb,
    };
    let live = store.live_bitset();

    let m = MethodM::new(Algorithm::Vf2);
    let full = m.run(&q, QueryKind::Subgraph, &source, &live);
    let folded = m
        .with_prefilter(false)
        .run(&q, QueryKind::Subgraph, &source, &cands);
    std::panic::set_hook(prev);

    assert_eq!(full.panics_recovered, 1);
    assert_eq!(folded.panics_recovered, 1);
    assert_eq!(
        full.answer, folded.answer,
        "both sides recover with the same verified positives"
    );
    let exact = MethodM::new(Algorithm::Vf2).run(&q, QueryKind::Subgraph, &store, &live);
    assert!(full.answer.is_subset_of(&exact.answer));
    let mut rest = exact.answer.clone();
    rest.set(bomb, false);
    assert_eq!(
        full.answer, rest,
        "only the bombed candidate is left undecided"
    );
}
