//! Adversarial and structure-heavy cases for the SI algorithms — shapes
//! known to stress specific parts of sub-iso search: automorphism-rich
//! targets (cycles, cliques, bipartite), label-uniform graphs (no label
//! pruning), near-miss patterns (one edge short of impossible), and the
//! non-induced semantics corner cases.

use gc_graph::LabeledGraph;
use gc_subiso::bruteforce::BruteForce;
use gc_subiso::{Algorithm, SubgraphMatcher};

fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
    LabeledGraph::from_parts(labels, edges).unwrap()
}

fn cycle(n: u32, label: u16) -> LabeledGraph {
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    g(vec![label; n as usize], &edges)
}

fn clique(n: u32, label: u16) -> LabeledGraph {
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((i, j));
        }
    }
    g(vec![label; n as usize], &edges)
}

fn path(n: u32, label: u16) -> LabeledGraph {
    let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    g(vec![label; n as usize], &edges)
}

fn star(leaves: u32, label: u16) -> LabeledGraph {
    let edges: Vec<(u32, u32)> = (1..=leaves).map(|i| (0, i)).collect();
    g(vec![label; (leaves + 1) as usize], &edges)
}

fn complete_bipartite(a: u32, b: u32, label: u16) -> LabeledGraph {
    let mut edges = Vec::new();
    for i in 0..a {
        for j in 0..b {
            edges.push((i, a + j));
        }
    }
    g(vec![label; (a + b) as usize], &edges)
}

/// Checks all four matchers agree on the expected verdict.
fn check(pattern: &LabeledGraph, target: &LabeledGraph, expected: bool, what: &str) {
    assert_eq!(
        BruteForce.contains(pattern, target),
        expected,
        "oracle disagrees on: {what}"
    );
    for algo in Algorithm::ALL {
        assert_eq!(
            algo.matcher().contains(pattern, target),
            expected,
            "{algo} wrong on: {what}"
        );
    }
}

#[test]
fn cycles_in_cycles() {
    // Cn ⊆ Cm iff n == m (for unlabeled simple cycles, non-induced:
    // a shorter cycle cannot wrap around a longer one)
    check(&cycle(4, 0), &cycle(4, 0), true, "C4 in C4");
    check(&cycle(3, 0), &cycle(4, 0), false, "C3 in C4");
    check(&cycle(4, 0), &cycle(5, 0), false, "C4 in C5");
    check(&cycle(5, 0), &cycle(4, 0), false, "C5 in C4");
    // but paths of matching length embed in any big-enough cycle
    check(&path(4, 0), &cycle(4, 0), true, "P4 in C4");
    check(&path(5, 0), &cycle(4, 0), false, "P5 needs 5 vertices");
}

#[test]
fn cycles_in_cliques_non_induced() {
    // non-induced: every Cn ⊆ Kn and ⊆ Km for m ≥ n
    check(&cycle(3, 0), &clique(3, 0), true, "C3 in K3");
    check(&cycle(4, 0), &clique(4, 0), true, "C4 in K4");
    check(&cycle(4, 0), &clique(5, 0), true, "C4 in K5");
    check(
        &cycle(5, 0),
        &clique(4, 0),
        false,
        "C5 in K4 (too few vertices)",
    );
}

#[test]
fn cliques_in_bipartite() {
    // K3 contains a triangle; bipartite graphs are triangle-free
    check(
        &clique(3, 0),
        &complete_bipartite(3, 3, 0),
        false,
        "K3 in K3,3",
    );
    // C4 embeds in K3,3 (even cycle)
    check(
        &cycle(4, 0),
        &complete_bipartite(3, 3, 0),
        true,
        "C4 in K3,3",
    );
    // C6 too
    check(
        &cycle(6, 0),
        &complete_bipartite(3, 3, 0),
        true,
        "C6 in K3,3",
    );
    // odd cycle C5 does not (bipartite = no odd cycles)
    check(
        &cycle(5, 0),
        &complete_bipartite(3, 3, 0),
        false,
        "C5 in K3,3",
    );
}

#[test]
fn stars_and_degree_bounds() {
    check(&star(3, 0), &star(5, 0), true, "K1,3 in K1,5");
    check(&star(5, 0), &star(3, 0), false, "K1,5 in K1,3");
    // star needs a hub of matching degree somewhere
    check(&star(3, 0), &path(6, 0), false, "K1,3 in P6 (max degree 2)");
    check(&star(3, 0), &clique(4, 0), true, "K1,3 in K4");
}

#[test]
fn near_miss_one_edge_short() {
    // target = K4 minus one edge; K4 must not embed, C4 must
    let mut k4_minus = clique(4, 0);
    k4_minus.remove_edge(0, 1).unwrap();
    check(&clique(4, 0), &k4_minus, false, "K4 in K4-e");
    check(&cycle(4, 0), &k4_minus, true, "C4 in K4-e");
    check(&cycle(3, 0), &k4_minus, true, "C3 in K4-e");
}

#[test]
fn label_rigidity_breaks_symmetry() {
    // a labeled path 0-1-2 embeds in a labeled cycle only if the label
    // sequence appears
    let p = g(vec![0, 1, 2], &[(0, 1), (1, 2)]);
    let t_yes = g(vec![0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let t_no = g(vec![0, 2, 1, 3], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    check(&p, &t_yes, true, "labeled path in matching cycle");
    check(&p, &t_no, false, "labeled path in mismatched cycle");
}

#[test]
fn uniform_labels_maximum_search() {
    // label-uniform medium graphs: label pruning is useless, so this
    // exercises the structural search paths
    let target = complete_bipartite(4, 4, 7);
    check(&cycle(8, 7), &target, true, "C8 in K4,4");
    check(&cycle(7, 7), &target, false, "C7 in K4,4");
    check(&complete_bipartite(2, 3, 7), &target, true, "K2,3 in K4,4");
    check(&clique(3, 7), &target, false, "K3 in K4,4");
}

#[test]
fn disconnected_patterns_pack_injectively() {
    // two disjoint edges need 4 distinct vertices
    let two_edges = g(vec![0, 0, 0, 0], &[(0, 1), (2, 3)]);
    check(&two_edges, &path(4, 0), true, "2xP2 in P4");
    check(&two_edges, &path(3, 0), false, "2xP2 in P3 (3 vertices)");
    check(&two_edges, &cycle(4, 0), true, "2xP2 in C4");
    // isolated vertices count against injectivity too
    let dots = g(vec![0; 5], &[]);
    check(&dots, &cycle(4, 0), false, "5 dots in 4 vertices");
    check(&dots, &cycle(5, 0), true, "5 dots in 5 vertices");
}

#[test]
fn self_containment_of_every_shape() {
    for target in [
        cycle(6, 1),
        clique(5, 2),
        star(6, 3),
        path(7, 4),
        complete_bipartite(3, 4, 5),
    ] {
        check(&target, &target, true, "self containment");
    }
}

#[test]
fn petersen_like_stress() {
    // the Petersen graph: 3-regular, girth 5 — C5 embeds, C3/C4 do not
    let outer: Vec<(u32, u32)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
    let inner: Vec<(u32, u32)> = (0..5).map(|i| (5 + i, 5 + (i + 2) % 5)).collect();
    let spokes: Vec<(u32, u32)> = (0..5).map(|i| (i, 5 + i)).collect();
    let mut edges = outer;
    edges.extend(inner);
    edges.extend(spokes);
    let petersen = g(vec![0; 10], &edges);
    assert_eq!(petersen.edge_count(), 15);

    check(&cycle(3, 0), &petersen, false, "C3 in Petersen (girth 5)");
    check(&cycle(4, 0), &petersen, false, "C4 in Petersen (girth 5)");
    check(&cycle(5, 0), &petersen, true, "C5 in Petersen");
    check(&cycle(6, 0), &petersen, true, "C6 in Petersen");
    check(&star(3, 0), &petersen, true, "K1,3 in 3-regular graph");
    check(&star(4, 0), &petersen, false, "K1,4 needs degree 4");
    check(&petersen, &petersen, true, "Petersen in itself");
}

#[test]
fn vf2plus_prunes_at_least_as_hard_on_symmetric_negatives() {
    // label-uniform symmetric negative case: VF2+'s extra degree and
    // neighborhood checks can only remove candidates relative to VF2.
    // (GQL is *not* compared here — its strength is label filtering,
    // which has no grip on a label-uniform graph; see the labeled test.)
    let pattern = cycle(7, 0);
    let target = complete_bipartite(4, 4, 0);
    let (found_vf2, s_vf2) = Algorithm::Vf2
        .matcher()
        .contains_with_stats(&pattern, &target);
    let (found_plus, s_plus) = Algorithm::Vf2Plus
        .matcher()
        .contains_with_stats(&pattern, &target);
    assert!(!found_vf2 && !found_plus);
    assert!(s_vf2.nodes > 0 && s_plus.nodes > 0);
    assert!(
        s_plus.nodes <= s_vf2.nodes,
        "VF2+ expanded {} nodes vs VF2 {}",
        s_plus.nodes,
        s_vf2.nodes
    );
}

#[test]
fn gql_filtering_wins_on_label_rich_negatives() {
    // a label-rich near-miss: GQL's profile filter + refinement should
    // collapse the candidate sets and beat vanilla VF2's node count
    let pattern = g(
        vec![0, 1, 2, 3, 4],
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], // labeled C5
    );
    // target: a large labeled grid-ish graph with the right labels but no
    // such cycle (labels laid out along a path)
    let n = 40u32;
    let labels: Vec<u16> = (0..n).map(|i| (i % 5) as u16).collect();
    let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.extend((0..n - 7).map(|i| (i, i + 7))); // chords that never close a labeled C5
    let target = g(labels, &edges);

    let (found_vf2, s_vf2) = Algorithm::Vf2
        .matcher()
        .contains_with_stats(&pattern, &target);
    let (found_gql, s_gql) = Algorithm::GraphQl
        .matcher()
        .contains_with_stats(&pattern, &target);
    assert_eq!(found_vf2, found_gql);
    assert!(
        s_gql.nodes <= s_vf2.nodes,
        "GQL expanded {} nodes vs VF2 {} on a label-rich case",
        s_gql.nodes,
        s_vf2.nodes
    );
}
