//! VF2+ — the "modified VF2" distributed with CT-Index (Klein, Kriege,
//! Mutzel, ICDE 2011), one of the paper's three Method M implementations.
//!
//! Relative to vanilla VF2 it adds (all described in the CT-Index paper and
//! in Lee et al.'s comparison, and mirrored here):
//!
//! * a **static variable ordering** that starts from the pattern vertex
//!   whose label is rarest in the target and greedily extends the connected
//!   prefix (rarest label / highest degree first), so mismatches surface
//!   near the root of the search tree;
//! * a **degree filter** — candidate `v` must satisfy
//!   `deg(v) ≥ deg(u)`;
//! * a **neighborhood label filter** — the multiset of labels on `u`'s
//!   unmapped neighbors must be dominated by the labels on `v`'s unused
//!   neighbors.
//!
//! The backtracking core (consistency + lookahead) is shared with
//! [`crate::vf2`], exactly as VF2+ is a drop-in modification of VF2.

use gc_graph::{LabeledGraph, VertexId};

use crate::cancel::{CancelToken, Interrupt};
use crate::vf2::{EngineOptions, Vf2Engine};
use crate::{MatchStats, SubgraphMatcher};

/// VF2+ matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct Vf2Plus;

impl Vf2Plus {
    const OPTS: EngineOptions = EngineOptions {
        degree_check: true,
        neighbor_label_check: true,
        rare_label_order: true,
    };
}

impl SubgraphMatcher for Vf2Plus {
    fn name(&self) -> &'static str {
        "VF2+"
    }

    fn contains_with_stats(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> (bool, MatchStats) {
        let (embedding, stats) = Vf2Engine::new(pattern, target, Self::OPTS).run();
        (embedding.is_some(), stats)
    }

    fn find_embedding(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> Option<Vec<VertexId>> {
        Vf2Engine::new(pattern, target, Self::OPTS).run().0
    }

    fn contains_budgeted(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        token: &CancelToken,
    ) -> Result<bool, Interrupt> {
        Vf2Engine::new(pattern, target, Self::OPTS)
            .with_token(token)
            .run_budgeted()
            .map(|(embedding, _)| embedding.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf2::{verify_embedding, Vf2};
    use gc_graph::generate::random_connected_graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    #[test]
    fn agrees_with_vf2_on_basics() {
        let tri = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p3 = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
        assert!(Vf2Plus.contains(&p3, &tri));
        assert!(!Vf2Plus.contains(&tri, &p3));
        assert!(Vf2Plus.contains(&tri, &tri));
    }

    #[test]
    fn embedding_valid() {
        let p = g(vec![0, 1], &[(0, 1)]);
        let t = g(vec![1, 0, 1], &[(0, 1), (1, 2)]);
        let e = Vf2Plus.find_embedding(&p, &t).unwrap();
        assert!(verify_embedding(&p, &t, &e));
    }

    #[test]
    fn randomized_agreement_with_vf2() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut positives = 0;
        for i in 0..120 {
            let tn = rng.random_range(4..14usize);
            let extra = rng.random_range(0..tn);
            let target = random_connected_graph(&mut rng, tn, extra, |r| r.random_range(0..3u16));
            let pattern = if i % 2 == 0 {
                // extracted pattern: guaranteed positive
                let start = rng.random_range(0..tn as u32);
                let want = rng.random_range(1..=target.edge_count().min(6));
                match gc_graph::generate::bfs_extract(&mut rng, &target, start, want) {
                    Some(p) => p,
                    None => continue,
                }
            } else {
                let pn = rng.random_range(2..6usize);
                let pextra = if pn >= 4 { rng.random_range(0..2) } else { 0 };
                random_connected_graph(&mut rng, pn, pextra, |r| r.random_range(0..3u16))
            };
            let a = Vf2.contains(&pattern, &target);
            let b = Vf2Plus.contains(&pattern, &target);
            assert_eq!(
                a, b,
                "disagreement on case {i}:\nP={pattern:?}\nT={target:?}"
            );
            if a {
                positives += 1;
            }
        }
        assert!(positives > 20, "test should exercise positive cases");
    }

    #[test]
    fn prunes_at_least_as_hard_as_vf2_on_negatives() {
        // a labeled pattern absent from the target: VF2+ should expand no
        // more search nodes than VF2 on this adversarial-ish case
        let pattern = g(vec![0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut rng = StdRng::seed_from_u64(7);
        let target = random_connected_graph(&mut rng, 40, 20, |r| r.random_range(2..4u16));
        let (found_a, s_a) = Vf2.contains_with_stats(&pattern, &target);
        let (found_b, s_b) = Vf2Plus.contains_with_stats(&pattern, &target);
        assert!(!found_a && !found_b);
        assert!(
            s_b.nodes <= s_a.nodes,
            "VF2+ expanded {} nodes, VF2 {}",
            s_b.nodes,
            s_a.nodes
        );
    }
}
