//! Cooperative cancellation and budget accounting for sub-iso search.
//!
//! Sub-iso tests are NP-complete: a single adversarial candidate can take
//! arbitrarily long, and a cache front-end that serves interactive traffic
//! cannot afford to wedge a query behind it. The contract here is the usual
//! cooperative one — nothing is preempted; instead the long-running search
//! loops ([`crate::vf2`], [`crate::graphql`]) and the Method M candidate
//! scan ([`crate::method`]) periodically consult a shared [`CancelToken`]
//! and unwind *cleanly* with an [`Interrupt`] when the budget is exhausted.
//!
//! Two budget dimensions, both optional:
//!
//! * a **wall-clock deadline** (absolute [`Instant`]), checked at search
//!   checkpoints (every [`CHECK_INTERVAL`] expanded nodes) so the cost of
//!   `Instant::now()` is amortized over thousands of node expansions;
//! * a **test cap** — an upper bound on candidates charged via
//!   [`CancelToken::charge_test`], which bounds Method M scan work even
//!   when each individual test is fast.
//!
//! Tokens are `Arc`-shared and freely cloneable across worker threads; all
//! state is atomic. A token with no limits ([`CancelToken::unlimited`])
//! never interrupts and costs one relaxed load per checkpoint.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Search nodes expanded between deadline checks inside the backtracking
/// engines. Power of two so the check compiles to a mask test.
pub const CHECK_INTERVAL: u64 = 1024;

/// Why a search or scan stopped early. Carried in degraded query outcomes
/// so callers can distinguish "partial because slow" from "partial because
/// a worker crashed".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// Explicitly cancelled via [`CancelToken::cancel`].
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The sub-iso test cap was reached.
    TestCap,
    /// A worker panicked mid-scan; the panic was contained but its
    /// candidate (and possibly others) went undecided.
    Panic,
}

impl Interrupt {
    /// Short stable name for reports and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Interrupt::Cancelled => "cancelled",
            Interrupt::Deadline => "deadline",
            Interrupt::TestCap => "test-cap",
            Interrupt::Panic => "panic",
        }
    }
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    test_cap: Option<u64>,
    tests: AtomicU64,
    cancelled: AtomicBool,
}

/// Shared cancellation/budget handle threaded through sub-iso kernels.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with the given limits; `None` disables that dimension.
    pub fn new(deadline: Option<Instant>, test_cap: Option<u64>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                deadline,
                test_cap,
                tests: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// A token that never interrupts (unless [`cancel`](Self::cancel)ed).
    pub fn unlimited() -> Self {
        CancelToken::new(None, None)
    }

    /// A token whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken::new(Some(Instant::now() + timeout), None)
    }

    /// A process-wide token with no limits, for call sites that need a
    /// `&CancelToken` but have no budget to enforce.
    pub fn unlimited_ref() -> &'static CancelToken {
        static UNLIMITED: OnceLock<CancelToken> = OnceLock::new();
        UNLIMITED.get_or_init(CancelToken::unlimited)
    }

    /// Requests cancellation; observed at the next checkpoint.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](Self::cancel) been called?
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Sub-iso tests charged so far across all clones of this token.
    pub fn tests_charged(&self) -> u64 {
        self.inner.tests.load(Ordering::Relaxed)
    }

    /// Cheap checkpoint: cancellation flag, then deadline. Called from
    /// search inner loops every [`CHECK_INTERVAL`] nodes.
    #[inline]
    pub fn check(&self) -> Result<(), Interrupt> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(Interrupt::Cancelled);
        }
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                return Err(Interrupt::Deadline);
            }
        }
        Ok(())
    }

    /// Charges one sub-iso test against the cap, then runs the checkpoint.
    /// Called once per candidate before the matcher is invoked; on `Err`
    /// the candidate has *not* been examined.
    #[inline]
    pub fn charge_test(&self) -> Result<(), Interrupt> {
        if let Some(cap) = self.inner.test_cap {
            if self.inner.tests.fetch_add(1, Ordering::Relaxed) >= cap {
                return Err(Interrupt::TestCap);
            }
        } else {
            self.inner.tests.fetch_add(1, Ordering::Relaxed);
        }
        self.check()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_interrupts() {
        let t = CancelToken::unlimited();
        for _ in 0..10_000 {
            assert!(t.charge_test().is_ok());
        }
        assert!(t.check().is_ok());
        assert_eq!(t.tests_charged(), 10_000);
    }

    #[test]
    fn cancel_flag_observed_by_clones() {
        let t = CancelToken::unlimited();
        let t2 = t.clone();
        t.cancel();
        assert_eq!(t2.check(), Err(Interrupt::Cancelled));
        assert!(t2.is_cancelled());
    }

    #[test]
    fn test_cap_enforced() {
        let t = CancelToken::new(None, Some(3));
        assert!(t.charge_test().is_ok());
        assert!(t.charge_test().is_ok());
        assert!(t.charge_test().is_ok());
        assert_eq!(t.charge_test(), Err(Interrupt::TestCap));
        // sticky: later charges keep failing
        assert_eq!(t.charge_test(), Err(Interrupt::TestCap));
    }

    #[test]
    fn elapsed_deadline_interrupts() {
        let t = CancelToken::new(Some(Instant::now() - Duration::from_millis(1)), None);
        assert_eq!(t.check(), Err(Interrupt::Deadline));
        assert_eq!(t.charge_test(), Err(Interrupt::Deadline));
    }

    #[test]
    fn future_deadline_passes() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(t.check().is_ok());
    }

    #[test]
    fn interrupt_names() {
        assert_eq!(Interrupt::Deadline.to_string(), "deadline");
        assert_eq!(Interrupt::Panic.name(), "panic");
        assert_eq!(Interrupt::Cancelled.name(), "cancelled");
        assert_eq!(Interrupt::TestCap.name(), "test-cap");
    }
}
