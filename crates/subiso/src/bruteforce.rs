//! A deliberately naive exhaustive matcher — the testing oracle.
//!
//! It enumerates injective label-preserving vertex assignments in plain
//! input order and checks *all* pattern edges only at the leaves. No
//! ordering heuristics, no lookahead, no candidate filtering — so a bug in
//! VF2/VF2+/GQL pruning cannot be masked by a shared implementation
//! artifact. Only usable on tiny graphs; tests keep patterns ≤ 7 vertices.

use gc_graph::{LabeledGraph, VertexId};

use crate::{MatchStats, SubgraphMatcher};

/// Exhaustive-search oracle matcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForce;

struct Search<'g> {
    pattern: &'g LabeledGraph,
    target: &'g LabeledGraph,
    assignment: Vec<VertexId>,
    used: Vec<bool>,
    nodes: u64,
}

impl Search<'_> {
    fn run(&mut self, depth: usize) -> bool {
        if depth == self.pattern.vertex_count() {
            return self.leaf_check();
        }
        for v in 0..self.target.vertex_count() as VertexId {
            if self.used[v as usize] {
                continue;
            }
            if self.pattern.label(depth as VertexId) != self.target.label(v) {
                continue;
            }
            self.nodes += 1;
            self.assignment.push(v);
            self.used[v as usize] = true;
            if self.run(depth + 1) {
                return true;
            }
            self.used[v as usize] = false;
            self.assignment.pop();
        }
        false
    }

    fn leaf_check(&self) -> bool {
        self.pattern.edges().all(|(a, b)| {
            self.target
                .has_edge(self.assignment[a as usize], self.assignment[b as usize])
        })
    }
}

impl SubgraphMatcher for BruteForce {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    fn contains_with_stats(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> (bool, MatchStats) {
        if pattern.vertex_count() > target.vertex_count() {
            return (false, MatchStats::default());
        }
        let mut s = Search {
            pattern,
            target,
            assignment: Vec::with_capacity(pattern.vertex_count()),
            used: vec![false; target.vertex_count()],
            nodes: 0,
        };
        let found = s.run(0);
        (found, MatchStats { nodes: s.nodes })
    }

    fn find_embedding(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> Option<Vec<VertexId>> {
        if pattern.vertex_count() > target.vertex_count() {
            return None;
        }
        let mut s = Search {
            pattern,
            target,
            assignment: Vec::with_capacity(pattern.vertex_count()),
            used: vec![false; target.vertex_count()],
            nodes: 0,
        };
        if s.run(0) {
            Some(s.assignment)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf2::verify_embedding;

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    #[test]
    fn basics() {
        let tri = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p3 = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
        assert!(BruteForce.contains(&p3, &tri));
        assert!(!BruteForce.contains(&tri, &p3));
        assert!(BruteForce.contains(&LabeledGraph::new(), &tri));
    }

    #[test]
    fn embedding_checks_out() {
        let p = g(vec![0, 1], &[(0, 1)]);
        let t = g(vec![1, 0], &[(0, 1)]);
        let e = BruteForce.find_embedding(&p, &t).unwrap();
        assert!(verify_embedding(&p, &t, &e));
        assert_eq!(e, vec![1, 0]);
    }

    #[test]
    fn labels_respected() {
        let p = g(vec![7], &[]);
        let t = g(vec![1, 2], &[(0, 1)]);
        assert!(!BruteForce.contains(&p, &t));
        assert!(BruteForce.find_embedding(&p, &t).is_none());
    }
}
