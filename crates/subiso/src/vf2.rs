//! VF2 for non-induced subgraph isomorphism (Cordella, Foggia, Sansone,
//! Vento, TPAMI 2004 — the monomorphism variant).
//!
//! The module hosts a shared backtracking engine (`Vf2Engine`) that both
//! vanilla VF2 and VF2+ instantiate; the two differ only in their static
//! variable ordering and candidate-pruning options, which is exactly how
//! CT-Index's "modified VF2" is described relative to the original.
//!
//! ### Feasibility rules (monomorphism-safe)
//!
//! Matching pattern vertex `u` onto target vertex `v` requires:
//!
//! 1. `l(u) = l(v)` and `v` unused;
//! 2. *consistency*: every already-mapped neighbor `w` of `u` has
//!    `(v, φ(w)) ∈ E(T)` — pattern edges must be preserved (target-only
//!    edges are fine: the containment is non-induced);
//! 3. *lookahead (cardinality)*: `u`'s unmapped neighbors must not
//!    outnumber `v`'s unused neighbors — each future neighbor of `u` must
//!    land on a distinct unused neighbor of `v`;
//! 4. *lookahead (terminal)*: `u`'s unmapped neighbors already adjacent to
//!    the mapped region must not outnumber `v`'s unused neighbors adjacent
//!    to the used region.
//!
//! Rules 3–4 are the original VF2 cut rules with `≤` comparisons, the form
//! that stays sound for non-induced containment.

use gc_graph::{LabeledGraph, VertexId};

use crate::cancel::{CancelToken, Interrupt, CHECK_INTERVAL};
use crate::{MatchStats, SubgraphMatcher};

const UNMAPPED: u32 = u32::MAX;

/// Pruning/ordering configuration distinguishing VF2 from VF2+.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EngineOptions {
    /// Require `deg(v) ≥ deg(u)` for candidates (VF2+).
    pub degree_check: bool,
    /// Require `v`'s unused neighbor labels to dominate `u`'s unmapped
    /// neighbor labels (VF2+).
    pub neighbor_label_check: bool,
    /// Rare-label-first, degree-descending static ordering (VF2+); vanilla
    /// VF2 uses plain connectivity order by vertex id.
    pub rare_label_order: bool,
}

pub(crate) struct Vf2Engine<'g> {
    pattern: &'g LabeledGraph,
    target: &'g LabeledGraph,
    opts: EngineOptions,
    order: Vec<VertexId>,
    /// pattern → target mapping (UNMAPPED sentinel).
    map: Vec<u32>,
    used: Vec<bool>,
    /// Per pattern vertex: number of mapped neighbors ("terminal" degree).
    t_pat: Vec<u32>,
    /// Per target vertex: number of used neighbors.
    t_tgt: Vec<u32>,
    nodes: u64,
    /// Optional budget; consulted every [`CHECK_INTERVAL`] expanded nodes.
    token: Option<&'g CancelToken>,
    /// Set when the token fired; makes the recursion unwind promptly.
    interrupted: Option<Interrupt>,
}

impl<'g> Vf2Engine<'g> {
    pub(crate) fn new(
        pattern: &'g LabeledGraph,
        target: &'g LabeledGraph,
        opts: EngineOptions,
    ) -> Self {
        let order = if opts.rare_label_order {
            rare_label_order(pattern, target)
        } else {
            connectivity_order(pattern)
        };
        Vf2Engine {
            pattern,
            target,
            opts,
            order,
            map: vec![UNMAPPED; pattern.vertex_count()],
            used: vec![false; target.vertex_count()],
            t_pat: vec![0; pattern.vertex_count()],
            t_tgt: vec![0; target.vertex_count()],
            nodes: 0,
            token: None,
            interrupted: None,
        }
    }

    /// Attaches a cancellation token; the search then checks it every
    /// [`CHECK_INTERVAL`] expanded nodes.
    pub(crate) fn with_token(mut self, token: &'g CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Runs the search; returns the embedding if one exists.
    pub(crate) fn run(self) -> (Option<Vec<VertexId>>, MatchStats) {
        match self.run_budgeted() {
            Ok(r) => r,
            // without a token the search cannot be interrupted
            Err(_) => unreachable!("interrupt without an attached token"),
        }
    }

    /// Runs the search under the attached budget. `Err` means the search
    /// was cut short and the (non-)existence of an embedding is *unknown*.
    pub(crate) fn run_budgeted(mut self) -> Result<(Option<Vec<VertexId>>, MatchStats), Interrupt> {
        if self.pattern.vertex_count() > self.target.vertex_count()
            || self.pattern.edge_count() > self.target.edge_count()
        {
            return Ok((None, MatchStats { nodes: 0 }));
        }
        let found = self.search(0);
        if let Some(interrupt) = self.interrupted {
            return Err(interrupt);
        }
        let stats = MatchStats { nodes: self.nodes };
        if found {
            Ok((Some(self.map), stats))
        } else {
            Ok((None, stats))
        }
    }

    fn search(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            return true;
        }
        let u = self.order[depth];
        // Candidate pool: neighbors of an already-mapped pattern-neighbor's
        // image when one exists (connected extension), else every target
        // vertex (new component).
        let anchor = self
            .pattern
            .neighbors(u)
            .iter()
            .find(|&&w| self.map[w as usize] != UNMAPPED)
            .map(|&w| self.map[w as usize]);

        match anchor {
            Some(img) => {
                // `target` is a shared 'g reference, so the neighbor slice
                // does not borrow `self` and the mutable recursion is fine.
                let target = self.target;
                for &v in target.neighbors(img) {
                    if self.interrupted.is_some() {
                        return false;
                    }
                    if self.try_extend(u, v, depth) {
                        return true;
                    }
                }
            }
            None => {
                for v in 0..self.target.vertex_count() as VertexId {
                    if self.interrupted.is_some() {
                        return false;
                    }
                    if self.try_extend(u, v, depth) {
                        return true;
                    }
                }
            }
        }
        false
    }

    fn try_extend(&mut self, u: VertexId, v: VertexId, depth: usize) -> bool {
        self.nodes += 1;
        if self.nodes & (CHECK_INTERVAL - 1) == 0 {
            if let Some(token) = self.token {
                if let Err(interrupt) = token.check() {
                    self.interrupted = Some(interrupt);
                    return false;
                }
            }
        }
        if !self.feasible(u, v) {
            return false;
        }
        self.assign(u, v);
        if self.search(depth + 1) {
            return true;
        }
        self.unassign(u, v);
        false
    }

    fn feasible(&self, u: VertexId, v: VertexId) -> bool {
        if self.used[v as usize] || self.pattern.label(u) != self.target.label(v) {
            return false;
        }
        if self.opts.degree_check && self.target.degree(v) < self.pattern.degree(u) {
            return false;
        }
        // consistency: mapped pattern-neighbors of u must be target-adjacent to v
        for &w in self.pattern.neighbors(u) {
            let img = self.map[w as usize];
            if img != UNMAPPED && !self.target.has_edge(v, img) {
                return false;
            }
        }
        // lookahead cardinalities
        let mut un_pat = 0u32; // unmapped neighbors of u
        let mut term_pat = 0u32; // ... of which adjacent to mapped region
        for &w in self.pattern.neighbors(u) {
            if self.map[w as usize] == UNMAPPED {
                un_pat += 1;
                if self.t_pat[w as usize] > 0 {
                    term_pat += 1;
                }
            }
        }
        let mut un_tgt = 0u32;
        let mut term_tgt = 0u32;
        for &z in self.target.neighbors(v) {
            if !self.used[z as usize] {
                un_tgt += 1;
                if self.t_tgt[z as usize] > 0 {
                    term_tgt += 1;
                }
            }
        }
        if un_pat > un_tgt || term_pat > term_tgt {
            return false;
        }
        if self.opts.neighbor_label_check && !self.neighbor_labels_dominated(u, v) {
            return false;
        }
        true
    }

    /// VF2+ refinement: each label needed by `u`'s unmapped neighbors must
    /// be available among `v`'s unused neighbors at least as many times.
    fn neighbor_labels_dominated(&self, u: VertexId, v: VertexId) -> bool {
        // Pattern neighborhoods are tiny (queries have ≤ ~21 vertices), so
        // a sort-free O(k²) multiset check beats hashing here.
        let mut need: Vec<(u16, i32)> = Vec::new();
        for &w in self.pattern.neighbors(u) {
            if self.map[w as usize] == UNMAPPED {
                let l = self.pattern.label(w);
                match need.iter_mut().find(|(nl, _)| *nl == l) {
                    Some((_, c)) => *c += 1,
                    None => need.push((l, 1)),
                }
            }
        }
        if need.is_empty() {
            return true;
        }
        for &z in self.target.neighbors(v) {
            if !self.used[z as usize] {
                let l = self.target.label(z);
                if let Some((_, c)) = need.iter_mut().find(|(nl, _)| *nl == l) {
                    *c -= 1;
                }
            }
        }
        need.iter().all(|&(_, c)| c <= 0)
    }

    fn assign(&mut self, u: VertexId, v: VertexId) {
        self.map[u as usize] = v;
        self.used[v as usize] = true;
        let (pattern, target) = (self.pattern, self.target);
        for &w in pattern.neighbors(u) {
            self.t_pat[w as usize] += 1;
        }
        for &z in target.neighbors(v) {
            self.t_tgt[z as usize] += 1;
        }
    }

    fn unassign(&mut self, u: VertexId, v: VertexId) {
        self.map[u as usize] = UNMAPPED;
        self.used[v as usize] = false;
        let (pattern, target) = (self.pattern, self.target);
        for &w in pattern.neighbors(u) {
            self.t_pat[w as usize] -= 1;
        }
        for &z in target.neighbors(v) {
            self.t_tgt[z as usize] -= 1;
        }
    }
}

/// Vanilla VF2 order: repeatedly take the smallest-id vertex adjacent to
/// the ordered prefix; fall back to the smallest-id remaining vertex when a
/// new component starts.
fn connectivity_order(pattern: &LabeledGraph) -> Vec<VertexId> {
    let n = pattern.vertex_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut adjacent = vec![false; n];
    for _ in 0..n {
        let next = (0..n)
            .filter(|&i| !placed[i] && adjacent[i])
            .chain((0..n).filter(|&i| !placed[i]))
            .next()
            .expect("some vertex remains");
        placed[next] = true;
        order.push(next as VertexId);
        for &w in pattern.neighbors(next as VertexId) {
            adjacent[w as usize] = true;
        }
    }
    order
}

/// VF2+ order: start from the vertex with the rarest label in the target
/// (ties: highest degree); extend with the connected vertex maximizing
/// (mapped-neighbor count, label rarity, degree).
fn rare_label_order(pattern: &LabeledGraph, target: &LabeledGraph) -> Vec<VertexId> {
    let n = pattern.vertex_count();
    // target label frequencies
    let mut freq: std::collections::HashMap<u16, u32> = std::collections::HashMap::new();
    for &l in target.labels() {
        *freq.entry(l).or_insert(0) += 1;
    }
    let rarity = |v: VertexId| freq.get(&pattern.label(v)).copied().unwrap_or(0);

    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut mapped_neighbors = vec![0u32; n];
    for _ in 0..n {
        let best = (0..n as VertexId)
            .filter(|&i| !placed[i as usize])
            .min_by_key(|&i| {
                // order key: most-connected first, then rarest label, then
                // highest degree, then id for determinism
                (
                    u32::MAX - mapped_neighbors[i as usize],
                    rarity(i),
                    usize::MAX - pattern.degree(i),
                    i,
                )
            })
            .expect("some vertex remains");
        placed[best as usize] = true;
        order.push(best);
        for &w in pattern.neighbors(best) {
            mapped_neighbors[w as usize] += 1;
        }
    }
    order
}

/// Vanilla VF2.
#[derive(Debug, Clone, Copy, Default)]
pub struct Vf2;

impl Vf2 {
    const OPTS: EngineOptions = EngineOptions {
        degree_check: false,
        neighbor_label_check: false,
        rare_label_order: false,
    };
}

impl SubgraphMatcher for Vf2 {
    fn name(&self) -> &'static str {
        "VF2"
    }

    fn contains_with_stats(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> (bool, MatchStats) {
        let (embedding, stats) = Vf2Engine::new(pattern, target, Self::OPTS).run();
        (embedding.is_some(), stats)
    }

    fn find_embedding(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> Option<Vec<VertexId>> {
        Vf2Engine::new(pattern, target, Self::OPTS).run().0
    }

    fn contains_budgeted(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        token: &CancelToken,
    ) -> Result<bool, Interrupt> {
        Vf2Engine::new(pattern, target, Self::OPTS)
            .with_token(token)
            .run_budgeted()
            .map(|(embedding, _)| embedding.is_some())
    }
}

/// Verifies that `embedding` is a label-preserving injective homomorphism
/// `pattern → target`. Test/diagnostic helper used across the workspace.
pub fn verify_embedding(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    embedding: &[VertexId],
) -> bool {
    if embedding.len() != pattern.vertex_count() {
        return false;
    }
    // injective, in-range, label-preserving
    let mut seen = vec![false; target.vertex_count()];
    for (u, &v) in embedding.iter().enumerate() {
        if (v as usize) >= target.vertex_count() || seen[v as usize] {
            return false;
        }
        seen[v as usize] = true;
        if pattern.label(u as VertexId) != target.label(v) {
            return false;
        }
    }
    // edge preservation
    pattern
        .edges()
        .all(|(a, b)| target.has_edge(embedding[a as usize], embedding[b as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::LabeledGraph;

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    fn triangle() -> LabeledGraph {
        g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)])
    }

    fn path3() -> LabeledGraph {
        g(vec![0, 0, 0], &[(0, 1), (1, 2)])
    }

    #[test]
    fn non_induced_path_in_triangle() {
        // P3 ⊆ K3 holds for *non-induced* containment.
        assert!(Vf2.contains(&path3(), &triangle()));
        // K3 ⊄ P3
        assert!(!Vf2.contains(&triangle(), &path3()));
    }

    #[test]
    fn empty_pattern_contained_everywhere() {
        let empty = LabeledGraph::new();
        assert!(Vf2.contains(&empty, &triangle()));
        assert!(Vf2.contains(&empty, &empty));
        assert_eq!(Vf2.find_embedding(&empty, &triangle()), Some(vec![]));
    }

    #[test]
    fn label_preservation() {
        let p = g(vec![1, 2], &[(0, 1)]);
        let t_match = g(vec![2, 1, 3], &[(0, 1), (1, 2)]);
        let t_mismatch = g(vec![3, 3, 3], &[(0, 1), (1, 2)]);
        assert!(Vf2.contains(&p, &t_match));
        assert!(!Vf2.contains(&p, &t_mismatch));
    }

    #[test]
    fn self_containment() {
        let t = triangle();
        assert!(Vf2.contains(&t, &t));
        let e = Vf2.find_embedding(&t, &t).unwrap();
        assert!(verify_embedding(&t, &t, &e));
    }

    #[test]
    fn disconnected_pattern() {
        // two isolated labeled vertices inside a labeled path
        let p = g(vec![1, 3], &[]);
        let t = g(vec![1, 2, 3], &[(0, 1), (1, 2)]);
        assert!(Vf2.contains(&p, &t));
        let p_missing = g(vec![1, 4], &[]);
        assert!(!Vf2.contains(&p_missing, &t));
    }

    #[test]
    fn injectivity_enforced() {
        // pattern needs two distinct label-0 vertices; target has one
        let p = g(vec![0, 0], &[]);
        let t = g(vec![0, 1], &[(0, 1)]);
        assert!(!Vf2.contains(&p, &t));
    }

    #[test]
    fn square_not_in_triangle_with_tail() {
        // C4 requires a 4-cycle; triangle+pendant has none
        let c4 = g(vec![0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tri_tail = g(vec![0; 4], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert!(!Vf2.contains(&c4, &tri_tail));
        // but P4 is in it
        let p4 = g(vec![0; 4], &[(0, 1), (1, 2), (2, 3)]);
        assert!(Vf2.contains(&p4, &tri_tail));
    }

    #[test]
    fn embedding_is_valid() {
        let p = g(vec![0, 1, 0], &[(0, 1), (1, 2)]);
        let t = g(vec![1, 0, 0, 1], &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let e = Vf2.find_embedding(&p, &t).expect("embedding exists");
        assert!(verify_embedding(&p, &t, &e));
    }

    #[test]
    fn verify_embedding_rejects_bad_maps() {
        let p = path3();
        let t = triangle();
        assert!(!verify_embedding(&p, &t, &[0, 0, 1])); // not injective
        assert!(!verify_embedding(&p, &t, &[0, 1])); // wrong arity
        assert!(!verify_embedding(&p, &t, &[0, 1, 9])); // out of range
        let t2 = g(vec![0, 0, 1], &[(0, 1), (1, 2)]);
        assert!(!verify_embedding(&path3(), &t2, &[0, 1, 2])); // label clash
        let t3 = g(vec![0, 0, 0], &[(0, 1)]);
        assert!(!verify_embedding(&path3(), &t3, &[0, 1, 2])); // missing edge
    }

    #[test]
    fn stats_count_nodes() {
        let (found, stats) = Vf2.contains_with_stats(&path3(), &triangle());
        assert!(found);
        assert!(stats.nodes >= 3, "at least one node per pattern vertex");
    }

    #[test]
    fn connectivity_order_covers_components() {
        let p = g(vec![0, 0, 0, 0], &[(2, 3)]);
        let order = connectivity_order(&p);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
