//! "Method M" — the external SI method GC+ is called to expedite.
//!
//! Per the paper's architecture (§4), Method M consists of an SI
//! implementation (`Mverifier`) applied to a candidate set `CS_M(g)` —
//! the whole live dataset when GC+ is not in front. [`MethodM::run`] scans
//! the candidate set, runs one sub-iso decision per candidate, and returns
//! the answer bitset plus the number of tests executed. That test count is
//! the denominator/numerator of Figure 5's speedups, and is *identical*
//! for every SI algorithm under the same pruned candidate set — the paper's
//! observation that Figure 5 is Method-M-independent falls out of this
//! structure.
//!
//! ### The scan hot path
//!
//! Two orthogonal optimizations sit between the candidate set and the
//! matcher, following the filter-then-verify discipline:
//!
//! * **signature pre-filter** (`prefilter`, on by default) — before any
//!   matcher runs, the candidate's cached
//!   [`GraphSignature`](gc_graph::GraphSignature) is checked against the
//!   query's: vertex/edge counts, maximum degree and label-multiset
//!   containment (direction depends on [`QueryKind`]). These are necessary
//!   conditions, so a rejected candidate is decided *negative* in O(1)
//!   without invoking the NP-complete search. Each such decision still
//!   counts as one executed test (the candidate was examined — Figure 5's
//!   accounting is unchanged) and is additionally tallied in
//!   [`MethodAnswer::prefilter_skips`];
//! * **parallel scanning** (`parallelism > 1`) — the surviving candidates
//!   fan out over scoped worker threads
//!   ([`parallel_map_indexed`](crate::parallel::parallel_map_indexed),
//!   dynamic batch claiming). Matchers are `Send + Sync`, per-candidate
//!   decisions are independent, and partial results are merged in id
//!   order, so answers, test counts and skip counts are bit-identical to
//!   the sequential scan.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use gc_graph::{BitSet, GraphSource, LabeledGraph};

use crate::cancel::{CancelToken, Interrupt};
use crate::parallel::parallel_map_indexed;
use crate::Algorithm;

/// Whether a query asks for dataset graphs *containing* it (subgraph
/// query) or *contained in* it (supergraph query) — paper §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Find all `G` with `g ⊆ G`.
    Subgraph,
    /// Find all `G` with `G ⊆ g`.
    Supergraph,
}

impl QueryKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Subgraph => "subgraph",
            QueryKind::Supergraph => "supergraph",
        }
    }
}

/// Result of a Method M scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodAnswer {
    /// Ids of candidate graphs that passed the sub-iso test.
    pub answer: BitSet,
    /// Number of sub-iso tests executed (= candidates examined). Includes
    /// candidates decided by the signature pre-filter, so the count stays
    /// Method-M- and pre-filter-independent (Figure 5's premise).
    pub tests: u64,
    /// Of `tests`, how many were decided negatively by the O(1) signature
    /// pre-filter without running the matcher.
    pub prefilter_skips: u64,
    /// `Some` when the scan stopped before deciding every candidate
    /// (budget exhausted, cancellation, or a contained worker panic). The
    /// `answer` is then a *sound but possibly incomplete* subset — every
    /// set bit is a verified positive, but unexamined candidates may be
    /// missing. `None` means the answer is exact.
    pub interrupted: Option<Interrupt>,
    /// Candidates whose sub-iso test panicked; the panic was contained and
    /// the candidate left undecided (also reflected in `interrupted`).
    pub panics_recovered: u64,
    /// Nanoseconds spent in the signature pre-filter stage. Only populated
    /// when the scan runs with [`MethodM::with_timing`]; otherwise 0 so
    /// untimed scans stay branch-cheap and bit-comparable.
    pub prefilter_nanos: u64,
    /// Nanoseconds spent inside the sub-iso decision procedures (summed
    /// across workers on a parallel scan). Only populated when timed.
    pub verify_nanos: u64,
}

impl MethodAnswer {
    /// Is the answer exact (every candidate decided)?
    pub fn is_exact(&self) -> bool {
        self.interrupted.is_none()
    }
}

/// Method M: an SI algorithm plus a scan strategy.
#[derive(Debug, Clone, Copy)]
pub struct MethodM {
    /// Which verifier to use.
    pub algorithm: Algorithm,
    /// Worker threads for the scan; `1` = sequential (deterministic wall
    /// clock, still deterministic answers either way).
    pub parallelism: usize,
    /// Signature pre-filter stage (on by default): decide candidates by
    /// O(1) signature domination before invoking the matcher.
    pub prefilter: bool,
    /// Record per-stage wall time (`prefilter_nanos` / `verify_nanos` in
    /// the answer). Off by default — two `Instant::now` calls per candidate
    /// are cheap but not free, and the paper setting must stay untouched.
    pub timed: bool,
}

impl MethodM {
    /// Sequential Method M over the given algorithm (pre-filter on).
    pub fn new(algorithm: Algorithm) -> Self {
        MethodM {
            algorithm,
            parallelism: 1,
            prefilter: true,
            timed: false,
        }
    }

    /// Parallel Method M (`threads` clamped to ≥ 1, pre-filter on).
    pub fn parallel(algorithm: Algorithm, threads: usize) -> Self {
        MethodM {
            algorithm,
            parallelism: threads.max(1),
            prefilter: true,
            timed: false,
        }
    }

    /// Toggles the signature pre-filter stage.
    pub fn with_prefilter(mut self, enabled: bool) -> Self {
        self.prefilter = enabled;
        self
    }

    /// Toggles per-stage wall-time recording (see [`MethodM::timed`]).
    pub fn with_timing(mut self, enabled: bool) -> Self {
        self.timed = enabled;
        self
    }

    /// Decides one sub-iso test according to the query kind.
    #[inline]
    pub fn decide(
        &self,
        query: &LabeledGraph,
        kind: QueryKind,
        dataset_graph: &LabeledGraph,
    ) -> bool {
        let m = self.algorithm.matcher();
        match kind {
            QueryKind::Subgraph => m.contains(query, dataset_graph),
            QueryKind::Supergraph => m.contains(dataset_graph, query),
        }
    }

    /// Decides one candidate, going through the pre-filter stage first.
    /// `Err` means the budget fired mid-test and the candidate is
    /// undecided. Stage nanos are recorded only when `self.timed`.
    #[inline]
    fn decide_filtered(
        &self,
        query: &LabeledGraph,
        kind: QueryKind,
        dataset_graph: &LabeledGraph,
        token: &CancelToken,
    ) -> Result<Decision, Interrupt> {
        let mut decision = Decision::default();
        if self.prefilter {
            let t = self.timed.then(Instant::now);
            let feasible = match kind {
                QueryKind::Subgraph => dataset_graph.signature().dominates(query.signature()),
                QueryKind::Supergraph => query.signature().dominates(dataset_graph.signature()),
            };
            if let Some(t) = t {
                decision.prefilter_nanos = t.elapsed().as_nanos() as u64;
            }
            if !feasible {
                decision.skipped = true;
                return Ok(decision);
            }
        }
        let t = self.timed.then(Instant::now);
        let m = self.algorithm.matcher();
        decision.contained = match kind {
            QueryKind::Subgraph => m.contains_budgeted(query, dataset_graph, token)?,
            QueryKind::Supergraph => m.contains_budgeted(dataset_graph, query, token)?,
        };
        if let Some(t) = t {
            decision.verify_nanos = t.elapsed().as_nanos() as u64;
        }
        Ok(decision)
    }

    /// Scans `candidates` (ids into `source`), running one sub-iso test per
    /// present graph. Ids whose graph has been deleted are skipped without
    /// counting a test (they cannot appear in a live candidate set anyway).
    pub fn run<S: GraphSource + Sync + ?Sized>(
        &self,
        query: &LabeledGraph,
        kind: QueryKind,
        source: &S,
        candidates: &BitSet,
    ) -> MethodAnswer {
        self.run_budgeted(
            query,
            kind,
            source,
            candidates,
            CancelToken::unlimited_ref(),
        )
    }

    /// Budgeted scan. Every candidate is charged against `token` before
    /// its test; a fired budget stops the scan, and a test that *panics*
    /// is contained ([`catch_unwind`]) with its candidate left undecided
    /// while the rest of the scan proceeds. Either way the returned
    /// [`MethodAnswer`] is tagged via `interrupted`: its answer bits are
    /// verified positives, but the set may be incomplete — callers must
    /// not treat it as exact or admit it into a cache.
    pub fn run_budgeted<S: GraphSource + Sync + ?Sized>(
        &self,
        query: &LabeledGraph,
        kind: QueryKind,
        source: &S,
        candidates: &BitSet,
        token: &CancelToken,
    ) -> MethodAnswer {
        if self.parallelism <= 1 {
            return self.run_sequential(query, kind, source, candidates, token);
        }
        let ids: Vec<usize> = candidates.iter_ones().collect();
        if ids.len() < 2 * self.parallelism {
            return self.run_sequential(query, kind, source, candidates, token);
        }
        let verdicts = parallel_map_indexed(ids.len(), self.parallelism, |i| {
            self.examine(query, kind, source, ids[i], token)
        });
        let mut answer = BitSet::new();
        let mut tests = 0u64;
        let mut prefilter_skips = 0u64;
        let mut interrupted = None;
        let mut panics_recovered = 0u64;
        let mut prefilter_nanos = 0u64;
        let mut verify_nanos = 0u64;
        for (i, verdict) in verdicts.iter().enumerate() {
            match *verdict {
                Verdict::Missing => {}
                Verdict::Decided(decision) => {
                    tests += 1;
                    if decision.contained {
                        answer.set(ids[i], true);
                    }
                    if decision.skipped {
                        prefilter_skips += 1;
                    }
                    prefilter_nanos += decision.prefilter_nanos;
                    verify_nanos += decision.verify_nanos;
                }
                Verdict::Interrupted(interrupt) => {
                    interrupted.get_or_insert(interrupt);
                }
                Verdict::Panicked => {
                    tests += 1;
                    panics_recovered += 1;
                    interrupted.get_or_insert(Interrupt::Panic);
                }
            }
        }
        MethodAnswer {
            answer,
            tests,
            prefilter_skips,
            interrupted,
            panics_recovered,
            prefilter_nanos,
            verify_nanos,
        }
    }

    fn run_sequential<S: GraphSource + ?Sized>(
        &self,
        query: &LabeledGraph,
        kind: QueryKind,
        source: &S,
        candidates: &BitSet,
        token: &CancelToken,
    ) -> MethodAnswer {
        let mut answer = BitSet::new();
        let mut tests = 0u64;
        let mut prefilter_skips = 0u64;
        let mut interrupted = None;
        let mut panics_recovered = 0u64;
        let mut prefilter_nanos = 0u64;
        let mut verify_nanos = 0u64;
        for id in candidates.iter_ones() {
            match self.examine(query, kind, source, id, token) {
                Verdict::Missing => {}
                Verdict::Decided(decision) => {
                    tests += 1;
                    if decision.contained {
                        answer.set(id, true);
                    }
                    if decision.skipped {
                        prefilter_skips += 1;
                    }
                    prefilter_nanos += decision.prefilter_nanos;
                    verify_nanos += decision.verify_nanos;
                }
                Verdict::Interrupted(interrupt) => {
                    interrupted = Some(interrupt);
                    break;
                }
                Verdict::Panicked => {
                    // the test crashed: contain it, leave the candidate
                    // undecided, keep scanning the rest
                    tests += 1;
                    panics_recovered += 1;
                    interrupted.get_or_insert(Interrupt::Panic);
                }
            }
        }
        MethodAnswer {
            answer,
            tests,
            prefilter_skips,
            interrupted,
            panics_recovered,
            prefilter_nanos,
            verify_nanos,
        }
    }

    /// Examines one candidate: fetch, charge the budget, decide. The whole
    /// step runs inside [`catch_unwind`] so a panic anywhere in it (the
    /// source, the pre-filter, the matcher) is contained to this candidate.
    fn examine<S: GraphSource + ?Sized>(
        &self,
        query: &LabeledGraph,
        kind: QueryKind,
        source: &S,
        id: usize,
        token: &CancelToken,
    ) -> Verdict {
        let step = catch_unwind(AssertUnwindSafe(
            || -> Result<Option<Decision>, Interrupt> {
                match source.graph(id) {
                    None => Ok(None),
                    Some(g) => {
                        token.charge_test()?;
                        self.decide_filtered(query, kind, g, token).map(Some)
                    }
                }
            },
        ));
        match step {
            Ok(Ok(None)) => Verdict::Missing,
            Ok(Ok(Some(decision))) => Verdict::Decided(decision),
            Ok(Err(interrupt)) => Verdict::Interrupted(interrupt),
            Err(_) => Verdict::Panicked,
        }
    }
}

/// Outcome of one completed candidate decision, with optional stage timing.
#[derive(Debug, Clone, Copy, Default)]
struct Decision {
    /// Did the candidate pass the sub-iso test?
    contained: bool,
    /// Was it decided negatively by the signature pre-filter alone?
    skipped: bool,
    /// Wall time in the pre-filter (0 unless the scan is timed).
    prefilter_nanos: u64,
    /// Wall time in the matcher (0 unless the scan is timed).
    verify_nanos: u64,
}

/// Per-candidate outcome of one scan step.
enum Verdict {
    /// Id not present in the source (deleted graph).
    Missing,
    /// Test completed.
    Decided(Decision),
    /// Budget fired before or during the test; candidate undecided.
    Interrupted(Interrupt),
    /// The step panicked; contained, candidate undecided.
    Panicked,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::LabeledGraph;

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    fn dataset() -> Vec<LabeledGraph> {
        vec![
            g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]), // triangle
            g(vec![0, 0, 0], &[(0, 1), (1, 2)]),         // path3
            g(vec![0, 0], &[(0, 1)]),                    // edge
            g(vec![1, 1], &[(0, 1)]),                    // labeled edge
        ]
    }

    #[test]
    fn subgraph_scan() {
        let data = dataset();
        let query = g(vec![0, 0], &[(0, 1)]); // one 0-0 edge
        let m = MethodM::new(Algorithm::Vf2);
        let cands = BitSet::from_indices(0..4);
        let r = m.run(&query, QueryKind::Subgraph, &data, &cands);
        assert_eq!(r.tests, 4);
        assert_eq!(r.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        // the 1-1 labeled edge was rejected by the signature pre-filter
        assert_eq!(r.prefilter_skips, 1);
    }

    #[test]
    fn supergraph_scan() {
        let data = dataset();
        // query: triangle — contains itself, path3 and the 0-0 edge
        let query = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let m = MethodM::new(Algorithm::GraphQl);
        let cands = BitSet::from_indices(0..4);
        let r = m.run(&query, QueryKind::Supergraph, &data, &cands);
        assert_eq!(r.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.prefilter_skips, 1, "1-1 edge cannot be ⊆ an all-0 query");
    }

    #[test]
    fn candidate_restriction_limits_tests() {
        let data = dataset();
        let query = g(vec![0, 0], &[(0, 1)]);
        let m = MethodM::new(Algorithm::Vf2Plus);
        let cands = BitSet::from_indices([1usize, 3]);
        let r = m.run(&query, QueryKind::Subgraph, &data, &cands);
        assert_eq!(r.tests, 2);
        assert_eq!(r.answer.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn missing_ids_are_skipped() {
        let data = dataset();
        let query = g(vec![0, 0], &[(0, 1)]);
        let m = MethodM::new(Algorithm::Vf2);
        let cands = BitSet::from_indices([2usize, 9, 17]);
        let r = m.run(&query, QueryKind::Subgraph, &data, &cands);
        assert_eq!(r.tests, 1);
        assert_eq!(r.answer.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn prefilter_on_and_off_agree_on_answers() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let mut data = Vec::new();
        for _ in 0..40 {
            let n = rng.random_range(3..12usize);
            let extra = rng.random_range(0..n);
            data.push(gc_graph::generate::random_connected_graph(
                &mut rng,
                n,
                extra,
                |r| r.random_range(0..4u16),
            ));
        }
        let cands = BitSet::from_indices(0..40);
        for seed in 0..10u64 {
            let mut qrng = StdRng::seed_from_u64(seed);
            let src = seed as usize % 40;
            let want = 1 + (seed as usize % 5);
            let Some(query) = gc_graph::generate::bfs_extract(&mut qrng, &data[src], 0, want)
            else {
                continue;
            };
            for kind in [QueryKind::Subgraph, QueryKind::Supergraph] {
                let on = MethodM::new(Algorithm::Vf2).run(&query, kind, &data, &cands);
                let off = MethodM::new(Algorithm::Vf2)
                    .with_prefilter(false)
                    .run(&query, kind, &data, &cands);
                assert_eq!(on.answer, off.answer, "seed {seed} {kind:?}");
                assert_eq!(on.tests, off.tests, "tests are candidate counts");
                assert_eq!(off.prefilter_skips, 0);
            }
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut data = Vec::new();
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n = rng.random_range(3..12usize);
            let extra = rng.random_range(0..n);
            data.push(gc_graph::generate::random_connected_graph(
                &mut rng,
                n,
                extra,
                |r| r.random_range(0..3u16),
            ));
        }
        let query = gc_graph::generate::bfs_extract(&mut rng, &data[7], 0, 3).unwrap();
        let cands = BitSet::from_indices(0..50);
        for algo in Algorithm::ALL {
            let seq = MethodM::new(algo).run(&query, QueryKind::Subgraph, &data, &cands);
            let par = MethodM::parallel(algo, 4).run(&query, QueryKind::Subgraph, &data, &cands);
            assert_eq!(seq, par, "algo {algo}");
            assert!(seq.answer.get(7), "query came from graph 7");
            // and with the pre-filter disabled on both sides
            let seq_off = MethodM::new(algo).with_prefilter(false).run(
                &query,
                QueryKind::Subgraph,
                &data,
                &cands,
            );
            let par_off = MethodM {
                algorithm: algo,
                parallelism: 4,
                prefilter: false,
                timed: false,
            }
            .run(&query, QueryKind::Subgraph, &data, &cands);
            assert_eq!(seq_off, par_off, "algo {algo} (prefilter off)");
            assert_eq!(seq.answer, seq_off.answer);
        }
    }

    #[test]
    fn budgeted_run_with_unlimited_token_is_exact() {
        let data = dataset();
        let query = g(vec![0, 0], &[(0, 1)]);
        let m = MethodM::new(Algorithm::Vf2);
        let cands = BitSet::from_indices(0..4);
        let plain = m.run(&query, QueryKind::Subgraph, &data, &cands);
        let token = CancelToken::unlimited();
        let budgeted = m.run_budgeted(&query, QueryKind::Subgraph, &data, &cands, &token);
        assert_eq!(plain, budgeted);
        assert!(budgeted.is_exact());
        assert_eq!(budgeted.panics_recovered, 0);
        assert_eq!(token.tests_charged(), 4);
    }

    #[test]
    fn test_cap_stops_scan_with_partial_sound_answer() {
        let data = dataset();
        let query = g(vec![0, 0], &[(0, 1)]);
        let m = MethodM::new(Algorithm::Vf2);
        let cands = BitSet::from_indices(0..4);
        let token = CancelToken::new(None, Some(2));
        let r = m.run_budgeted(&query, QueryKind::Subgraph, &data, &cands, &token);
        assert_eq!(r.interrupted, Some(Interrupt::TestCap));
        assert!(!r.is_exact());
        assert_eq!(r.tests, 2, "only the charged candidates were examined");
        // partial answer is a sound subset of the exact one
        let exact = m.run(&query, QueryKind::Subgraph, &data, &cands);
        for id in r.answer.iter_ones() {
            assert!(
                exact.answer.get(id),
                "partial bit {id} must be a true positive"
            );
        }
    }

    #[test]
    fn cancelled_token_stops_scan_immediately() {
        let data = dataset();
        let query = g(vec![0, 0], &[(0, 1)]);
        let m = MethodM::new(Algorithm::Vf2Plus);
        let cands = BitSet::from_indices(0..4);
        let token = CancelToken::unlimited();
        token.cancel();
        let r = m.run_budgeted(&query, QueryKind::Subgraph, &data, &cands, &token);
        assert_eq!(r.interrupted, Some(Interrupt::Cancelled));
        assert_eq!(r.tests, 0);
        assert!(r.answer.iter_ones().next().is_none());
    }

    #[test]
    fn expired_deadline_degrades_scan() {
        use std::time::{Duration, Instant};
        let data = dataset();
        let query = g(vec![0, 0], &[(0, 1)]);
        let m = MethodM::new(Algorithm::GraphQl);
        let cands = BitSet::from_indices(0..4);
        let token = CancelToken::new(Some(Instant::now() - Duration::from_millis(1)), None);
        let r = m.run_budgeted(&query, QueryKind::Subgraph, &data, &cands, &token);
        assert_eq!(r.interrupted, Some(Interrupt::Deadline));
    }

    /// A graph source that panics the first time a chosen id is fetched —
    /// models a one-shot storage-layer fault under a candidate scan.
    struct OneShotPanicSource {
        data: Vec<LabeledGraph>,
        panic_id: usize,
        fired: std::sync::atomic::AtomicBool,
    }

    impl gc_graph::GraphSource for OneShotPanicSource {
        fn graph(&self, id: usize) -> Option<&LabeledGraph> {
            use std::sync::atomic::Ordering;
            if id == self.panic_id && !self.fired.swap(true, Ordering::SeqCst) {
                panic!("injected storage fault at id {id}");
            }
            self.data.get(id)
        }
        fn id_span(&self) -> usize {
            self.data.len()
        }
    }

    #[test]
    fn sequential_scan_contains_panicking_candidate() {
        let src = OneShotPanicSource {
            data: dataset(),
            panic_id: 1,
            fired: std::sync::atomic::AtomicBool::new(false),
        };
        let query = g(vec![0, 0], &[(0, 1)]);
        let m = MethodM::new(Algorithm::Vf2);
        let cands = BitSet::from_indices(0..4);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the injected panic
        let r = m.run_budgeted(
            &query,
            QueryKind::Subgraph,
            &src,
            &cands,
            CancelToken::unlimited_ref(),
        );
        std::panic::set_hook(prev);
        assert_eq!(r.interrupted, Some(Interrupt::Panic));
        assert_eq!(r.panics_recovered, 1);
        // the faulty candidate is undecided, the rest were still scanned
        assert_eq!(r.tests, 4);
        assert_eq!(r.answer.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn timed_scan_records_stage_nanos_without_changing_answers() {
        let data = dataset();
        let query = g(vec![0, 0], &[(0, 1)]);
        let cands = BitSet::from_indices(0..4);
        let plain = MethodM::new(Algorithm::Vf2).run(&query, QueryKind::Subgraph, &data, &cands);
        let timed = MethodM::new(Algorithm::Vf2).with_timing(true).run(
            &query,
            QueryKind::Subgraph,
            &data,
            &cands,
        );
        assert_eq!(plain.answer, timed.answer);
        assert_eq!(plain.tests, timed.tests);
        assert_eq!(plain.prefilter_skips, timed.prefilter_skips);
        // untimed scans leave the nanos untouched; timed ones fill them in
        assert_eq!(plain.prefilter_nanos, 0);
        assert_eq!(plain.verify_nanos, 0);
        assert!(timed.prefilter_nanos > 0, "4 candidates were pre-filtered");
        assert!(timed.verify_nanos > 0, "3 candidates reached the matcher");
    }

    #[test]
    fn all_algorithms_agree_on_scan() {
        let data = dataset();
        let queries = [
            g(vec![0, 0, 0], &[(0, 1), (1, 2)]),
            g(vec![1, 1], &[(0, 1)]),
            g(vec![2], &[]),
        ];
        let cands = BitSet::from_indices(0..4);
        for q in &queries {
            let results: Vec<_> = Algorithm::ALL
                .iter()
                .map(|&a| {
                    MethodM::new(a)
                        .run(q, QueryKind::Subgraph, &data, &cands)
                        .answer
                })
                .collect();
            assert_eq!(results[0], results[1]);
            assert_eq!(results[1], results[2]);
        }
    }
}
