//! "Method M" — the external SI method GC+ is called to expedite.
//!
//! Per the paper's architecture (§4), Method M consists of an SI
//! implementation (`Mverifier`) applied to a candidate set `CS_M(g)` —
//! the whole live dataset when GC+ is not in front. [`MethodM::run`] scans
//! the candidate set, runs one sub-iso decision per candidate, and returns
//! the answer bitset plus the number of tests executed. That test count is
//! the denominator/numerator of Figure 5's speedups, and is *identical*
//! for every SI algorithm under the same pruned candidate set — the paper's
//! observation that Figure 5 is Method-M-independent falls out of this
//! structure.
//!
//! The scan optionally fans out over threads (`parallelism > 1`) using
//! crossbeam scoped threads. Results are deterministic either way: the
//! answer is a set, and the test count equals the candidate count.

use gc_graph::{BitSet, GraphSource, LabeledGraph};

use crate::Algorithm;

/// Whether a query asks for dataset graphs *containing* it (subgraph
/// query) or *contained in* it (supergraph query) — paper §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Find all `G` with `g ⊆ G`.
    Subgraph,
    /// Find all `G` with `G ⊆ g`.
    Supergraph,
}

impl QueryKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Subgraph => "subgraph",
            QueryKind::Supergraph => "supergraph",
        }
    }
}

/// Result of a Method M scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodAnswer {
    /// Ids of candidate graphs that passed the sub-iso test.
    pub answer: BitSet,
    /// Number of sub-iso tests executed (= candidates examined).
    pub tests: u64,
}

/// Method M: an SI algorithm plus a scan strategy.
#[derive(Debug, Clone, Copy)]
pub struct MethodM {
    /// Which verifier to use.
    pub algorithm: Algorithm,
    /// Worker threads for the scan; `1` = sequential (deterministic wall
    /// clock, still deterministic answers either way).
    pub parallelism: usize,
}

impl MethodM {
    /// Sequential Method M over the given algorithm.
    pub fn new(algorithm: Algorithm) -> Self {
        MethodM {
            algorithm,
            parallelism: 1,
        }
    }

    /// Parallel Method M (`threads` clamped to ≥ 1).
    pub fn parallel(algorithm: Algorithm, threads: usize) -> Self {
        MethodM {
            algorithm,
            parallelism: threads.max(1),
        }
    }

    /// Decides one sub-iso test according to the query kind.
    #[inline]
    pub fn decide(&self, query: &LabeledGraph, kind: QueryKind, dataset_graph: &LabeledGraph) -> bool {
        let m = self.algorithm.matcher();
        match kind {
            QueryKind::Subgraph => m.contains(query, dataset_graph),
            QueryKind::Supergraph => m.contains(dataset_graph, query),
        }
    }

    /// Scans `candidates` (ids into `source`), running one sub-iso test per
    /// present graph. Ids whose graph has been deleted are skipped without
    /// counting a test (they cannot appear in a live candidate set anyway).
    pub fn run<S: GraphSource + Sync + ?Sized>(
        &self,
        query: &LabeledGraph,
        kind: QueryKind,
        source: &S,
        candidates: &BitSet,
    ) -> MethodAnswer {
        if self.parallelism <= 1 {
            return self.run_sequential(query, kind, source, candidates);
        }
        let ids: Vec<usize> = candidates.iter_ones().collect();
        if ids.len() < 2 * self.parallelism {
            return self.run_sequential(query, kind, source, candidates);
        }
        let chunk = ids.len().div_ceil(self.parallelism);
        let mut partials: Vec<(BitSet, u64)> = Vec::new();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = ids
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move |_| {
                        let mut answer = BitSet::new();
                        let mut tests = 0u64;
                        for &id in part {
                            if let Some(g) = source.graph(id) {
                                tests += 1;
                                if self.decide(query, kind, g) {
                                    answer.set(id, true);
                                }
                            }
                        }
                        (answer, tests)
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("scan worker panicked"));
            }
        })
        .expect("crossbeam scope failed");
        let mut answer = BitSet::new();
        let mut tests = 0;
        for (a, t) in partials {
            answer.union_with(&a);
            tests += t;
        }
        MethodAnswer { answer, tests }
    }

    fn run_sequential<S: GraphSource + ?Sized>(
        &self,
        query: &LabeledGraph,
        kind: QueryKind,
        source: &S,
        candidates: &BitSet,
    ) -> MethodAnswer {
        let mut answer = BitSet::new();
        let mut tests = 0u64;
        for id in candidates.iter_ones() {
            if let Some(g) = source.graph(id) {
                tests += 1;
                if self.decide(query, kind, g) {
                    answer.set(id, true);
                }
            }
        }
        MethodAnswer { answer, tests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::LabeledGraph;

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    fn dataset() -> Vec<LabeledGraph> {
        vec![
            g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]), // triangle
            g(vec![0, 0, 0], &[(0, 1), (1, 2)]),         // path3
            g(vec![0, 0], &[(0, 1)]),                    // edge
            g(vec![1, 1], &[(0, 1)]),                    // labeled edge
        ]
    }

    #[test]
    fn subgraph_scan() {
        let data = dataset();
        let query = g(vec![0, 0], &[(0, 1)]); // one 0-0 edge
        let m = MethodM::new(Algorithm::Vf2);
        let cands = BitSet::from_indices(0..4);
        let r = m.run(&query, QueryKind::Subgraph, &data, &cands);
        assert_eq!(r.tests, 4);
        assert_eq!(r.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn supergraph_scan() {
        let data = dataset();
        // query: triangle — contains itself, path3 and the 0-0 edge
        let query = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let m = MethodM::new(Algorithm::GraphQl);
        let cands = BitSet::from_indices(0..4);
        let r = m.run(&query, QueryKind::Supergraph, &data, &cands);
        assert_eq!(r.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn candidate_restriction_limits_tests() {
        let data = dataset();
        let query = g(vec![0, 0], &[(0, 1)]);
        let m = MethodM::new(Algorithm::Vf2Plus);
        let cands = BitSet::from_indices([1usize, 3]);
        let r = m.run(&query, QueryKind::Subgraph, &data, &cands);
        assert_eq!(r.tests, 2);
        assert_eq!(r.answer.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn missing_ids_are_skipped() {
        let data = dataset();
        let query = g(vec![0, 0], &[(0, 1)]);
        let m = MethodM::new(Algorithm::Vf2);
        let cands = BitSet::from_indices([2usize, 9, 17]);
        let r = m.run(&query, QueryKind::Subgraph, &data, &cands);
        assert_eq!(r.tests, 1);
        assert_eq!(r.answer.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut data = Vec::new();
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n = rng.random_range(3..12usize);
            let extra = rng.random_range(0..n);
            data.push(gc_graph::generate::random_connected_graph(
                &mut rng,
                n,
                extra,
                |r| r.random_range(0..3u16),
            ));
        }
        let query = gc_graph::generate::bfs_extract(&mut rng, &data[7], 0, 3).unwrap();
        let cands = BitSet::from_indices(0..50);
        for algo in Algorithm::ALL {
            let seq = MethodM::new(algo).run(&query, QueryKind::Subgraph, &data, &cands);
            let par =
                MethodM::parallel(algo, 4).run(&query, QueryKind::Subgraph, &data, &cands);
            assert_eq!(seq, par, "algo {algo}");
            assert!(seq.answer.get(7), "query came from graph 7");
        }
    }

    #[test]
    fn all_algorithms_agree_on_scan() {
        let data = dataset();
        let queries = [
            g(vec![0, 0, 0], &[(0, 1), (1, 2)]),
            g(vec![1, 1], &[(0, 1)]),
            g(vec![2], &[]),
        ];
        let cands = BitSet::from_indices(0..4);
        for q in &queries {
            let results: Vec<_> = Algorithm::ALL
                .iter()
                .map(|&a| MethodM::new(a).run(q, QueryKind::Subgraph, &data, &cands).answer)
                .collect();
            assert_eq!(results[0], results[1]);
            assert_eq!(results[1], results[2]);
        }
    }
}
