//! Cheap necessary-condition filters applied before any sub-iso search.
//!
//! These are the standard quick rejects shared by every SI algorithm:
//! vertex/edge counts, label-multiset domination, maximum degree, and
//! degree-sequence domination. None of them is sufficient — they only rule
//! out pairs that *cannot* satisfy `pattern ⊆ target`. GC+ also uses them
//! internally when probing the (≤ cache+window sized) set of cached queries
//! for subgraph/supergraph hits.
//!
//! Two tiers:
//!
//! * [`signature_may_contain`] — the **pre-filter stage** of Method M's
//!   candidate scan: compares the two graphs' cached
//!   [`GraphSignature`]s (vertex count, edge count, max degree,
//!   label-frequency histogram). No per-call allocation, no graph
//!   traversal — every field is precomputed on the graph, so a scan can
//!   reject a candidate in tens of nanoseconds before any matcher runs.
//!   Rejections are tallied as `prefilter_skips` in
//!   [`MethodAnswer`](crate::MethodAnswer) and surface in
//!   `gc-core`'s `QueryMetrics`;
//! * [`may_contain`] — the fuller check (adds degree-sequence domination,
//!   which costs a sort) used where pairs are probed once rather than
//!   scanned in bulk.

use gc_graph::{GraphSignature, LabeledGraph};

/// O(1)-per-field necessary condition for `pattern ⊆ target`, evaluated
/// purely on cached signatures: target must dominate pattern in vertex
/// count, edge count, maximum degree and per-label occurrence counts.
///
/// `false` means containment is impossible; `true` means "cannot rule
/// out" — the matcher still decides.
#[inline]
pub fn signature_may_contain(pattern: &GraphSignature, target: &GraphSignature) -> bool {
    target.dominates(pattern)
}

/// Returns `false` if `pattern ⊆ target` is impossible for trivial
/// counting reasons; `true` means "cannot rule out".
pub fn may_contain(pattern: &LabeledGraph, target: &LabeledGraph) -> bool {
    if !signature_may_contain(pattern.signature(), target.signature()) {
        return false;
    }
    degree_sequence_dominated(pattern, target)
}

/// Sorted-descending degree-sequence domination: the i-th largest pattern
/// degree must be ≤ the i-th largest target degree. Necessary for
/// non-induced containment because an embedding maps each pattern vertex
/// onto a target vertex of at least its degree, injectively.
pub fn degree_sequence_dominated(pattern: &LabeledGraph, target: &LabeledGraph) -> bool {
    let dp = pattern.degree_sequence();
    let dt = target.degree_sequence();
    if dp.len() > dt.len() {
        return false;
    }
    dp.iter().zip(dt.iter()).all(|(p, t)| p <= t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::LabeledGraph;

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    #[test]
    fn size_rejects() {
        let big = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
        let small = g(vec![0, 0], &[(0, 1)]);
        assert!(!may_contain(&big, &small));
        assert!(may_contain(&small, &big));
        assert!(!signature_may_contain(big.signature(), small.signature()));
    }

    #[test]
    fn label_rejects() {
        let p = g(vec![5], &[]);
        let t = g(vec![1, 2, 3], &[(0, 1)]);
        assert!(!may_contain(&p, &t));
        assert!(!signature_may_contain(p.signature(), t.signature()));
    }

    #[test]
    fn degree_sequence_rejects_star_in_path() {
        // star K1,3 cannot embed in P4 (max degree 2) despite equal sizes
        let star = g(vec![0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let path = g(vec![0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        assert!(!may_contain(&star, &path));
        assert!(!may_contain(&path, &star)); // P4 has 3 edges = star, but degrees [2,2,1,1] vs [3,1,1,1]
                                             // the signature tier already catches the star-in-path direction via
                                             // the cached max degree — no degree-sequence sort needed
        assert!(!signature_may_contain(star.signature(), path.signature()));
    }

    #[test]
    fn signature_tier_is_weaker_than_degree_sequence_tier() {
        // degrees [2,2,1,1] vs [3,1,1,1]: equal max-degree ordering cannot
        // see this, the full degree-sequence check can
        let path = g(vec![0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let star = g(vec![0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        assert!(signature_may_contain(path.signature(), star.signature()));
        assert!(!may_contain(&path, &star));
    }

    #[test]
    fn filter_accepts_plausible_pair() {
        let tri = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p2 = g(vec![0, 0], &[(0, 1)]);
        assert!(may_contain(&p2, &tri));
        assert!(may_contain(&tri, &tri));
        assert!(signature_may_contain(p2.signature(), tri.signature()));
        assert!(signature_may_contain(tri.signature(), tri.signature()));
    }

    #[test]
    fn empty_pattern_always_may() {
        let empty = LabeledGraph::new();
        let t = g(vec![0], &[]);
        assert!(may_contain(&empty, &t));
        assert!(may_contain(&empty, &empty));
        assert!(signature_may_contain(empty.signature(), t.signature()));
    }
}
