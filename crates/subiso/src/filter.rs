//! Cheap necessary-condition filters applied before any sub-iso search.
//!
//! These are the standard quick rejects shared by every SI algorithm:
//! vertex/edge counts, label-multiset domination, and degree-sequence
//! domination. None of them is sufficient — they only rule out pairs that
//! *cannot* satisfy `pattern ⊆ target`. GC+ also uses them internally when
//! probing the (≤ cache+window sized) set of cached queries for
//! subgraph/supergraph hits.

use gc_graph::LabeledGraph;

/// Returns `false` if `pattern ⊆ target` is impossible for trivial
/// counting reasons; `true` means "cannot rule out".
pub fn may_contain(pattern: &LabeledGraph, target: &LabeledGraph) -> bool {
    if pattern.vertex_count() > target.vertex_count()
        || pattern.edge_count() > target.edge_count()
    {
        return false;
    }
    if !pattern.labels_dominated_by(target) {
        return false;
    }
    degree_sequence_dominated(pattern, target)
}

/// Sorted-descending degree-sequence domination: the i-th largest pattern
/// degree must be ≤ the i-th largest target degree. Necessary for
/// non-induced containment because an embedding maps each pattern vertex
/// onto a target vertex of at least its degree, injectively.
pub fn degree_sequence_dominated(pattern: &LabeledGraph, target: &LabeledGraph) -> bool {
    let dp = pattern.degree_sequence();
    let dt = target.degree_sequence();
    if dp.len() > dt.len() {
        return false;
    }
    dp.iter().zip(dt.iter()).all(|(p, t)| p <= t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::LabeledGraph;

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    #[test]
    fn size_rejects() {
        let big = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
        let small = g(vec![0, 0], &[(0, 1)]);
        assert!(!may_contain(&big, &small));
        assert!(may_contain(&small, &big));
    }

    #[test]
    fn label_rejects() {
        let p = g(vec![5], &[]);
        let t = g(vec![1, 2, 3], &[(0, 1)]);
        assert!(!may_contain(&p, &t));
    }

    #[test]
    fn degree_sequence_rejects_star_in_path() {
        // star K1,3 cannot embed in P4 (max degree 2) despite equal sizes
        let star = g(vec![0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let path = g(vec![0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        assert!(!may_contain(&star, &path));
        assert!(!may_contain(&path, &star)); // P4 has 3 edges = star, but degrees [2,2,1,1] vs [3,1,1,1]
    }

    #[test]
    fn filter_accepts_plausible_pair() {
        let tri = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p2 = g(vec![0, 0], &[(0, 1)]);
        assert!(may_contain(&p2, &tri));
        assert!(may_contain(&tri, &tri));
    }

    #[test]
    fn empty_pattern_always_may() {
        let empty = LabeledGraph::new();
        let t = g(vec![0], &[]);
        assert!(may_contain(&empty, &t));
        assert!(may_contain(&empty, &empty));
    }
}
