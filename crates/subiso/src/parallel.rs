//! Scoped-thread data parallelism for candidate scans.
//!
//! The natural dependency here would be `rayon`, but this workspace builds
//! in a registry-less environment, so the one primitive the scans need is
//! implemented directly on `std::thread::scope` (stable since 1.63):
//! [`parallel_map_indexed`] — evaluate `f(0..n)` across worker threads and
//! return the results **in index order**, which is what keeps Method M's
//! answer bitsets and the processor's hit lists deterministic regardless of
//! thread scheduling.
//!
//! Work distribution is dynamic: workers claim small index batches from a
//! shared atomic cursor, so one expensive candidate (a near-miss sub-iso
//! test can be orders of magnitude slower than a hit) does not stall a
//! statically assigned chunk behind it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Indices claimed per atomic fetch; amortizes cursor contention without
/// hurting balance (scans are thousands of items, batches stay small).
const BATCH: usize = 16;

/// Evaluates `f(i)` for `i in 0..n` on up to `threads` scoped workers and
/// returns the results ordered by index. Falls back to a plain sequential
/// map when `threads <= 1` or `n` is small enough that spawning would cost
/// more than it saves.
///
/// **Panic isolation:** a panic inside `f(i)` is contained per item — it
/// cannot take down the worker's whole batch or the scope. Panicked
/// indices are retried once, sequentially, on the calling thread; a second
/// panic for the same index propagates to the caller (a deterministic
/// failure is a real bug, not a transient fault). This keeps the "full
/// `Vec`, index order" contract intact under one-shot faults.
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n.div_ceil(BATCH));
    if workers <= 1 || n == 0 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let fref = &f;
    let cref = &cursor;
    let mut per_worker: Vec<Vec<(usize, Option<T>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let start = cref.fetch_add(BATCH, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + BATCH).min(n) {
                            // contain per-item panics; `None` marks the
                            // index for the sequential retry below
                            let item = catch_unwind(AssertUnwindSafe(|| fref(i))).ok();
                            out.push((i, item));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // worker bodies catch all unwinds per item, so a join failure
            // is unreachable in practice
            .map(|h| h.join().expect("scan worker panicked outside item"))
            .collect()
    });
    let mut merged: Vec<(usize, Option<T>)> = Vec::with_capacity(n);
    for chunk in &mut per_worker {
        merged.append(chunk);
    }
    merged.sort_unstable_by_key(|&(i, _)| i);
    merged
        .into_iter()
        .map(|(i, item)| match item {
            Some(t) => t,
            // retry once on the caller thread; a repeat panic propagates
            None => f(i),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1usize, 2, 4, 8] {
            for n in [0usize, 1, 5, 16, 17, 100, 1000] {
                let got = parallel_map_indexed(n, threads, |i| i * 3);
                let expected: Vec<usize> = (0..n).map(|i| i * 3).collect();
                assert_eq!(got, expected, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn one_shot_item_panic_is_retried() {
        use std::sync::atomic::AtomicBool;
        // item 23 panics exactly once; the retry pass must heal it and the
        // result vector must come back complete and ordered
        let fired = AtomicBool::new(false);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the injected panic
        let got = parallel_map_indexed(64, 4, |i| {
            if i == 23 && !fired.swap(true, Ordering::SeqCst) {
                panic!("injected");
            }
            i * 2
        });
        std::panic::set_hook(prev);
        let expected: Vec<usize> = (0..64).map(|i| i * 2).collect();
        assert_eq!(got, expected);
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn uneven_work_is_balanced() {
        // items of wildly different cost still produce ordered results
        let got = parallel_map_indexed(64, 4, |i| {
            if i % 7 == 0 {
                // an artificially expensive item
                (0..20_000u64).sum::<u64>().wrapping_add(i as u64)
            } else {
                i as u64
            }
        });
        for (i, v) in got.iter().enumerate() {
            let expected = if i % 7 == 0 {
                (0..20_000u64).sum::<u64>().wrapping_add(i as u64)
            } else {
                i as u64
            };
            assert_eq!(*v, expected);
        }
    }
}
