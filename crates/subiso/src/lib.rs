//! Non-induced subgraph isomorphism for GraphCache+.
//!
//! The paper evaluates GC+ over three well-established SI methods:
//!
//! * **VF2** — the classic Cordella et al. algorithm ([`vf2`]), used
//!   extensively inside filter-then-verify systems;
//! * **VF2+** — the modified VF2 shipped with CT-Index ([`vf2plus`]):
//!   rare-label-first static variable ordering plus degree/neighborhood
//!   candidate pruning;
//! * **GraphQL (GQL)** — He & Singh's algorithm ([`graphql`]): per-vertex
//!   candidate sets from neighborhood profiles, iterative global refinement
//!   by bipartite semi-perfect matching, then candidate-driven search.
//!
//! All three solve the *decision* problem for **non-induced** subgraph
//! isomorphism on undirected vertex-labeled graphs (paper §3): pattern
//! `P ⊆ T` iff there is an injection `φ : V(P) → V(T)` with
//! `(u,v) ∈ E(P) ⇒ (φ(u),φ(v)) ∈ E(T)` and `l(u) = l(φ(u))`.
//!
//! [`MethodM`] wraps any of them into the paper's "Method M": scanning a
//! candidate set of dataset graphs, counting one sub-iso test per candidate
//! — the quantity behind Figure 5. Two hot-path stages sit inside the scan
//! (see [`method`] for the full design):
//!
//! * a **signature pre-filter** ([`filter::signature_may_contain`]) that
//!   decides candidates by O(1) domination checks over the CSR graphs'
//!   cached [`gc_graph::GraphSignature`]s before any matcher runs,
//!   reported as `prefilter_skips`;
//! * a **parallel candidate scan** ([`parallel`]) over scoped worker
//!   threads with dynamic batch claiming, merging per-candidate verdicts
//!   in id order so answers stay deterministic.
//!
//! A deliberately naive [`bruteforce`] matcher exists purely as a testing
//! oracle; the three production algorithms are cross-validated against it
//! by property tests.

pub mod bipartite;
pub mod bruteforce;
pub mod cancel;
pub mod filter;
pub mod graphql;
pub mod method;
pub mod parallel;
pub mod vf2;
pub mod vf2plus;

pub use cancel::{CancelToken, Interrupt};
pub use method::{MethodAnswer, MethodM, QueryKind};

use gc_graph::{LabeledGraph, VertexId};

/// Statistics of a single sub-iso test — search-tree nodes expanded.
/// Deterministic, used by benches to compare algorithm pruning power.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Number of (pattern-vertex, candidate) pairs tried.
    pub nodes: u64,
}

/// A decision procedure for non-induced subgraph isomorphism.
pub trait SubgraphMatcher: Send + Sync {
    /// Algorithm name as reported in experiment tables.
    fn name(&self) -> &'static str;

    /// Does `pattern ⊆ target` (non-induced, label-preserving)? Also
    /// reports search statistics.
    fn contains_with_stats(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> (bool, MatchStats);

    /// Does `pattern ⊆ target`?
    fn contains(&self, pattern: &LabeledGraph, target: &LabeledGraph) -> bool {
        self.contains_with_stats(pattern, target).0
    }

    /// Budgeted decision: like [`contains`](Self::contains), but consults
    /// `token` at search checkpoints and unwinds with an [`Interrupt`] when
    /// the budget is exhausted. The default implementation checks the token
    /// once up front and then runs to completion — engines with a search
    /// loop override it with true mid-search cancellation.
    fn contains_budgeted(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        token: &CancelToken,
    ) -> Result<bool, Interrupt> {
        token.check()?;
        Ok(self.contains(pattern, target))
    }

    /// Finds one embedding `φ` (pattern vertex id → target vertex id), if
    /// any exists.
    fn find_embedding(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> Option<Vec<VertexId>>;
}

/// The three SI algorithms of the paper's evaluation, as a plain enum so
/// configurations stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Vanilla VF2 (Cordella et al. 2004).
    Vf2,
    /// VF2+ — CT-Index's modified VF2 (Klein et al. 2011).
    Vf2Plus,
    /// GraphQL (He & Singh 2008), per Lee et al.'s in-depth comparison.
    GraphQl,
}

impl Algorithm {
    /// All algorithms, in the order the paper's figures list them.
    pub const ALL: [Algorithm; 3] = [Algorithm::Vf2, Algorithm::Vf2Plus, Algorithm::GraphQl];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Vf2 => "VF2",
            Algorithm::Vf2Plus => "VF2+",
            Algorithm::GraphQl => "GQL",
        }
    }

    /// Returns the matcher implementation.
    pub fn matcher(self) -> &'static dyn SubgraphMatcher {
        match self {
            Algorithm::Vf2 => &vf2::Vf2,
            Algorithm::Vf2Plus => &vf2plus::Vf2Plus,
            Algorithm::GraphQl => &graphql::GraphQl::DEFAULT,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "vf2" => Ok(Algorithm::Vf2),
            "vf2+" | "vf2plus" => Ok(Algorithm::Vf2Plus),
            "gql" | "graphql" => Ok(Algorithm::GraphQl),
            other => Err(format!(
                "unknown SI algorithm '{other}' (expected VF2, VF2+ or GQL)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_and_parse() {
        assert_eq!(Algorithm::Vf2.name(), "VF2");
        assert_eq!(Algorithm::Vf2Plus.to_string(), "VF2+");
        assert_eq!("gql".parse::<Algorithm>().unwrap(), Algorithm::GraphQl);
        assert_eq!("VF2+".parse::<Algorithm>().unwrap(), Algorithm::Vf2Plus);
        assert!("nope".parse::<Algorithm>().is_err());
    }

    #[test]
    fn matchers_are_addressable() {
        for a in Algorithm::ALL {
            assert_eq!(a.matcher().name(), a.name());
        }
    }
}
