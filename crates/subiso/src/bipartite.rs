//! Maximum bipartite matching (Kuhn's augmenting-path algorithm).
//!
//! GraphQL's global refinement keeps target vertex `v` as a candidate for
//! pattern vertex `u` only if the bipartite graph between `N(u)` and `N(v)`
//! (edges = candidate-compatibility) has a matching saturating `N(u)` — a
//! *semi-perfect matching*. Neighborhoods are small (molecule-like graphs
//! have bounded valence; query graphs have ≤ ~21 vertices), so the O(V·E)
//! Kuhn algorithm is the right tool — no Hopcroft–Karp needed.

/// Computes the size of a maximum matching in a bipartite graph given as
/// `left_adj[l] = list of right-vertex indices compatible with l`.
/// `right_count` is the number of right vertices.
pub fn maximum_matching(left_adj: &[Vec<usize>], right_count: usize) -> usize {
    let mut match_right: Vec<Option<usize>> = vec![None; right_count];
    let mut size = 0;
    let mut visited = vec![false; right_count];
    for l in 0..left_adj.len() {
        visited.iter_mut().for_each(|v| *v = false);
        if augment(l, left_adj, &mut match_right, &mut visited) {
            size += 1;
        }
    }
    size
}

/// `true` iff a matching exists that saturates every left vertex.
pub fn has_saturating_matching(left_adj: &[Vec<usize>], right_count: usize) -> bool {
    if left_adj.len() > right_count {
        return false;
    }
    maximum_matching(left_adj, right_count) == left_adj.len()
}

fn augment(
    l: usize,
    left_adj: &[Vec<usize>],
    match_right: &mut Vec<Option<usize>>,
    visited: &mut [bool],
) -> bool {
    for &r in &left_adj[l] {
        if !visited[r] {
            visited[r] = true;
            let reassigned = match match_right[r] {
                None => true,
                Some(prev) => augment(prev, left_adj, match_right, visited),
            };
            if reassigned {
                match_right[r] = Some(l);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_left_is_saturated() {
        assert!(has_saturating_matching(&[], 0));
        assert!(has_saturating_matching(&[], 5));
        assert_eq!(maximum_matching(&[], 3), 0);
    }

    #[test]
    fn perfect_matching_found() {
        // 3x3 with a unique perfect matching 0-1, 1-0, 2-2
        let adj = vec![vec![1], vec![0, 1], vec![1, 2]];
        assert_eq!(maximum_matching(&adj, 3), 3);
        assert!(has_saturating_matching(&adj, 3));
    }

    #[test]
    fn augmenting_path_needed() {
        // greedy assignment of 0→0 must be undone for 1 to match
        let adj = vec![vec![0, 1], vec![0]];
        assert_eq!(maximum_matching(&adj, 2), 2);
    }

    #[test]
    fn unsaturable_cases() {
        // two left vertices compete for one right vertex
        let adj = vec![vec![0], vec![0]];
        assert_eq!(maximum_matching(&adj, 1), 1);
        assert!(!has_saturating_matching(&adj, 1));
        // more left than right can never saturate
        assert!(!has_saturating_matching(&[vec![0], vec![0], vec![0]], 2));
        // isolated left vertex
        assert!(!has_saturating_matching(&[vec![]], 4));
    }

    #[test]
    fn hall_violation_detected() {
        // left {0,1,2} all map into right {0,1}: |N(S)| < |S|
        let adj = vec![vec![0, 1], vec![0, 1], vec![0, 1], vec![2]];
        assert_eq!(maximum_matching(&adj, 3), 3);
        assert!(!has_saturating_matching(&adj, 3));
    }
}
