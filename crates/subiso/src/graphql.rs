//! GraphQL (GQL) — He & Singh, SIGMOD 2008 — as characterized in Lee et
//! al.'s in-depth comparison (the paper's source for "well-established,
//! good performer").
//!
//! Three phases:
//!
//! 1. **Local pruning by neighborhood profiles.** Every pattern vertex `u`
//!    receives a candidate set
//!    `C(u) = { v : l(u)=l(v), deg(v) ≥ deg(u), profile(u) ⊑ profile(v) }`,
//!    where a vertex's *profile* is the sorted multiset of labels in its
//!    radius-1 closed neighborhood and `⊑` is multiset containment.
//! 2. **Global refinement by pseudo-isomorphism.** Iteratively (up to
//!    [`GraphQl::refine_levels`] rounds, or until fixpoint): `v` stays in
//!    `C(u)` only if the bipartite graph between `N(u)` and `N(v)` with
//!    edges `{(w,z) : z ∈ C(w)}` admits a matching saturating `N(u)`
//!    (see [`crate::bipartite`]).
//! 3. **Search.** Pattern vertices are ordered greedily by ascending
//!    candidate-set size (connected-first); backtracking enumerates
//!    candidates, restricted to neighbors of already-mapped images, with
//!    the usual consistency check.
//!
//! All phases preserve *non-induced* semantics: only pattern edges must be
//! realized in the target.

use gc_graph::{Label, LabeledGraph, VertexId};

use crate::bipartite::has_saturating_matching;
use crate::cancel::{CancelToken, Interrupt, CHECK_INTERVAL};
use crate::{MatchStats, SubgraphMatcher};

const UNMAPPED: u32 = u32::MAX;

/// GQL matcher. `refine_levels` bounds the global-refinement rounds
/// (GraphQL's "pseudo-isomorphism level"); 2 is the conventional default.
#[derive(Debug, Clone, Copy)]
pub struct GraphQl {
    /// Number of global refinement iterations (0 disables phase 2).
    pub refine_levels: usize,
}

impl GraphQl {
    /// Default configuration (2 refinement rounds).
    pub const DEFAULT: GraphQl = GraphQl { refine_levels: 2 };
}

impl Default for GraphQl {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Sorted label multiset of `v`'s closed neighborhood.
fn profile(g: &LabeledGraph, v: VertexId) -> Vec<Label> {
    let mut p: Vec<Label> = g.neighbors(v).iter().map(|&w| g.label(w)).collect();
    p.push(g.label(v));
    p.sort_unstable();
    p
}

/// Sorted-multiset containment: every element of `small` appears in `big`
/// with at least the same multiplicity.
fn multiset_contained(small: &[Label], big: &[Label]) -> bool {
    let mut bi = 0;
    for &s in small {
        loop {
            if bi >= big.len() {
                return false;
            }
            if big[bi] < s {
                bi += 1;
            } else if big[bi] == s {
                bi += 1;
                break;
            } else {
                return false;
            }
        }
    }
    true
}

struct GqlSearch<'g> {
    pattern: &'g LabeledGraph,
    target: &'g LabeledGraph,
    candidates: Vec<Vec<VertexId>>,
    order: Vec<VertexId>,
    map: Vec<u32>,
    used: Vec<bool>,
    nodes: u64,
    /// Optional budget; consulted every [`CHECK_INTERVAL`] expanded nodes.
    token: Option<&'g CancelToken>,
    /// Set when the token fired; makes the recursion unwind promptly.
    interrupted: Option<Interrupt>,
}

impl GqlSearch<'_> {
    fn search(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            return true;
        }
        let u = self.order[depth];
        // iterate over a snapshot of C(u); candidate sets are small after
        // refinement, and cloning sidesteps simultaneous-borrow issues
        let cands = self.candidates[u as usize].clone();
        for v in cands {
            if self.interrupted.is_some() {
                return false;
            }
            self.nodes += 1;
            if self.nodes & (CHECK_INTERVAL - 1) == 0 {
                if let Some(token) = self.token {
                    if let Err(interrupt) = token.check() {
                        self.interrupted = Some(interrupt);
                        return false;
                    }
                }
            }
            if self.feasible(u, v) {
                self.map[u as usize] = v;
                self.used[v as usize] = true;
                if self.search(depth + 1) {
                    return true;
                }
                self.map[u as usize] = UNMAPPED;
                self.used[v as usize] = false;
            }
        }
        false
    }

    fn feasible(&self, u: VertexId, v: VertexId) -> bool {
        if self.used[v as usize] {
            return false;
        }
        for &w in self.pattern.neighbors(u) {
            let img = self.map[w as usize];
            if img != UNMAPPED && !self.target.has_edge(v, img) {
                return false;
            }
        }
        true
    }
}

impl GraphQl {
    /// Builds refined candidate sets; `None` means "some pattern vertex has
    /// no candidate" (early rejection).
    fn build_candidates(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> Option<Vec<Vec<VertexId>>> {
        let np = pattern.vertex_count();
        // Phase 1: profile-based local pruning.
        let target_profiles: Vec<Vec<Label>> =
            target.vertices().map(|v| profile(target, v)).collect();
        let mut candidates: Vec<Vec<VertexId>> = Vec::with_capacity(np);
        for u in pattern.vertices() {
            let pu = profile(pattern, u);
            let du = pattern.degree(u);
            let lu = pattern.label(u);
            let c: Vec<VertexId> = target
                .vertices()
                .filter(|&v| {
                    target.label(v) == lu
                        && target.degree(v) >= du
                        && multiset_contained(&pu, &target_profiles[v as usize])
                })
                .collect();
            if c.is_empty() {
                return None;
            }
            candidates.push(c);
        }
        // Phase 2: global refinement by semi-perfect matching.
        let mut in_c: Vec<Vec<bool>> = candidates
            .iter()
            .map(|c| {
                let mut row = vec![false; target.vertex_count()];
                for &v in c {
                    row[v as usize] = true;
                }
                row
            })
            .collect();
        for _ in 0..self.refine_levels {
            let mut changed = false;
            for u in 0..np as VertexId {
                let nu = pattern.neighbors(u);
                if nu.is_empty() {
                    continue;
                }
                let mut retained = Vec::with_capacity(candidates[u as usize].len());
                for &v in &candidates[u as usize] {
                    // bipartite graph: left = N(u), right = N(v);
                    // (w, z) compatible iff z ∈ C(w)
                    let nv = target.neighbors(v);
                    let left_adj: Vec<Vec<usize>> = nu
                        .iter()
                        .map(|&w| {
                            nv.iter()
                                .enumerate()
                                .filter(|(_, &z)| in_c[w as usize][z as usize])
                                .map(|(zi, _)| zi)
                                .collect()
                        })
                        .collect();
                    if has_saturating_matching(&left_adj, nv.len()) {
                        retained.push(v);
                    } else {
                        in_c[u as usize][v as usize] = false;
                        changed = true;
                    }
                }
                if retained.is_empty() {
                    return None;
                }
                candidates[u as usize] = retained;
            }
            if !changed {
                break;
            }
        }
        Some(candidates)
    }

    /// Greedy search order: cheapest candidate set first, preferring
    /// vertices connected to the already-ordered prefix.
    fn search_order(pattern: &LabeledGraph, candidates: &[Vec<VertexId>]) -> Vec<VertexId> {
        let n = pattern.vertex_count();
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        let mut connected = vec![false; n];
        for step in 0..n {
            let pick = (0..n as VertexId)
                .filter(|&i| !placed[i as usize])
                .min_by_key(|&i| {
                    let conn_rank = if step == 0 || connected[i as usize] {
                        0
                    } else {
                        1
                    };
                    (conn_rank, candidates[i as usize].len(), i)
                })
                .expect("some vertex remains");
            placed[pick as usize] = true;
            order.push(pick);
            for &w in pattern.neighbors(pick) {
                connected[w as usize] = true;
            }
        }
        order
    }

    fn run(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> (Option<Vec<VertexId>>, MatchStats) {
        match self.run_budgeted(pattern, target, None) {
            Ok(r) => r,
            // without a token the search cannot be interrupted
            Err(_) => unreachable!("interrupt without an attached token"),
        }
    }

    /// Runs under an optional budget. `Err` means the search was cut short
    /// and the (non-)existence of an embedding is *unknown*. The candidate
    /// construction phases are polynomial and run to completion; only the
    /// exponential search phase carries checkpoints.
    fn run_budgeted(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        token: Option<&CancelToken>,
    ) -> Result<(Option<Vec<VertexId>>, MatchStats), Interrupt> {
        if let Some(t) = token {
            t.check()?;
        }
        if pattern.vertex_count() > target.vertex_count()
            || pattern.edge_count() > target.edge_count()
        {
            return Ok((None, MatchStats::default()));
        }
        if pattern.vertex_count() == 0 {
            return Ok((Some(Vec::new()), MatchStats::default()));
        }
        let candidates = match self.build_candidates(pattern, target) {
            Some(c) => c,
            None => return Ok((None, MatchStats::default())),
        };
        let order = Self::search_order(pattern, &candidates);
        let mut s = GqlSearch {
            pattern,
            target,
            candidates,
            order,
            map: vec![UNMAPPED; pattern.vertex_count()],
            used: vec![false; target.vertex_count()],
            nodes: 0,
            token,
            interrupted: None,
        };
        let found = s.search(0);
        if let Some(interrupt) = s.interrupted {
            return Err(interrupt);
        }
        let stats = MatchStats { nodes: s.nodes };
        if found {
            Ok((Some(s.map), stats))
        } else {
            Ok((None, stats))
        }
    }
}

impl SubgraphMatcher for GraphQl {
    fn name(&self) -> &'static str {
        "GQL"
    }

    fn contains_with_stats(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> (bool, MatchStats) {
        let (embedding, stats) = self.run(pattern, target);
        (embedding.is_some(), stats)
    }

    fn find_embedding(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
    ) -> Option<Vec<VertexId>> {
        self.run(pattern, target).0
    }

    fn contains_budgeted(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        token: &CancelToken,
    ) -> Result<bool, Interrupt> {
        self.run_budgeted(pattern, target, Some(token))
            .map(|(embedding, _)| embedding.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForce;
    use crate::vf2::verify_embedding;
    use gc_graph::generate::random_connected_graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    #[test]
    fn multiset_containment_cases() {
        assert!(multiset_contained(&[], &[]));
        assert!(multiset_contained(&[1], &[1, 1]));
        assert!(multiset_contained(&[1, 1], &[1, 1, 2]));
        assert!(!multiset_contained(&[1, 1], &[1, 2]));
        assert!(!multiset_contained(&[3], &[1, 2]));
        assert!(!multiset_contained(&[0], &[1]));
    }

    #[test]
    fn profiles_sorted_closed_neighborhood() {
        let t = g(vec![5, 1, 9], &[(0, 1), (1, 2)]);
        assert_eq!(profile(&t, 1), vec![1, 5, 9]);
        assert_eq!(profile(&t, 0), vec![1, 5]);
    }

    #[test]
    fn non_induced_semantics() {
        let tri = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p3 = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
        assert!(GraphQl::DEFAULT.contains(&p3, &tri));
        assert!(!GraphQl::DEFAULT.contains(&tri, &p3));
    }

    #[test]
    fn refinement_rejects_unsatisfiable_neighborhood() {
        // u needs two distinct label-1 neighbors; target vertex has one
        let p = g(vec![0, 1, 1], &[(0, 1), (0, 2)]);
        let t = g(vec![0, 1], &[(0, 1)]);
        assert!(!GraphQl::DEFAULT.contains(&p, &t));
    }

    #[test]
    fn zero_refinement_still_correct() {
        let gql0 = GraphQl { refine_levels: 0 };
        let tri = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let c4 = g(vec![0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(!gql0.contains(&c4, &tri));
        assert!(gql0.contains(&tri, &tri));
    }

    #[test]
    fn embedding_valid() {
        let p = g(vec![0, 1, 0], &[(0, 1), (1, 2)]);
        let mut rng = StdRng::seed_from_u64(17);
        let t = random_connected_graph(&mut rng, 12, 6, |r| r.random_range(0..2u16));
        if let Some(e) = GraphQl::DEFAULT.find_embedding(&p, &t) {
            assert!(verify_embedding(&p, &t, &e));
        }
    }

    #[test]
    fn randomized_agreement_with_bruteforce() {
        let mut rng = StdRng::seed_from_u64(4242);
        let mut positives = 0;
        for i in 0..150 {
            let tn = rng.random_range(3..10usize);
            let extra = rng.random_range(0..tn.min(4));
            let target = random_connected_graph(&mut rng, tn, extra, |r| r.random_range(0..3u16));
            let pn = rng.random_range(1..6usize);
            let pextra = if pn >= 4 { rng.random_range(0..2) } else { 0 };
            let pattern = random_connected_graph(&mut rng, pn, pextra, |r| r.random_range(0..3u16));
            let expected = BruteForce.contains(&pattern, &target);
            let got = GraphQl::DEFAULT.contains(&pattern, &target);
            assert_eq!(expected, got, "case {i}:\nP={pattern:?}\nT={target:?}");
            if expected {
                positives += 1;
            }
        }
        assert!(positives > 15, "positives: {positives}");
    }
}
