//! Cached query entries.
//!
//! A cached query snapshots "its relation against the dataset at execution
//! time" (§5.2.2): the query graph, its finalized answer set, and the
//! dataset-graph validity indicator `CGvalid` that Algorithm 2 maintains.
//! Both `Answer` and `CGvalid` are bitsets indexed by dataset-graph id,
//! exactly as in the paper.
//!
//! Entries are tagged with the [`QueryKind`] that produced them because
//! the *semantics* of the answer set differ:
//!
//! * subgraph-query entry: `Answer = {G : q ⊆ G}`;
//! * supergraph-query entry: `Answer = {G : G ⊆ q}`.
//!
//! Validity refreshing and candidate pruning must respect that polarity
//! (the paper presents the subgraph side and omits the supergraph dual
//! "for space reason"; both are implemented here — see [`crate::validator`]).

use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::QueryKind;

/// Per-entry replacement statistics maintained by the Statistics Manager.
#[derive(Debug, Clone, Default)]
pub struct EntryStats {
    /// `R` — total sub-iso tests this entry alleviated (PIN's score).
    pub tests_saved: u64,
    /// `C` — accumulated *estimated* query-time saved, via the cost
    /// heuristic of the paper's ref \[25\] (PINC's score).
    pub cost_saved: f64,
    /// Number of queries this entry contributed to (LFU's score).
    pub hit_count: u64,
    /// Logical timestamp of the last contribution (LRU's score).
    pub last_used: u64,
    /// Logical timestamp of insertion into window.
    pub inserted_at: u64,
}

/// A previous query residing in cache or window.
#[derive(Debug, Clone)]
pub struct CachedQuery {
    /// The query graph.
    pub graph: LabeledGraph,
    /// Which query type produced the answer (fixes answer semantics).
    pub kind: QueryKind,
    /// Snapshot answer set at execution time (bit per dataset-graph id).
    pub answer: BitSet,
    /// Up-to-date validity indicator: bit `i` set ⟺ the cached relation
    /// towards dataset graph `i` still holds (Algorithm 2).
    pub cg_valid: BitSet,
    /// `true` while the entry is under suspicion (a panic was contained in
    /// a query that touched it). Quarantined entries contribute no hits
    /// until the consistency auditor re-verifies or rebuilds them.
    pub quarantined: bool,
    /// Replacement statistics.
    pub stats: EntryStats,
}

impl CachedQuery {
    /// Creates an entry for a just-executed query. `id_span` is the
    /// current `max_id + 1` of the dataset: the query was verified against
    /// every graph alive at execution time, so it "holds validity towards
    /// its relation with all graphs in the current dataset" — bits
    /// `0..id_span` are set (deleted ids among them are harmless: they can
    /// never re-enter a candidate set).
    pub fn new(
        graph: LabeledGraph,
        kind: QueryKind,
        answer: BitSet,
        id_span: usize,
        now: u64,
    ) -> Self {
        CachedQuery {
            graph,
            kind,
            answer,
            cg_valid: BitSet::all_set(id_span),
            quarantined: false,
            stats: EntryStats {
                inserted_at: now,
                last_used: now,
                ..EntryStats::default()
            },
        }
    }

    /// Quick necessary test for `query ⊆ self.graph`, evaluated on the
    /// graphs' cached CSR signatures (counts, max degree, label multisets).
    pub fn may_contain_query(&self, query: &LabeledGraph) -> bool {
        gc_subiso::filter::signature_may_contain(query.signature(), self.graph.signature())
    }

    /// Quick necessary test for `self.graph ⊆ query`.
    pub fn may_be_contained_in_query(&self, query: &LabeledGraph) -> bool {
        gc_subiso::filter::signature_may_contain(self.graph.signature(), query.signature())
    }

    /// `true` iff sizes, max degrees and label histograms coincide — the
    /// cheap precondition of the §6.3 exact-match check (isomorphic graphs
    /// always share a full signature).
    pub fn same_signature(&self, query: &LabeledGraph) -> bool {
        self.graph.signature() == query.signature()
    }

    /// `true` iff this entry holds validity on every graph of the live
    /// dataset (`live ⊆ CGvalid`) — the "holds validity on all the
    /// up-to-date dataset graphs" condition of both §6.3 optimal cases.
    pub fn fully_valid_on(&self, live: &BitSet) -> bool {
        live.is_subset_of(&self.cg_valid)
    }

    /// The knowledge this entry can contribute *right now*: its valid
    /// answers (`CGvalid ∩ Answer` — formula (1) per-entry term).
    pub fn valid_answers(&self) -> BitSet {
        self.cg_valid.intersection(&self.answer)
    }

    /// Records a contribution of `tests` alleviated sub-iso tests with
    /// estimated saved cost `cost`, at logical time `now`.
    pub fn credit(&mut self, tests: u64, cost: f64, now: u64) {
        self.stats.tests_saved += tests;
        self.stats.cost_saved += cost;
        self.stats.hit_count += 1;
        self.stats.last_used = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    fn entry(graph: LabeledGraph, answer: &[usize], span: usize) -> CachedQuery {
        CachedQuery::new(
            graph,
            QueryKind::Subgraph,
            BitSet::from_indices(answer.iter().copied()),
            span,
            0,
        )
    }

    #[test]
    fn new_entry_fully_valid() {
        let e = entry(g(vec![0, 0], &[(0, 1)]), &[1, 3], 5);
        assert_eq!(e.cg_valid.count_ones(), 5);
        let live = BitSet::from_indices([0usize, 1, 2, 3, 4]);
        assert!(e.fully_valid_on(&live));
        assert_eq!(
            e.valid_answers().iter_ones().collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn validity_loss_detected() {
        let mut e = entry(g(vec![0], &[]), &[0], 3);
        e.cg_valid.set(1, false);
        let live = BitSet::from_indices([0usize, 1, 2]);
        assert!(!e.fully_valid_on(&live));
        // but if graph 1 is deleted from the live set, the entry is fully
        // valid again for the remaining graphs
        let live2 = BitSet::from_indices([0usize, 2]);
        assert!(e.fully_valid_on(&live2));
    }

    #[test]
    fn quick_filters() {
        let e = entry(g(vec![0, 0, 1], &[(0, 1), (1, 2)]), &[], 2);
        let small = g(vec![0, 1], &[(0, 1)]);
        let big = g(vec![0, 0, 1, 1], &[(0, 1), (1, 2), (2, 3)]);
        assert!(e.may_contain_query(&small));
        assert!(!e.may_contain_query(&big)); // bigger than the entry
        assert!(e.may_be_contained_in_query(&big));
        assert!(!e.may_be_contained_in_query(&small));
        // label mismatch blocks in both directions
        let alien = g(vec![9, 9, 9], &[(0, 1), (1, 2)]);
        assert!(!e.may_contain_query(&alien));
        assert!(!e.may_be_contained_in_query(&alien));
    }

    #[test]
    fn signature_match_is_permutation_invariant() {
        let e = entry(g(vec![0, 1, 2], &[(0, 1), (1, 2)]), &[], 1);
        let same = g(vec![2, 1, 0], &[(2, 1), (1, 0)]);
        let different = g(vec![0, 1, 2], &[(0, 1), (0, 2)]);
        assert!(e.same_signature(&same));
        assert!(e.same_signature(&different)); // same sizes/labels — sig only
        let other_labels = g(vec![0, 1, 3], &[(0, 1), (1, 2)]);
        assert!(!e.same_signature(&other_labels));
    }

    #[test]
    fn credit_accumulates() {
        let mut e = entry(g(vec![0], &[]), &[], 1);
        e.credit(5, 12.5, 10);
        e.credit(3, 2.5, 20);
        assert_eq!(e.stats.tests_saved, 8);
        assert_eq!(e.stats.cost_saved, 15.0);
        assert_eq!(e.stats.hit_count, 2);
        assert_eq!(e.stats.last_used, 20);
    }
}
