//! The Statistics Manager: cost heuristics and the CoV computation that
//! drives the HD (hybrid) replacement policy.
//!
//! §7.1: *"When the HD policy is invoked, it first retrieves the R
//! \[values\] from Statistics Manager and computes its variability by using
//! the (squared) coefficient of variation (CoV). CoV is defined as the
//! ratio of the (square of the) standard deviation over the (square of
//! the) mean of the distribution. When CoV > 1, the associated
//! distribution is deemed of high variability"* — exponential
//! distributions have CoV² = 1; heavy-tailed ones exceed it.

use gc_graph::LabeledGraph;

/// Squared coefficient of variation of a sample: `Var(x) / Mean(x)²`.
///
/// Degenerate inputs (empty sample or zero mean — e.g. a cold cache where
/// no entry saved a test yet) return 0.0, which HD maps to "low
/// variability" → PINC, the information-richer scoring.
pub fn squared_cov(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    var / (mean * mean)
}

/// Estimated cost of one sub-iso test of `query` against `target` — the
/// heuristic (after the paper's ref \[25\]) PINC uses to weigh saved tests.
/// Backtracking cost grows with both graph sizes; the product of total
/// sizes is a monotone, cheap proxy.
pub fn estimated_test_cost(query: &LabeledGraph, target: &LabeledGraph) -> f64 {
    let q = (query.vertex_count() + query.edge_count()) as f64;
    let t = (target.vertex_count() + target.edge_count()) as f64;
    q * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cov_degenerate_cases() {
        assert_eq!(squared_cov(&[]), 0.0);
        assert_eq!(squared_cov(&[0.0, 0.0]), 0.0);
        assert_eq!(squared_cov(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn cov_discriminates_variability() {
        // uniform-ish sample: CoV² < 1
        let low = [9.0, 10.0, 11.0, 10.0];
        assert!(squared_cov(&low) < 1.0);
        // heavy-tailed sample: CoV² > 1
        let high = [1.0, 1.0, 1.0, 1.0, 100.0];
        assert!(squared_cov(&high) > 1.0);
    }

    #[test]
    fn cov_matches_hand_computation() {
        // values 2, 4 → mean 3, var 1, cov² = 1/9
        let v = [2.0, 4.0];
        assert!((squared_cov(&v) - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn cost_monotone_in_sizes() {
        let small = LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap();
        let big = LabeledGraph::from_parts(vec![0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert!(estimated_test_cost(&small, &big) > estimated_test_cost(&small, &small));
        assert!(estimated_test_cost(&big, &big) > estimated_test_cost(&small, &big));
        assert_eq!(estimated_test_cost(&small, &small), 9.0);
    }
}
