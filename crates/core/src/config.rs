//! GC+ configuration.
//!
//! Defaults follow the paper's experimental setup (§7.1): cache capacity
//! 100, window capacity 20, the HD (hybrid) replacement policy, and the
//! CON consistency model. Method M defaults to VF2 (the paper's
//! most-studied base method); the internal matcher used to probe cached
//! queries for hits is VF2+ (cheap on ≤ 21-edge query graphs).

use gc_subiso::{Algorithm, MethodM};

use crate::fault::QueryBudget;

/// Parallelism to use when none is configured explicitly: the machine's
/// available hardware concurrency, `1` when it cannot be determined.
/// Scan/probe results are merged in index order, so answers and test
/// counts are identical at any setting — only wall time changes.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The GC+ cache-consistency models: the paper's two (§5) plus the
/// retrospective extension it sketches as future work (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheModel {
    /// Evict the entire cache whenever the dataset changed (§5.1).
    Evi,
    /// Keep per-dataset-graph validity bits refreshed by Algorithms 1 & 2
    /// (§5.2), retaining all provably unaffected knowledge.
    Con,
    /// CON with *retrospective* validation: per-graph net edge deltas
    /// instead of operation-category counters, so changes that cancel out
    /// preserve validity (the paper's §8 future-work item).
    ConRetro,
}

impl CacheModel {
    /// Paper display name ("CON-R" for the retrospective extension).
    pub fn name(self) -> &'static str {
        match self {
            CacheModel::Evi => "EVI",
            CacheModel::Con => "CON",
            CacheModel::ConRetro => "CON-R",
        }
    }
}

impl std::fmt::Display for CacheModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cache replacement policies. PIN/PINC/HD are the GC/GC+ exclusive
/// policies of §7.1; LRU/LFU are the classical baselines GC compared
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Evict the least recently used entry.
    Lru,
    /// Evict the least frequently hit entry.
    Lfu,
    /// Score = R, the number of sub-iso tests the entry alleviated.
    Pin,
    /// Score = C-weighted R: estimated query-time saved (cost heuristic
    /// from the paper's ref \[25\]).
    Pinc,
    /// HD: if the (squared) coefficient of variation of the R distribution
    /// exceeds 1, use PIN's scoring, else PINC's (§7.1).
    Hybrid,
}

impl Policy {
    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Lru => "LRU",
            Policy::Lfu => "LFU",
            Policy::Pin => "PIN",
            Policy::Pinc => "PINC",
            Policy::Hybrid => "HD",
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where the candidate set `CS_M` handed to Method M comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateSource {
    /// The updatable postings-bitset index ([`gc_dataset::LabelIndex`]):
    /// per-label candidate bitsets intersected across the query's label
    /// multiset, with the signature pre-filter folded in so one pass
    /// yields the final candidate set. Maintained incrementally under
    /// ADD/DEL/UA/UR — never rebuilt on the update path. The default.
    LabelIndex,
    /// The whole live dataset, scanned per query with Method M's
    /// per-candidate signature pre-filter — the paper's SI-method
    /// setting, kept for comparable timings and as the audit witness.
    LiveScan,
}

impl CandidateSource {
    /// Display name used in experiment tables and env parsing.
    pub fn name(self) -> &'static str {
        match self {
            CandidateSource::LabelIndex => "index",
            CandidateSource::LiveScan => "scan",
        }
    }
}

impl std::fmt::Display for CandidateSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the CON maintenance pass treats a cached entry whose relation
/// towards a touched dataset graph can no longer be proven intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaintenanceMode {
    /// Delta-repair: classify every (entry, touched graph) as Unaffected
    /// (Algorithm 2 keeps the bit), LocalRepair (the single answer bit is
    /// spliced back to ground truth — by signature disproof or one bounded
    /// SI test — and validity is *kept*), or Invalidate (fallback:
    /// validity bit cleared exactly as in the paper). The default.
    Repair,
    /// The paper's behavior: clear the validity bit and let the next query
    /// that needs the graph recompute it (kept by [`GcConfig::paper`]).
    Invalidate,
}

impl MaintenanceMode {
    /// Display name used in experiment tables and env parsing.
    pub fn name(self) -> &'static str {
        match self {
            MaintenanceMode::Repair => "repair",
            MaintenanceMode::Invalidate => "invalidate",
        }
    }
}

impl std::fmt::Display for MaintenanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full GC+ configuration.
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// Upper limit on the cache store (paper default: 100 queries).
    pub cache_capacity: usize,
    /// Upper limit on the window store (paper default: 20 queries).
    pub window_capacity: usize,
    /// Consistency model (EVI or CON).
    pub model: CacheModel,
    /// Replacement policy.
    pub policy: Policy,
    /// The external SI method GC+ expedites.
    pub method: MethodM,
    /// SI algorithm used *internally* to discover subgraph/supergraph
    /// relations between the incoming query and cached queries.
    pub internal_matcher: Algorithm,
    /// Where `CS_M` comes from: the postings-bitset label index (the
    /// default since the index graduated from ablation arm to
    /// architecture) or a full live-dataset scan (the paper-faithful
    /// setting, kept by [`GcConfig::paper`]).
    pub candidate_source: CandidateSource,
    /// How CON maintenance treats entries a delta may have affected:
    /// delta-repair in place (the default) or paper-faithful invalidation
    /// (kept by [`GcConfig::paper`]).
    pub maintenance: MaintenanceMode,
    /// Per-maintenance-pass cap on bounded single-bit SI recomputations the
    /// repair path may run; once exhausted, remaining affected bits fall
    /// back to invalidation (counted as `repair_fallbacks`).
    pub repair_test_budget: u64,
    /// Entry time-to-live in logical clock ticks (queries + update bursts).
    /// `0` disables the trigger. When set, entries whose last contribution
    /// is older than this are evicted on the next admission sweep
    /// regardless of replacement score.
    pub entry_ttl: u64,
    /// Worker threads for probing cached queries during hit discovery
    /// (`1` = sequential). The probe results are merged in entry order, so
    /// hit lists and metrics are identical at any setting; worth raising
    /// only when the cache+window population carries large query graphs.
    pub probe_parallelism: usize,
    /// Per-query execution budget (wall-clock deadline / sub-iso test
    /// cap). Unlimited by default — the paper's measurement setting.
    /// Queries that exhaust the budget return an explicitly
    /// `degraded`-tagged sound partial answer instead of blocking.
    pub budget: QueryBudget,
    /// Shard count for [`crate::ShardedGraphCache`]-based deployments
    /// (clamped to ≥ 1). Single-shard by default.
    pub shards: usize,
    /// Per-shard in-flight request cap for the networked service; requests
    /// beyond this depth are shed with an explicit `Overloaded` response.
    pub max_inflight: usize,
    /// Client-side retry attempts (beyond the first try) for idempotent
    /// operations on transport errors or explicit `Retryable` responses.
    pub retry_max: u32,
    /// Record per-query latency histograms (telemetry). Per-shard
    /// hit/miss/eviction/shed counters are *always* on — they are single
    /// relaxed atomic adds — but histogram recording is gated here so the
    /// paper's measurement setting stays byte-for-byte untouched.
    pub metrics: bool,
    /// Record per-stage pipeline trace spans (pre-filter, candidate scan,
    /// verify, hit probe, admission, audit). Implies extra `Instant::now`
    /// calls on the query hot path; off by default for the same reason.
    pub trace: bool,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            cache_capacity: 100,
            window_capacity: 20,
            model: CacheModel::Con,
            policy: Policy::Hybrid,
            method: MethodM::parallel(Algorithm::Vf2, default_parallelism()),
            internal_matcher: Algorithm::Vf2Plus,
            candidate_source: CandidateSource::LabelIndex,
            maintenance: MaintenanceMode::Repair,
            repair_test_budget: 256,
            entry_ttl: 0,
            probe_parallelism: default_parallelism(),
            budget: QueryBudget::UNLIMITED,
            shards: 1,
            max_inflight: 64,
            retry_max: 3,
            metrics: false,
            trace: false,
        }
    }
}

impl GcConfig {
    /// Paper defaults with the given Method M algorithm and model. Unlike
    /// [`GcConfig::default`], this pins every scan to a single thread and
    /// keeps `CS_M` as the paper-faithful full live-dataset scan — the
    /// paper's measurement setting, so experiment timings stay comparable
    /// across machines and against the published tables.
    pub fn paper(method: Algorithm, model: CacheModel) -> Self {
        GcConfig {
            model,
            method: MethodM::new(method),
            probe_parallelism: 1,
            candidate_source: CandidateSource::LiveScan,
            maintenance: MaintenanceMode::Invalidate,
            ..GcConfig::default()
        }
    }

    /// Defaults overridden from the process environment:
    ///
    /// | variable          | field          | notes                          |
    /// |-------------------|----------------|--------------------------------|
    /// | `GC_SHARDS`       | `shards`       | clamped to ≥ 1                 |
    /// | `GC_DEADLINE_MS`  | `budget.deadline` | `0` = unlimited             |
    /// | `GC_MAX_INFLIGHT` | `max_inflight` | clamped to ≥ 1                 |
    /// | `GC_RETRY_MAX`    | `retry_max`    | `0` = never retry              |
    /// | `GC_METRICS`      | `metrics`      | `1`/`true` or `0`/`false`      |
    /// | `GC_TRACE`        | `trace`        | `1`/`true` or `0`/`false`      |
    /// | `GC_CANDIDATE_SOURCE` | `candidate_source` | `index` or `scan`  |
    /// | `GC_MAINTENANCE`  | `maintenance`  | `repair` or `invalidate`       |
    /// | `GC_TTL`          | `entry_ttl`    | logical ticks, `0` = off       |
    /// | `GC_CACHE_CAPACITY` | `cache_capacity` | clamped to ≥ 1           |
    /// | `GC_WINDOW_CAPACITY` | `window_capacity` | clamped to ≥ 1         |
    ///
    /// Unset variables keep their defaults; set-but-malformed values are a
    /// deployment bug and return an error naming the offending variable.
    pub fn from_env() -> Result<Self, String> {
        Self::from_env_with(|k| std::env::var(k).ok())
    }

    /// [`GcConfig::from_env`] over an arbitrary lookup function, so tests
    /// can exercise parsing without racing on the process environment.
    pub fn from_env_with(get: impl Fn(&str) -> Option<String>) -> Result<Self, String> {
        fn parse<T: std::str::FromStr>(key: &str, raw: &str) -> Result<T, String> {
            raw.trim()
                .parse()
                .map_err(|_| format!("{key}: invalid value '{raw}'"))
        }
        fn parse_flag(key: &str, raw: &str) -> Result<bool, String> {
            match raw.trim() {
                "1" | "true" => Ok(true),
                "0" | "false" => Ok(false),
                _ => Err(format!("{key}: invalid value '{raw}'")),
            }
        }
        let mut cfg = GcConfig::default();
        if let Some(raw) = get("GC_SHARDS") {
            cfg.shards = parse::<usize>("GC_SHARDS", &raw)?.max(1);
        }
        if let Some(raw) = get("GC_DEADLINE_MS") {
            let ms: u64 = parse("GC_DEADLINE_MS", &raw)?;
            cfg.budget.deadline = (ms > 0).then(|| std::time::Duration::from_millis(ms));
        }
        if let Some(raw) = get("GC_MAX_INFLIGHT") {
            cfg.max_inflight = parse::<usize>("GC_MAX_INFLIGHT", &raw)?.max(1);
        }
        if let Some(raw) = get("GC_RETRY_MAX") {
            cfg.retry_max = parse("GC_RETRY_MAX", &raw)?;
        }
        if let Some(raw) = get("GC_METRICS") {
            cfg.metrics = parse_flag("GC_METRICS", &raw)?;
        }
        if let Some(raw) = get("GC_TRACE") {
            cfg.trace = parse_flag("GC_TRACE", &raw)?;
        }
        if let Some(raw) = get("GC_CANDIDATE_SOURCE") {
            cfg.candidate_source = match raw.trim() {
                "index" => CandidateSource::LabelIndex,
                "scan" => CandidateSource::LiveScan,
                _ => return Err(format!("GC_CANDIDATE_SOURCE: invalid value '{raw}'")),
            };
        }
        if let Some(raw) = get("GC_MAINTENANCE") {
            cfg.maintenance = match raw.trim() {
                "repair" => MaintenanceMode::Repair,
                "invalidate" => MaintenanceMode::Invalidate,
                _ => return Err(format!("GC_MAINTENANCE: invalid value '{raw}'")),
            };
        }
        if let Some(raw) = get("GC_TTL") {
            cfg.entry_ttl = parse("GC_TTL", &raw)?;
        }
        if let Some(raw) = get("GC_CACHE_CAPACITY") {
            cfg.cache_capacity = parse::<usize>("GC_CACHE_CAPACITY", &raw)?.max(1);
        }
        if let Some(raw) = get("GC_WINDOW_CAPACITY") {
            cfg.window_capacity = parse::<usize>("GC_WINDOW_CAPACITY", &raw)?.max(1);
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GcConfig::default();
        assert_eq!(c.cache_capacity, 100);
        assert_eq!(c.window_capacity, 20);
        assert_eq!(c.model, CacheModel::Con);
        assert_eq!(c.policy, Policy::Hybrid);
        assert!(c.budget.is_unlimited(), "no deadline unless asked for");
        assert!(c.method.prefilter, "Method M pre-filter defaults on");
        assert_eq!(
            c.candidate_source,
            CandidateSource::LabelIndex,
            "the postings index is the standing candidate source"
        );
    }

    #[test]
    fn default_parallelism_tracks_the_machine() {
        let n = default_parallelism();
        assert!(n >= 1);
        let c = GcConfig::default();
        assert_eq!(c.probe_parallelism, n);
        assert_eq!(c.method.parallelism, n);
        // the paper constructor stays sequential for comparable timings
        let p = GcConfig::paper(Algorithm::Vf2, CacheModel::Con);
        assert_eq!(p.probe_parallelism, 1);
        assert_eq!(p.method.parallelism, 1);
    }

    #[test]
    fn names() {
        assert_eq!(CacheModel::Evi.to_string(), "EVI");
        assert_eq!(CacheModel::Con.to_string(), "CON");
        assert_eq!(Policy::Hybrid.to_string(), "HD");
        assert_eq!(Policy::Pinc.name(), "PINC");
    }

    #[test]
    fn env_defaults_when_unset() {
        let c = GcConfig::from_env_with(|_| None).unwrap();
        assert_eq!(c.shards, 1);
        assert_eq!(c.max_inflight, 64);
        assert_eq!(c.retry_max, 3);
        assert!(c.budget.is_unlimited());
    }

    #[test]
    fn env_round_trips() {
        let lookup = |k: &str| -> Option<String> {
            match k {
                "GC_SHARDS" => Some("4".into()),
                "GC_DEADLINE_MS" => Some("250".into()),
                "GC_MAX_INFLIGHT" => Some("16".into()),
                "GC_RETRY_MAX" => Some("5".into()),
                "GC_METRICS" => Some("1".into()),
                "GC_TRACE" => Some("true".into()),
                _ => None,
            }
        };
        let c = GcConfig::from_env_with(lookup).unwrap();
        assert_eq!(c.shards, 4);
        assert_eq!(
            c.budget.deadline,
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(c.max_inflight, 16);
        assert_eq!(c.retry_max, 5);
        assert!(c.metrics);
        assert!(c.trace);
    }

    #[test]
    fn env_telemetry_flags_default_off_and_parse_both_spellings() {
        let c = GcConfig::from_env_with(|_| None).unwrap();
        assert!(!c.metrics, "histograms must be opt-in");
        assert!(!c.trace, "spans must be opt-in");
        let c = GcConfig::from_env_with(|k| match k {
            "GC_METRICS" => Some(" true ".into()),
            "GC_TRACE" => Some("0".into()),
            _ => None,
        })
        .unwrap();
        assert!(c.metrics, "whitespace-padded 'true' is accepted");
        assert!(!c.trace);
    }

    #[test]
    fn env_malformed_telemetry_flags_name_the_variable() {
        let err =
            GcConfig::from_env_with(|k| (k == "GC_METRICS").then(|| "yes".into())).unwrap_err();
        assert!(err.contains("GC_METRICS"), "{err}");
        assert!(err.contains("yes"), "{err}");
        let err = GcConfig::from_env_with(|k| (k == "GC_TRACE").then(|| "2".into())).unwrap_err();
        assert!(err.contains("GC_TRACE"), "{err}");
    }

    #[test]
    fn env_zero_deadline_means_unlimited() {
        let c = GcConfig::from_env_with(|k| (k == "GC_DEADLINE_MS").then(|| "0".into())).unwrap();
        assert_eq!(c.budget.deadline, None);
        assert!(c.budget.is_unlimited());
    }

    #[test]
    fn env_degenerate_values_are_clamped() {
        let c = GcConfig::from_env_with(|k| match k {
            "GC_SHARDS" => Some("0".into()),
            "GC_MAX_INFLIGHT" => Some("0".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!(c.shards, 1);
        assert_eq!(c.max_inflight, 1);
    }

    #[test]
    fn env_malformed_values_name_the_variable() {
        let err =
            GcConfig::from_env_with(|k| (k == "GC_SHARDS").then(|| "four".into())).unwrap_err();
        assert!(err.contains("GC_SHARDS"), "{err}");
        assert!(err.contains("four"), "{err}");
        let err =
            GcConfig::from_env_with(|k| (k == "GC_RETRY_MAX").then(|| "-1".into())).unwrap_err();
        assert!(err.contains("GC_RETRY_MAX"), "{err}");
        // whitespace is tolerated, garbage is not
        assert!(
            GcConfig::from_env_with(|k| (k == "GC_DEADLINE_MS").then(|| " 40 ".into())).is_ok()
        );
    }

    #[test]
    fn paper_constructor() {
        let c = GcConfig::paper(Algorithm::GraphQl, CacheModel::Evi);
        assert_eq!(c.method.algorithm, Algorithm::GraphQl);
        assert_eq!(c.model, CacheModel::Evi);
        assert_eq!(c.cache_capacity, 100);
        assert_eq!(
            c.candidate_source,
            CandidateSource::LiveScan,
            "paper timings use the paper's full scan"
        );
    }

    #[test]
    fn env_maintenance_mode_parses_and_rejects_garbage() {
        let c = GcConfig::from_env_with(|_| None).unwrap();
        assert_eq!(c.maintenance, MaintenanceMode::Repair, "repair is default");
        let c = GcConfig::from_env_with(|k| (k == "GC_MAINTENANCE").then(|| "invalidate".into()))
            .unwrap();
        assert_eq!(c.maintenance, MaintenanceMode::Invalidate);
        let c = GcConfig::from_env_with(|k| (k == "GC_MAINTENANCE").then(|| " repair ".into()))
            .unwrap();
        assert_eq!(c.maintenance, MaintenanceMode::Repair);
        let err = GcConfig::from_env_with(|k| (k == "GC_MAINTENANCE").then(|| "evict".into()))
            .unwrap_err();
        assert!(err.contains("GC_MAINTENANCE"), "{err}");
        assert_eq!(MaintenanceMode::Repair.to_string(), "repair");
        assert_eq!(MaintenanceMode::Invalidate.to_string(), "invalidate");
        // the paper constructor keeps the paper's invalidation behavior
        let p = GcConfig::paper(Algorithm::Vf2, CacheModel::Con);
        assert_eq!(p.maintenance, MaintenanceMode::Invalidate);
    }

    #[test]
    fn env_ttl_and_capacity_overrides() {
        let c = GcConfig::from_env_with(|_| None).unwrap();
        assert_eq!(c.entry_ttl, 0, "TTL trigger is off by default");
        let c = GcConfig::from_env_with(|k| match k {
            "GC_TTL" => Some("500".into()),
            "GC_CACHE_CAPACITY" => Some("7".into()),
            "GC_WINDOW_CAPACITY" => Some("3".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!(c.entry_ttl, 500);
        assert_eq!(c.cache_capacity, 7);
        assert_eq!(c.window_capacity, 3);
        // degenerate capacities clamp to 1, malformed TTL names the var
        let c = GcConfig::from_env_with(|k| match k {
            "GC_CACHE_CAPACITY" => Some("0".into()),
            "GC_WINDOW_CAPACITY" => Some("0".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!(c.cache_capacity, 1);
        assert_eq!(c.window_capacity, 1);
        let err = GcConfig::from_env_with(|k| (k == "GC_TTL").then(|| "soon".into())).unwrap_err();
        assert!(err.contains("GC_TTL"), "{err}");
    }

    #[test]
    fn env_candidate_source_parses_and_rejects_garbage() {
        let c = GcConfig::from_env_with(|k| (k == "GC_CANDIDATE_SOURCE").then(|| "scan".into()))
            .unwrap();
        assert_eq!(c.candidate_source, CandidateSource::LiveScan);
        let c = GcConfig::from_env_with(|k| (k == "GC_CANDIDATE_SOURCE").then(|| "index".into()))
            .unwrap();
        assert_eq!(c.candidate_source, CandidateSource::LabelIndex);
        let err = GcConfig::from_env_with(|k| (k == "GC_CANDIDATE_SOURCE").then(|| "csr".into()))
            .unwrap_err();
        assert!(err.contains("GC_CANDIDATE_SOURCE"), "{err}");
        assert_eq!(CandidateSource::LabelIndex.to_string(), "index");
        assert_eq!(CandidateSource::LiveScan.to_string(), "scan");
    }
}
