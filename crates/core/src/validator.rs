//! The Cache Validator — Algorithm 2 (CON) and the EVI purge.
//!
//! On each query arrival the Dataset Manager checks whether the dataset
//! changed since the cache last synchronized. If so:
//!
//! * **EVI** clears cache and window indiscriminately — trivially safe,
//!   but it discards every still-valid result (§5.1);
//! * **CON** runs Algorithm 1 (log → per-graph counters, in `gc-dataset`)
//!   and then Algorithm 2 per cached entry: extend `CGvalid` with `false`
//!   for newly assigned ids, then for each touched graph `i` keep the bit
//!   only in the two provably-safe cases, else clear it.
//!
//! ### Polarity and the supergraph dual
//!
//! For a **subgraph-query** entry (`Answer = {G : q ⊆ G}`), Algorithm 2's
//! safe cases are:
//!
//! * all ops on `Gi` were **UA** and the cached bit is a *positive* answer
//!   (`q ⊆ Gi` is preserved by adding edges to `Gi`);
//! * all ops on `Gi` were **UR** and the cached bit is a *negative* answer
//!   (`q ⊄ Gi` is preserved by removing edges from `Gi`).
//!
//! For a **supergraph-query** entry (`Answer = {G : G ⊆ q}`) the
//! monotonicity flips (removing edges from `Gi` preserves `Gi ⊆ q`;
//! adding edges preserves `Gi ⊄ q`), so UA/UR swap roles. The paper omits
//! this dual "for space reason"; it is required for correctness as soon as
//! supergraph queries are cached, and tests exercise it.

use gc_dataset::{GraphStore, NetEffect, NetEffects, OpCounters};
use gc_subiso::{Algorithm, QueryKind};

use crate::entry::CachedQuery;

/// Tally of one delta-repair maintenance pass — the per-refresh record
/// threaded into `QueryMetrics`, `AggregateMetrics` and `RuntimeHealth`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceOutcome {
    /// Answer bits spliced back to ground truth in place (their stored
    /// value actually changed).
    pub repairs_applied: u64,
    /// Validity bits preserved that invalidate-mode maintenance would have
    /// cleared — each one is a recomputation the next query avoids.
    pub invalidations_avoided: u64,
    /// Affected bits invalidated after all because the per-pass repair
    /// test budget was exhausted.
    pub repair_fallbacks: u64,
    /// Bounded single-bit SI tests the repair path executed.
    pub repair_tests: u64,
}

impl MaintenanceOutcome {
    /// Field-wise sum.
    pub fn merge(&mut self, other: &MaintenanceOutcome) {
        self.repairs_applied += other.repairs_applied;
        self.invalidations_avoided += other.invalidations_avoided;
        self.repair_fallbacks += other.repair_fallbacks;
        self.repair_tests += other.repair_tests;
    }
}

/// Refreshes one entry's `CGvalid` per Algorithm 2.
///
/// `id_span` is the dataset's current `max_id + 1` (`m + 1` in the
/// paper's pseudocode).
pub fn refresh_entry(entry: &mut CachedQuery, counters: &OpCounters, id_span: usize) {
    // Lines 4–6: extend CGvalid with false bits for newly added graphs.
    // BitSet::extend_to allocates zero (false) bits, which is exactly the
    // required semantics; reads past the end are false either way.
    entry.cg_valid.extend_to(id_span);

    // Lines 7–19: apply the per-graph counters.
    for i in counters.touched() {
        if !entry.cg_valid.get(i) {
            continue; // already invalid; nothing to preserve
        }
        let answered = entry.answer.get(i);
        let keep = match entry.kind {
            QueryKind::Subgraph => {
                (counters.ua_exclusive(i) && answered) || (counters.ur_exclusive(i) && !answered)
            }
            // dual polarity for supergraph-semantics answers
            QueryKind::Supergraph => {
                (counters.ur_exclusive(i) && answered) || (counters.ua_exclusive(i) && !answered)
            }
        };
        if !keep {
            entry.cg_valid.set(i, false);
        }
    }
}

/// Refreshes a whole collection of entries (cache + window both hold
/// "cached graphs" in the paper's terminology).
pub fn refresh_all<'a, I>(entries: I, counters: &OpCounters, id_span: usize)
where
    I: IntoIterator<Item = &'a mut CachedQuery>,
{
    for e in entries {
        refresh_entry(e, counters, id_span);
    }
}

/// Retrospective variant of Algorithm 2 (the paper's §8 future-work item,
/// CON-R): instead of per-category counters, the per-graph **net edge
/// delta** decides. Changes that cancelled out preserve *all* validity;
/// residual additions/removals behave like UA/UR-exclusive; everything
/// else invalidates. Strictly at least as much validity survives as under
/// [`refresh_entry`] — property-tested in `tests/retro.rs`.
pub fn refresh_entry_retro(entry: &mut CachedQuery, effects: &NetEffects, id_span: usize) {
    entry.cg_valid.extend_to(id_span);
    for i in effects.touched() {
        if !entry.cg_valid.get(i) {
            continue;
        }
        let effect = effects.get(i).expect("touched implies present");
        let answered = entry.answer.get(i);
        let keep = match effect {
            NetEffect::Neutral => true,
            NetEffect::AddOnly => match entry.kind {
                QueryKind::Subgraph => answered,
                QueryKind::Supergraph => !answered,
            },
            NetEffect::RemoveOnly => match entry.kind {
                QueryKind::Subgraph => !answered,
                QueryKind::Supergraph => answered,
            },
            NetEffect::Invalidating => false,
        };
        if !keep {
            entry.cg_valid.set(i, false);
        }
    }
}

/// Retrospective refresh over a collection.
pub fn refresh_all_retro<'a, I>(entries: I, effects: &NetEffects, id_span: usize)
where
    I: IntoIterator<Item = &'a mut CachedQuery>,
{
    for e in entries {
        refresh_entry_retro(e, effects, id_span);
    }
}

/// Delta-impact classification of one (entry, touched graph) pair, then
/// action. This is the repair-mode core shared by the CON and CON-R
/// variants; `keep` is the model's Algorithm-2 keep decision.
///
/// * **Unaffected** — `keep` is true: the bit is provably intact and is
///   left strictly untouched (byte-identical to invalidate mode, so even a
///   corrupted-but-kept bit stays comparable across modes);
/// * **LocalRepair** — the bit would be invalidated, but the single
///   affected answer bit is spliced back to ground truth in place: a
///   signature disproof settles it for free, otherwise one bounded SI test
///   recomputes it; validity is *kept* either way;
/// * **Invalidate** — the graph is dead (its id can never re-enter a
///   candidate set, so clearing is free), or the per-pass repair test
///   budget ran dry (`repair_fallbacks`).
fn repair_with_keep(
    entry: &mut CachedQuery,
    touched: impl Iterator<Item = usize>,
    keep: impl Fn(&CachedQuery, usize) -> bool,
    store: &GraphStore,
    matcher: Algorithm,
    budget: &mut u64,
    outcome: &mut MaintenanceOutcome,
) {
    entry.cg_valid.extend_to(store.id_span());
    for i in touched {
        if !entry.cg_valid.get(i) {
            continue; // already invalid; nothing to preserve
        }
        if keep(entry, i) {
            continue; // Unaffected: Algorithm 2 proves the bit intact
        }
        let Some(graph) = store.get(i) else {
            // deleted graph: clearing the bit is free and final
            entry.cg_valid.set(i, false);
            continue;
        };
        let disproved = match entry.kind {
            QueryKind::Subgraph => !gc_subiso::filter::signature_may_contain(
                entry.graph.signature(),
                graph.signature(),
            ),
            QueryKind::Supergraph => !gc_subiso::filter::signature_may_contain(
                graph.signature(),
                entry.graph.signature(),
            ),
        };
        let truth = if disproved {
            false
        } else if *budget > 0 {
            *budget -= 1;
            outcome.repair_tests += 1;
            let m = matcher.matcher();
            match entry.kind {
                QueryKind::Subgraph => m.contains(&entry.graph, graph),
                QueryKind::Supergraph => m.contains(graph, &entry.graph),
            }
        } else {
            // budget dry: fall back to the paper's invalidation
            entry.cg_valid.set(i, false);
            outcome.repair_fallbacks += 1;
            continue;
        };
        if entry.answer.get(i) != truth {
            entry.answer.set(i, truth);
            outcome.repairs_applied += 1;
        }
        outcome.invalidations_avoided += 1;
    }
}

/// Repair-mode refresh of one entry under the CON model: Algorithm 2's
/// keep decision classifies each touched graph, and bits Algorithm 2
/// would have invalidated are delta-repaired in place where possible.
/// Every surviving answer bit with a set validity bit equals ground truth,
/// so query answers are bit-identical to invalidate-mode maintenance
/// (gated by `experiments chaos --repair-diff`).
pub fn refresh_entry_repair(
    entry: &mut CachedQuery,
    counters: &OpCounters,
    store: &GraphStore,
    matcher: Algorithm,
    budget: &mut u64,
    outcome: &mut MaintenanceOutcome,
) {
    let touched: Vec<usize> = counters.touched().collect();
    repair_with_keep(
        entry,
        touched.into_iter(),
        |e, i| {
            let answered = e.answer.get(i);
            match e.kind {
                QueryKind::Subgraph => {
                    (counters.ua_exclusive(i) && answered)
                        || (counters.ur_exclusive(i) && !answered)
                }
                QueryKind::Supergraph => {
                    (counters.ur_exclusive(i) && answered)
                        || (counters.ua_exclusive(i) && !answered)
                }
            }
        },
        store,
        matcher,
        budget,
        outcome,
    );
}

/// Repair-mode refresh over a collection (CON model).
pub fn refresh_all_repair<'a, I>(
    entries: I,
    counters: &OpCounters,
    store: &GraphStore,
    matcher: Algorithm,
    budget: &mut u64,
) -> MaintenanceOutcome
where
    I: IntoIterator<Item = &'a mut CachedQuery>,
{
    let mut outcome = MaintenanceOutcome::default();
    for e in entries {
        refresh_entry_repair(e, counters, store, matcher, budget, &mut outcome);
    }
    outcome
}

/// Repair-mode refresh of one entry under the CON-R model: the
/// retrospective net-effect keep decision, with the same repair core.
pub fn refresh_entry_repair_retro(
    entry: &mut CachedQuery,
    effects: &NetEffects,
    store: &GraphStore,
    matcher: Algorithm,
    budget: &mut u64,
    outcome: &mut MaintenanceOutcome,
) {
    let touched: Vec<usize> = effects.touched().collect();
    repair_with_keep(
        entry,
        touched.into_iter(),
        |e, i| {
            let answered = e.answer.get(i);
            match effects.get(i).expect("touched implies present") {
                NetEffect::Neutral => true,
                NetEffect::AddOnly => match e.kind {
                    QueryKind::Subgraph => answered,
                    QueryKind::Supergraph => !answered,
                },
                NetEffect::RemoveOnly => match e.kind {
                    QueryKind::Subgraph => !answered,
                    QueryKind::Supergraph => answered,
                },
                NetEffect::Invalidating => false,
            }
        },
        store,
        matcher,
        budget,
        outcome,
    );
}

/// Repair-mode refresh over a collection (CON-R model).
pub fn refresh_all_repair_retro<'a, I>(
    entries: I,
    effects: &NetEffects,
    store: &GraphStore,
    matcher: Algorithm,
    budget: &mut u64,
) -> MaintenanceOutcome
where
    I: IntoIterator<Item = &'a mut CachedQuery>,
{
    let mut outcome = MaintenanceOutcome::default();
    for e in entries {
        refresh_entry_repair_retro(e, effects, store, matcher, budget, &mut outcome);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_dataset::{ChangeRecord, LogAnalyzer, OpType};
    use gc_graph::{BitSet, LabeledGraph};

    fn rec(graph_id: usize, op: OpType) -> ChangeRecord {
        ChangeRecord {
            graph_id,
            op,
            edge: None,
        }
    }

    fn entry(kind: QueryKind, answer: &[usize], span: usize) -> CachedQuery {
        CachedQuery::new(
            LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap(),
            kind,
            BitSet::from_indices(answer.iter().copied()),
            span,
            0,
        )
    }

    #[test]
    fn ua_exclusive_preserves_positive_subgraph_answers() {
        // paper example: answer on G2 survives UA, non-answer on G2 dies
        let mut pos = entry(QueryKind::Subgraph, &[2], 4);
        let mut neg = entry(QueryKind::Subgraph, &[], 4);
        let c = LogAnalyzer::analyze(&[rec(2, OpType::Ua), rec(2, OpType::Ua)]);
        refresh_entry(&mut pos, &c, 4);
        refresh_entry(&mut neg, &c, 4);
        assert!(pos.cg_valid.get(2), "q ⊆ G2 unaffected by adding edges");
        assert!(!neg.cg_valid.get(2), "q ⊄ G2 may flip when edges appear");
        // untouched graphs keep validity
        assert!(pos.cg_valid.get(0) && pos.cg_valid.get(1) && pos.cg_valid.get(3));
    }

    #[test]
    fn ur_exclusive_preserves_negative_subgraph_answers() {
        let mut pos = entry(QueryKind::Subgraph, &[1], 3);
        let mut neg = entry(QueryKind::Subgraph, &[], 3);
        let c = LogAnalyzer::analyze(&[rec(1, OpType::Ur)]);
        refresh_entry(&mut pos, &c, 3);
        refresh_entry(&mut neg, &c, 3);
        assert!(!pos.cg_valid.get(1), "q ⊆ G1 may break when edges vanish");
        assert!(neg.cg_valid.get(1), "q ⊄ G1 unaffected by removing edges");
    }

    #[test]
    fn mixed_ops_invalidate_both_polarities() {
        let mut pos = entry(QueryKind::Subgraph, &[0], 1);
        let mut neg = entry(QueryKind::Subgraph, &[], 1);
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Ua), rec(0, OpType::Ur)]);
        refresh_entry(&mut pos, &c, 1);
        refresh_entry(&mut neg, &c, 1);
        assert!(!pos.cg_valid.get(0));
        assert!(!neg.cg_valid.get(0));
    }

    #[test]
    fn del_invalidates_and_add_extends_with_false() {
        // timeline mirrors Figure 2: DEL G0, ADD G4 (fresh id 4)
        let mut e = entry(QueryKind::Subgraph, &[0, 2], 4);
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Del), rec(4, OpType::Add)]);
        refresh_entry(&mut e, &c, 5);
        assert!(!e.cg_valid.get(0), "deleted graph knowledge dies");
        assert!(!e.cg_valid.get(4), "new graph unknown to old query");
        assert!(e.cg_valid.get(1) && e.cg_valid.get(2) && e.cg_valid.get(3));
    }

    #[test]
    fn supergraph_duality() {
        // supergraph entry: answer bit = G ⊆ q
        let mut pos_ur = entry(QueryKind::Supergraph, &[1], 3);
        let mut neg_ur = entry(QueryKind::Supergraph, &[], 3);
        let c_ur = LogAnalyzer::analyze(&[rec(1, OpType::Ur)]);
        refresh_entry(&mut pos_ur, &c_ur, 3);
        refresh_entry(&mut neg_ur, &c_ur, 3);
        assert!(pos_ur.cg_valid.get(1), "G ⊆ q survives G shrinking");
        assert!(!neg_ur.cg_valid.get(1), "G ⊄ q may flip when G shrinks");

        let mut pos_ua = entry(QueryKind::Supergraph, &[1], 3);
        let mut neg_ua = entry(QueryKind::Supergraph, &[], 3);
        let c_ua = LogAnalyzer::analyze(&[rec(1, OpType::Ua)]);
        refresh_entry(&mut pos_ua, &c_ua, 3);
        refresh_entry(&mut neg_ua, &c_ua, 3);
        assert!(!pos_ua.cg_valid.get(1), "G ⊆ q may break when G grows");
        assert!(neg_ua.cg_valid.get(1), "G ⊄ q survives G growing");
    }

    #[test]
    fn already_invalid_bits_stay_invalid() {
        let mut e = entry(QueryKind::Subgraph, &[0], 2);
        e.cg_valid.set(0, false);
        // UA-exclusive + positive answer would keep it — but it's already
        // invalid (CGvalid.get(i) is part of Algorithm 2's keep condition)
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Ua)]);
        refresh_entry(&mut e, &c, 2);
        assert!(!e.cg_valid.get(0));
        assert!(e.cg_valid.get(1));
    }

    #[test]
    fn figure2_full_timeline() {
        // Reproduces the running example of Figure 2 for g′:
        // dataset {G0..G3}; g′ answers {2,3}; batch 1: ADD G4 + UR G3;
        // batch 2: DEL G0 + UA G1.
        let mut g_prime = entry(QueryKind::Subgraph, &[2, 3], 4);

        let batch1 = LogAnalyzer::analyze(&[rec(4, OpType::Add), rec(3, OpType::Ur)]);
        refresh_entry(&mut g_prime, &batch1, 5);
        // paper state at T2: CGvalid = {0,1,2} (G3 lost: positive answer + UR;
        // G4 unknown)
        assert_eq!(
            g_prime.cg_valid.iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );

        let batch2 = LogAnalyzer::analyze(&[rec(0, OpType::Del), rec(1, OpType::Ua)]);
        refresh_entry(&mut g_prime, &batch2, 5);
        // paper state at T4 (row for g′): valid only on G2
        // (G0 deleted; G1 was a negative answer hit by UA)
        assert_eq!(g_prime.cg_valid.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn retro_neutral_preserves_everything() {
        use gc_dataset::RetroAnalyzer;
        // UA then UR of the same edge: Algorithm 2 invalidates, CON-R keeps
        let mut plain = entry(QueryKind::Subgraph, &[0], 2);
        let mut retro = entry(QueryKind::Subgraph, &[0], 2);
        let records = [
            ChangeRecord::edge(0, OpType::Ua, 1, 2),
            ChangeRecord::edge(0, OpType::Ur, 1, 2),
        ];
        refresh_entry(&mut plain, &LogAnalyzer::analyze(&records), 2);
        refresh_entry_retro(&mut retro, &RetroAnalyzer::analyze(&records), 2);
        assert!(!plain.cg_valid.get(0), "CON loses the oscillated graph");
        assert!(retro.cg_valid.get(0), "CON-R keeps it");
    }

    #[test]
    fn retro_residuals_match_polarity_rules() {
        use gc_dataset::RetroAnalyzer;
        // net add: positive subgraph answers survive, negatives don't
        let records = [
            ChangeRecord::edge(1, OpType::Ua, 0, 1),
            ChangeRecord::edge(1, OpType::Ua, 2, 3),
            ChangeRecord::edge(1, OpType::Ur, 2, 3),
        ];
        let eff = RetroAnalyzer::analyze(&records);
        let mut pos = entry(QueryKind::Subgraph, &[1], 2);
        let mut neg = entry(QueryKind::Subgraph, &[], 2);
        refresh_entry_retro(&mut pos, &eff, 2);
        refresh_entry_retro(&mut neg, &eff, 2);
        assert!(pos.cg_valid.get(1));
        assert!(!neg.cg_valid.get(1));
        // supergraph dual flips
        let mut sup_pos = entry(QueryKind::Supergraph, &[1], 2);
        let mut sup_neg = entry(QueryKind::Supergraph, &[], 2);
        refresh_entry_retro(&mut sup_pos, &eff, 2);
        refresh_entry_retro(&mut sup_neg, &eff, 2);
        assert!(!sup_pos.cg_valid.get(1));
        assert!(sup_neg.cg_valid.get(1));
    }

    #[test]
    fn retro_structural_still_invalidates() {
        use gc_dataset::RetroAnalyzer;
        let mut e = entry(QueryKind::Subgraph, &[0], 2);
        let eff = RetroAnalyzer::analyze(&[ChangeRecord::structural(0, OpType::Del)]);
        refresh_entry_retro(&mut e, &eff, 2);
        assert!(!e.cg_valid.get(0));
        assert!(e.cg_valid.get(1));
    }

    fn store_with(graphs: Vec<LabeledGraph>) -> GraphStore {
        GraphStore::from_graphs(graphs)
    }

    fn path(n: usize) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(vec![0; n], &edges).unwrap()
    }

    #[test]
    fn repair_keeps_unaffected_bits_untouched() {
        // UA-exclusive + positive answer: Algorithm 2 keeps — repair mode
        // must leave the bit byte-identical even if it is (corruptly) wrong
        let store = store_with(vec![path(2), path(3)]);
        let mut e = entry(QueryKind::Subgraph, &[0, 1], 2);
        let c = LogAnalyzer::analyze(&[rec(1, OpType::Ua)]);
        let mut budget = 100;
        let mut out = MaintenanceOutcome::default();
        refresh_entry_repair(
            &mut e,
            &c,
            &store,
            Algorithm::Vf2Plus,
            &mut budget,
            &mut out,
        );
        assert!(e.cg_valid.get(1) && e.answer.get(1));
        assert_eq!(out, MaintenanceOutcome::default(), "kept bits cost nothing");
        assert_eq!(budget, 100);
    }

    #[test]
    fn repair_recomputes_would_be_invalidated_bits() {
        // entry: q = 2-path over store {G0: 2-path, G1: 3-path}; answer all.
        // UR on G0 + positive answer → Algorithm 2 invalidates; repair mode
        // recomputes the single bit (still true: q ⊆ G0) and keeps validity.
        let store = store_with(vec![path(2), path(3)]);
        let mut e = entry(QueryKind::Subgraph, &[0, 1], 2);
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Ur)]);
        let mut invalidated = e.clone();
        refresh_entry(&mut invalidated, &c, 2);
        assert!(!invalidated.cg_valid.get(0), "invalidate mode clears");
        let mut budget = 100;
        let mut out = MaintenanceOutcome::default();
        refresh_entry_repair(
            &mut e,
            &c,
            &store,
            Algorithm::Vf2Plus,
            &mut budget,
            &mut out,
        );
        assert!(e.cg_valid.get(0), "repair mode keeps validity");
        assert!(e.answer.get(0), "q ⊆ G0 still holds");
        assert_eq!(out.invalidations_avoided, 1);
        assert_eq!(out.repairs_applied, 0, "bit already matched ground truth");
        assert_eq!(out.repair_tests, 1);
        assert_eq!(budget, 99);
    }

    #[test]
    fn repair_splices_a_stale_bit_to_ground_truth() {
        // q = 3-path cached as answering G0 (a 2-path — actually false).
        // Mixed ops on G0 invalidate under Algorithm 2; repair recomputes
        // the bit to its true value and counts the splice.
        let store = store_with(vec![path(2)]);
        let mut e = entry(QueryKind::Subgraph, &[0], 1);
        e.graph = path(3);
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Ua), rec(0, OpType::Ur)]);
        let mut budget = 100;
        let mut out = MaintenanceOutcome::default();
        refresh_entry_repair(
            &mut e,
            &c,
            &store,
            Algorithm::Vf2Plus,
            &mut budget,
            &mut out,
        );
        assert!(e.cg_valid.get(0));
        assert!(!e.answer.get(0), "3-path ⊄ 2-path");
        assert_eq!(out.repairs_applied, 1);
        assert_eq!(out.invalidations_avoided, 1);
    }

    #[test]
    fn repair_signature_disproof_skips_the_si_test() {
        // query bigger than the dataset graph: the signature filter proves
        // q ⊄ G without running the matcher
        let store = store_with(vec![path(2)]);
        let mut e = entry(QueryKind::Subgraph, &[0], 1);
        e.graph = path(5);
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Ua), rec(0, OpType::Ur)]);
        let mut budget = 100;
        let mut out = MaintenanceOutcome::default();
        refresh_entry_repair(
            &mut e,
            &c,
            &store,
            Algorithm::Vf2Plus,
            &mut budget,
            &mut out,
        );
        assert!(e.cg_valid.get(0));
        assert!(!e.answer.get(0));
        assert_eq!(out.repair_tests, 0, "disproof is free");
        assert_eq!(out.repairs_applied, 1);
        assert_eq!(budget, 100);
    }

    #[test]
    fn repair_budget_exhaustion_falls_back_to_invalidation() {
        let store = store_with(vec![path(3), path(3)]);
        let mut e = entry(QueryKind::Subgraph, &[], 2);
        let c = LogAnalyzer::analyze(&[
            rec(0, OpType::Ua),
            rec(0, OpType::Ur),
            rec(1, OpType::Ua),
            rec(1, OpType::Ur),
        ]);
        let mut budget = 1;
        let mut out = MaintenanceOutcome::default();
        refresh_entry_repair(
            &mut e,
            &c,
            &store,
            Algorithm::Vf2Plus,
            &mut budget,
            &mut out,
        );
        assert_eq!(budget, 0);
        assert_eq!(out.repair_fallbacks, 1, "one bit hit the dry budget");
        assert_eq!(out.invalidations_avoided, 1, "the other was repaired");
        assert_eq!(e.cg_valid.count_ones(), 1, "exactly one validity bit fell");
    }

    #[test]
    fn repair_clears_deleted_graphs_like_invalidate() {
        let store = {
            let mut s = store_with(vec![path(2), path(3)]);
            s.delete(0).unwrap();
            s
        };
        let mut e = entry(QueryKind::Subgraph, &[0, 1], 2);
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Del)]);
        let mut budget = 100;
        let mut out = MaintenanceOutcome::default();
        refresh_entry_repair(
            &mut e,
            &c,
            &store,
            Algorithm::Vf2Plus,
            &mut budget,
            &mut out,
        );
        assert!(
            !e.cg_valid.get(0),
            "dead graph knowledge dies in both modes"
        );
        assert_eq!(out, MaintenanceOutcome::default());
    }

    #[test]
    fn repair_supergraph_polarity() {
        // supergraph entry q = 3-path; G0 = 2-path ⊆ q (true bit), but the
        // cached answer says false; mixed ops force the repair path
        let store = store_with(vec![path(2)]);
        let mut e = entry(QueryKind::Supergraph, &[], 1);
        e.graph = path(3);
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Ua), rec(0, OpType::Ur)]);
        let mut budget = 100;
        let mut out = MaintenanceOutcome::default();
        refresh_entry_repair(
            &mut e,
            &c,
            &store,
            Algorithm::Vf2Plus,
            &mut budget,
            &mut out,
        );
        assert!(e.answer.get(0), "2-path ⊆ 3-path spliced in");
        assert!(e.cg_valid.get(0));
        assert_eq!(out.repairs_applied, 1);
    }

    #[test]
    fn repair_retro_neutral_stays_free() {
        use gc_dataset::RetroAnalyzer;
        let store = store_with(vec![path(3)]);
        let mut e = entry(QueryKind::Subgraph, &[0], 1);
        let records = [
            ChangeRecord::edge(0, OpType::Ua, 1, 2),
            ChangeRecord::edge(0, OpType::Ur, 1, 2),
        ];
        let eff = RetroAnalyzer::analyze(&records);
        let mut budget = 100;
        let mut out = MaintenanceOutcome::default();
        refresh_entry_repair_retro(
            &mut e,
            &eff,
            &store,
            Algorithm::Vf2Plus,
            &mut budget,
            &mut out,
        );
        assert!(e.cg_valid.get(0), "CON-R keeps the oscillated graph");
        assert_eq!(out, MaintenanceOutcome::default(), "no repair work needed");
    }

    #[test]
    fn outcome_merges_fieldwise() {
        let mut a = MaintenanceOutcome {
            repairs_applied: 1,
            invalidations_avoided: 2,
            repair_fallbacks: 3,
            repair_tests: 4,
        };
        a.merge(&MaintenanceOutcome {
            repairs_applied: 10,
            invalidations_avoided: 20,
            repair_fallbacks: 30,
            repair_tests: 40,
        });
        assert_eq!(a.repairs_applied, 11);
        assert_eq!(a.invalidations_avoided, 22);
        assert_eq!(a.repair_fallbacks, 33);
        assert_eq!(a.repair_tests, 44);
    }

    #[test]
    fn refresh_all_covers_every_entry() {
        let mut entries = [
            entry(QueryKind::Subgraph, &[0], 2),
            entry(QueryKind::Subgraph, &[], 2),
        ];
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Del)]);
        refresh_all(entries.iter_mut(), &c, 2);
        assert!(!entries[0].cg_valid.get(0));
        assert!(!entries[1].cg_valid.get(0));
        assert!(entries[0].cg_valid.get(1));
    }
}
