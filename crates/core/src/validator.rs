//! The Cache Validator — Algorithm 2 (CON) and the EVI purge.
//!
//! On each query arrival the Dataset Manager checks whether the dataset
//! changed since the cache last synchronized. If so:
//!
//! * **EVI** clears cache and window indiscriminately — trivially safe,
//!   but it discards every still-valid result (§5.1);
//! * **CON** runs Algorithm 1 (log → per-graph counters, in `gc-dataset`)
//!   and then Algorithm 2 per cached entry: extend `CGvalid` with `false`
//!   for newly assigned ids, then for each touched graph `i` keep the bit
//!   only in the two provably-safe cases, else clear it.
//!
//! ### Polarity and the supergraph dual
//!
//! For a **subgraph-query** entry (`Answer = {G : q ⊆ G}`), Algorithm 2's
//! safe cases are:
//!
//! * all ops on `Gi` were **UA** and the cached bit is a *positive* answer
//!   (`q ⊆ Gi` is preserved by adding edges to `Gi`);
//! * all ops on `Gi` were **UR** and the cached bit is a *negative* answer
//!   (`q ⊄ Gi` is preserved by removing edges from `Gi`).
//!
//! For a **supergraph-query** entry (`Answer = {G : G ⊆ q}`) the
//! monotonicity flips (removing edges from `Gi` preserves `Gi ⊆ q`;
//! adding edges preserves `Gi ⊄ q`), so UA/UR swap roles. The paper omits
//! this dual "for space reason"; it is required for correctness as soon as
//! supergraph queries are cached, and tests exercise it.

use gc_dataset::{NetEffect, NetEffects, OpCounters};
use gc_subiso::QueryKind;

use crate::entry::CachedQuery;

/// Refreshes one entry's `CGvalid` per Algorithm 2.
///
/// `id_span` is the dataset's current `max_id + 1` (`m + 1` in the
/// paper's pseudocode).
pub fn refresh_entry(entry: &mut CachedQuery, counters: &OpCounters, id_span: usize) {
    // Lines 4–6: extend CGvalid with false bits for newly added graphs.
    // BitSet::extend_to allocates zero (false) bits, which is exactly the
    // required semantics; reads past the end are false either way.
    entry.cg_valid.extend_to(id_span);

    // Lines 7–19: apply the per-graph counters.
    for i in counters.touched() {
        if !entry.cg_valid.get(i) {
            continue; // already invalid; nothing to preserve
        }
        let answered = entry.answer.get(i);
        let keep = match entry.kind {
            QueryKind::Subgraph => {
                (counters.ua_exclusive(i) && answered) || (counters.ur_exclusive(i) && !answered)
            }
            // dual polarity for supergraph-semantics answers
            QueryKind::Supergraph => {
                (counters.ur_exclusive(i) && answered) || (counters.ua_exclusive(i) && !answered)
            }
        };
        if !keep {
            entry.cg_valid.set(i, false);
        }
    }
}

/// Refreshes a whole collection of entries (cache + window both hold
/// "cached graphs" in the paper's terminology).
pub fn refresh_all<'a, I>(entries: I, counters: &OpCounters, id_span: usize)
where
    I: IntoIterator<Item = &'a mut CachedQuery>,
{
    for e in entries {
        refresh_entry(e, counters, id_span);
    }
}

/// Retrospective variant of Algorithm 2 (the paper's §8 future-work item,
/// CON-R): instead of per-category counters, the per-graph **net edge
/// delta** decides. Changes that cancelled out preserve *all* validity;
/// residual additions/removals behave like UA/UR-exclusive; everything
/// else invalidates. Strictly at least as much validity survives as under
/// [`refresh_entry`] — property-tested in `tests/retro.rs`.
pub fn refresh_entry_retro(entry: &mut CachedQuery, effects: &NetEffects, id_span: usize) {
    entry.cg_valid.extend_to(id_span);
    for i in effects.touched() {
        if !entry.cg_valid.get(i) {
            continue;
        }
        let effect = effects.get(i).expect("touched implies present");
        let answered = entry.answer.get(i);
        let keep = match effect {
            NetEffect::Neutral => true,
            NetEffect::AddOnly => match entry.kind {
                QueryKind::Subgraph => answered,
                QueryKind::Supergraph => !answered,
            },
            NetEffect::RemoveOnly => match entry.kind {
                QueryKind::Subgraph => !answered,
                QueryKind::Supergraph => answered,
            },
            NetEffect::Invalidating => false,
        };
        if !keep {
            entry.cg_valid.set(i, false);
        }
    }
}

/// Retrospective refresh over a collection.
pub fn refresh_all_retro<'a, I>(entries: I, effects: &NetEffects, id_span: usize)
where
    I: IntoIterator<Item = &'a mut CachedQuery>,
{
    for e in entries {
        refresh_entry_retro(e, effects, id_span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_dataset::{ChangeRecord, LogAnalyzer, OpType};
    use gc_graph::{BitSet, LabeledGraph};

    fn rec(graph_id: usize, op: OpType) -> ChangeRecord {
        ChangeRecord {
            graph_id,
            op,
            edge: None,
        }
    }

    fn entry(kind: QueryKind, answer: &[usize], span: usize) -> CachedQuery {
        CachedQuery::new(
            LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap(),
            kind,
            BitSet::from_indices(answer.iter().copied()),
            span,
            0,
        )
    }

    #[test]
    fn ua_exclusive_preserves_positive_subgraph_answers() {
        // paper example: answer on G2 survives UA, non-answer on G2 dies
        let mut pos = entry(QueryKind::Subgraph, &[2], 4);
        let mut neg = entry(QueryKind::Subgraph, &[], 4);
        let c = LogAnalyzer::analyze(&[rec(2, OpType::Ua), rec(2, OpType::Ua)]);
        refresh_entry(&mut pos, &c, 4);
        refresh_entry(&mut neg, &c, 4);
        assert!(pos.cg_valid.get(2), "q ⊆ G2 unaffected by adding edges");
        assert!(!neg.cg_valid.get(2), "q ⊄ G2 may flip when edges appear");
        // untouched graphs keep validity
        assert!(pos.cg_valid.get(0) && pos.cg_valid.get(1) && pos.cg_valid.get(3));
    }

    #[test]
    fn ur_exclusive_preserves_negative_subgraph_answers() {
        let mut pos = entry(QueryKind::Subgraph, &[1], 3);
        let mut neg = entry(QueryKind::Subgraph, &[], 3);
        let c = LogAnalyzer::analyze(&[rec(1, OpType::Ur)]);
        refresh_entry(&mut pos, &c, 3);
        refresh_entry(&mut neg, &c, 3);
        assert!(!pos.cg_valid.get(1), "q ⊆ G1 may break when edges vanish");
        assert!(neg.cg_valid.get(1), "q ⊄ G1 unaffected by removing edges");
    }

    #[test]
    fn mixed_ops_invalidate_both_polarities() {
        let mut pos = entry(QueryKind::Subgraph, &[0], 1);
        let mut neg = entry(QueryKind::Subgraph, &[], 1);
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Ua), rec(0, OpType::Ur)]);
        refresh_entry(&mut pos, &c, 1);
        refresh_entry(&mut neg, &c, 1);
        assert!(!pos.cg_valid.get(0));
        assert!(!neg.cg_valid.get(0));
    }

    #[test]
    fn del_invalidates_and_add_extends_with_false() {
        // timeline mirrors Figure 2: DEL G0, ADD G4 (fresh id 4)
        let mut e = entry(QueryKind::Subgraph, &[0, 2], 4);
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Del), rec(4, OpType::Add)]);
        refresh_entry(&mut e, &c, 5);
        assert!(!e.cg_valid.get(0), "deleted graph knowledge dies");
        assert!(!e.cg_valid.get(4), "new graph unknown to old query");
        assert!(e.cg_valid.get(1) && e.cg_valid.get(2) && e.cg_valid.get(3));
    }

    #[test]
    fn supergraph_duality() {
        // supergraph entry: answer bit = G ⊆ q
        let mut pos_ur = entry(QueryKind::Supergraph, &[1], 3);
        let mut neg_ur = entry(QueryKind::Supergraph, &[], 3);
        let c_ur = LogAnalyzer::analyze(&[rec(1, OpType::Ur)]);
        refresh_entry(&mut pos_ur, &c_ur, 3);
        refresh_entry(&mut neg_ur, &c_ur, 3);
        assert!(pos_ur.cg_valid.get(1), "G ⊆ q survives G shrinking");
        assert!(!neg_ur.cg_valid.get(1), "G ⊄ q may flip when G shrinks");

        let mut pos_ua = entry(QueryKind::Supergraph, &[1], 3);
        let mut neg_ua = entry(QueryKind::Supergraph, &[], 3);
        let c_ua = LogAnalyzer::analyze(&[rec(1, OpType::Ua)]);
        refresh_entry(&mut pos_ua, &c_ua, 3);
        refresh_entry(&mut neg_ua, &c_ua, 3);
        assert!(!pos_ua.cg_valid.get(1), "G ⊆ q may break when G grows");
        assert!(neg_ua.cg_valid.get(1), "G ⊄ q survives G growing");
    }

    #[test]
    fn already_invalid_bits_stay_invalid() {
        let mut e = entry(QueryKind::Subgraph, &[0], 2);
        e.cg_valid.set(0, false);
        // UA-exclusive + positive answer would keep it — but it's already
        // invalid (CGvalid.get(i) is part of Algorithm 2's keep condition)
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Ua)]);
        refresh_entry(&mut e, &c, 2);
        assert!(!e.cg_valid.get(0));
        assert!(e.cg_valid.get(1));
    }

    #[test]
    fn figure2_full_timeline() {
        // Reproduces the running example of Figure 2 for g′:
        // dataset {G0..G3}; g′ answers {2,3}; batch 1: ADD G4 + UR G3;
        // batch 2: DEL G0 + UA G1.
        let mut g_prime = entry(QueryKind::Subgraph, &[2, 3], 4);

        let batch1 = LogAnalyzer::analyze(&[rec(4, OpType::Add), rec(3, OpType::Ur)]);
        refresh_entry(&mut g_prime, &batch1, 5);
        // paper state at T2: CGvalid = {0,1,2} (G3 lost: positive answer + UR;
        // G4 unknown)
        assert_eq!(
            g_prime.cg_valid.iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );

        let batch2 = LogAnalyzer::analyze(&[rec(0, OpType::Del), rec(1, OpType::Ua)]);
        refresh_entry(&mut g_prime, &batch2, 5);
        // paper state at T4 (row for g′): valid only on G2
        // (G0 deleted; G1 was a negative answer hit by UA)
        assert_eq!(g_prime.cg_valid.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn retro_neutral_preserves_everything() {
        use gc_dataset::RetroAnalyzer;
        // UA then UR of the same edge: Algorithm 2 invalidates, CON-R keeps
        let mut plain = entry(QueryKind::Subgraph, &[0], 2);
        let mut retro = entry(QueryKind::Subgraph, &[0], 2);
        let records = [
            ChangeRecord::edge(0, OpType::Ua, 1, 2),
            ChangeRecord::edge(0, OpType::Ur, 1, 2),
        ];
        refresh_entry(&mut plain, &LogAnalyzer::analyze(&records), 2);
        refresh_entry_retro(&mut retro, &RetroAnalyzer::analyze(&records), 2);
        assert!(!plain.cg_valid.get(0), "CON loses the oscillated graph");
        assert!(retro.cg_valid.get(0), "CON-R keeps it");
    }

    #[test]
    fn retro_residuals_match_polarity_rules() {
        use gc_dataset::RetroAnalyzer;
        // net add: positive subgraph answers survive, negatives don't
        let records = [
            ChangeRecord::edge(1, OpType::Ua, 0, 1),
            ChangeRecord::edge(1, OpType::Ua, 2, 3),
            ChangeRecord::edge(1, OpType::Ur, 2, 3),
        ];
        let eff = RetroAnalyzer::analyze(&records);
        let mut pos = entry(QueryKind::Subgraph, &[1], 2);
        let mut neg = entry(QueryKind::Subgraph, &[], 2);
        refresh_entry_retro(&mut pos, &eff, 2);
        refresh_entry_retro(&mut neg, &eff, 2);
        assert!(pos.cg_valid.get(1));
        assert!(!neg.cg_valid.get(1));
        // supergraph dual flips
        let mut sup_pos = entry(QueryKind::Supergraph, &[1], 2);
        let mut sup_neg = entry(QueryKind::Supergraph, &[], 2);
        refresh_entry_retro(&mut sup_pos, &eff, 2);
        refresh_entry_retro(&mut sup_neg, &eff, 2);
        assert!(!sup_pos.cg_valid.get(1));
        assert!(sup_neg.cg_valid.get(1));
    }

    #[test]
    fn retro_structural_still_invalidates() {
        use gc_dataset::RetroAnalyzer;
        let mut e = entry(QueryKind::Subgraph, &[0], 2);
        let eff = RetroAnalyzer::analyze(&[ChangeRecord::structural(0, OpType::Del)]);
        refresh_entry_retro(&mut e, &eff, 2);
        assert!(!e.cg_valid.get(0));
        assert!(e.cg_valid.get(1));
    }

    #[test]
    fn refresh_all_covers_every_entry() {
        let mut entries = [
            entry(QueryKind::Subgraph, &[0], 2),
            entry(QueryKind::Subgraph, &[], 2),
        ];
        let c = LogAnalyzer::analyze(&[rec(0, OpType::Del)]);
        refresh_all(entries.iter_mut(), &c, 2);
        assert!(!entries[0].cg_valid.get(0));
        assert!(!entries[1].cg_valid.get(0));
        assert!(entries[0].cg_valid.get(1));
    }
}
