//! Per-query and aggregate metrics — the quantities behind Figures 4–6
//! and the §7.2 insight statistics.
//!
//! The paper reports, per configuration:
//!
//! * **query time** (Figure 4, 6) — wall time of query execution: hit
//!   discovery + candidate pruning + Method M verification;
//! * **overhead** (Figure 6) — cache maintenance off the answer's critical
//!   path: updating Window/Cache stores, replacement, re-indexing; for CON
//!   additionally log analysis + cache validation (tracked separately to
//!   reproduce the "<1% of CON overhead" claim);
//! * **number of sub-iso tests** (Figure 5) — Method M tests actually
//!   executed, deterministic and Method-M-independent;
//! * **hit breakdown** (§7.2 insights) — exact-match hits vs zero-test
//!   exact matches, direct/exclusion (sub/super) hits.

use std::time::Duration;

use gc_subiso::Interrupt;
use gc_telemetry::StageSpans;

/// Cache-hit classification for one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitBreakdown {
    /// Direct hits used (formula (1) contributors).
    pub direct_hits: u32,
    /// Exclusion hits used (formula (5) contributors).
    pub exclusion_hits: u32,
    /// An isomorphic cached query existed.
    pub exact_match: bool,
    /// §6.3 optimal case 1 fired (exact match, zero tests).
    pub exact_shortcut: bool,
    /// §6.3 optimal case 2 fired (provably empty answer, zero tests).
    pub empty_shortcut: bool,
}

impl HitBreakdown {
    /// Did the cache contribute to this query at all — either a usable
    /// hit (direct/exclusion) or one of the §6.3 shortcuts? Used by the
    /// sharded deployment's per-shard hit/miss counters.
    pub fn is_hit(&self) -> bool {
        self.direct_hits > 0
            || self.exclusion_hits > 0
            || self.exact_match
            || self.exact_shortcut
            || self.empty_shortcut
    }
}

/// Everything measured about one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Wall time on the answer's critical path.
    pub query_time: Duration,
    /// Cache-maintenance wall time (validation + admission/replacement).
    pub overhead_time: Duration,
    /// CON-specific share of `overhead_time`: Algorithm 1 + Algorithm 2.
    pub validation_time: Duration,
    /// Sub-iso tests Method M executed for this query.
    pub subiso_tests: u64,
    /// Of `subiso_tests`, candidates decided negatively by Method M's O(1)
    /// signature pre-filter without running the matcher.
    pub prefilter_skips: u64,
    /// Tests avoided thanks to the cache (`|CS_M| - tests executed`).
    pub tests_saved: u64,
    /// `|CS_M|` before pruning.
    pub candidate_size: u64,
    /// Hit classification.
    pub hits: HitBreakdown,
    /// `Some(interrupt)` iff the query did **not** run to completion
    /// (budget exhausted or a panic was contained) and the answer is a
    /// sound *partial* result — verified positives only, never admitted to
    /// the cache. `None` means the answer is exact (Theorems 3/6 hold).
    pub degraded: Option<Interrupt>,
    /// Worker panics contained while executing this query.
    pub panics_recovered: u64,
    /// Answer bits the maintenance pass spliced back to ground truth in
    /// place (delta repair) during this query's consistency refresh.
    pub repairs_applied: u64,
    /// Validity bits preserved that invalidate-mode maintenance would have
    /// cleared — the recomputations the repair path avoided.
    pub invalidations_avoided: u64,
    /// Affected bits the repair path had to invalidate after all because
    /// its per-pass test budget was exhausted.
    pub repair_fallbacks: u64,
    /// Per-stage pipeline wall time for this query. All-zero unless the
    /// system ran with [`GcConfig::trace`](crate::GcConfig::trace) on.
    pub spans: StageSpans,
}

/// Running aggregation over a workload.
#[derive(Debug, Clone, Default)]
pub struct AggregateMetrics {
    /// Queries recorded.
    pub queries: u64,
    /// Sum of query times.
    pub total_query_time: Duration,
    /// Sum of overhead times.
    pub total_overhead_time: Duration,
    /// Sum of CON-specific validation times.
    pub total_validation_time: Duration,
    /// Sum of executed sub-iso tests.
    pub total_tests: u64,
    /// Sum of pre-filter-decided candidates across queries.
    pub total_prefilter_skips: u64,
    /// Sum of avoided sub-iso tests.
    pub total_tests_saved: u64,
    /// Queries that executed zero sub-iso tests.
    pub zero_test_queries: u64,
    /// Queries for which an isomorphic cached query existed.
    pub exact_match_queries: u64,
    /// Queries answered by §6.3 optimal case 1.
    pub exact_shortcuts: u64,
    /// Queries answered by §6.3 optimal case 2.
    pub empty_shortcuts: u64,
    /// Total direct hits used.
    pub direct_hits: u64,
    /// Total exclusion hits used.
    pub exclusion_hits: u64,
    /// Queries that returned an explicitly tagged partial (degraded)
    /// answer instead of the exact one.
    pub degraded_queries: u64,
    /// Worker panics contained across all recorded queries.
    pub panics_recovered: u64,
    /// Total answer bits delta-repaired in place by maintenance.
    pub repairs_applied: u64,
    /// Total validity bits preserved that invalidation would have cleared.
    pub invalidations_avoided: u64,
    /// Total repair-budget exhaustions that fell back to invalidation.
    pub repair_fallbacks: u64,
    /// Per-stage pipeline wall time summed over all recorded queries
    /// (all-zero when tracing is off).
    pub span_totals: StageSpans,
}

impl AggregateMetrics {
    /// Folds one query's metrics into the aggregate.
    pub fn record(&mut self, m: &QueryMetrics) {
        self.queries += 1;
        self.total_query_time += m.query_time;
        self.total_overhead_time += m.overhead_time;
        self.total_validation_time += m.validation_time;
        self.total_tests += m.subiso_tests;
        self.total_prefilter_skips += m.prefilter_skips;
        self.total_tests_saved += m.tests_saved;
        if m.subiso_tests == 0 {
            self.zero_test_queries += 1;
        }
        if m.hits.exact_match {
            self.exact_match_queries += 1;
        }
        if m.hits.exact_shortcut {
            self.exact_shortcuts += 1;
        }
        if m.hits.empty_shortcut {
            self.empty_shortcuts += 1;
        }
        self.direct_hits += m.hits.direct_hits as u64;
        self.exclusion_hits += m.hits.exclusion_hits as u64;
        if m.degraded.is_some() {
            self.degraded_queries += 1;
        }
        self.panics_recovered += m.panics_recovered;
        self.repairs_applied += m.repairs_applied;
        self.invalidations_avoided += m.invalidations_avoided;
        self.repair_fallbacks += m.repair_fallbacks;
        self.span_totals.merge(&m.spans);
    }

    /// Average query time in milliseconds.
    pub fn avg_query_time_ms(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.total_query_time.as_secs_f64() * 1e3 / self.queries as f64
    }

    /// Average overhead per query in milliseconds.
    pub fn avg_overhead_ms(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.total_overhead_time.as_secs_f64() * 1e3 / self.queries as f64
    }

    /// Average sub-iso tests per query.
    pub fn avg_tests(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.total_tests as f64 / self.queries as f64
    }

    /// Share of CON-specific validation inside total overhead (the paper
    /// reports it is "less than 1%").
    pub fn validation_share_of_overhead(&self) -> f64 {
        let o = self.total_overhead_time.as_secs_f64();
        if o == 0.0 {
            return 0.0;
        }
        self.total_validation_time.as_secs_f64() / o
    }
}

/// Speedup of `base` over `with_cache` for a chosen measure (paper:
/// "ratio of the average performance of the base Method M over the average
/// performance of GC+"; > 1 means GC+ improves on the base).
pub fn speedup(base: f64, with_cache: f64) -> f64 {
    if with_cache == 0.0 {
        return f64::INFINITY;
    }
    base / with_cache
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(tests: u64, q_ms: u64, o_ms: u64) -> QueryMetrics {
        QueryMetrics {
            query_time: Duration::from_millis(q_ms),
            overhead_time: Duration::from_millis(o_ms),
            validation_time: Duration::from_micros(o_ms * 5),
            subiso_tests: tests,
            prefilter_skips: tests / 2,
            tests_saved: 10 - tests.min(10),
            candidate_size: 10,
            hits: HitBreakdown {
                direct_hits: 1,
                exclusion_hits: 2,
                exact_match: tests == 0,
                exact_shortcut: tests == 0,
                empty_shortcut: false,
            },
            ..QueryMetrics::default()
        }
    }

    #[test]
    fn aggregation_sums_and_averages() {
        let mut agg = AggregateMetrics::default();
        agg.record(&metrics(10, 100, 4));
        agg.record(&metrics(0, 10, 2));
        assert_eq!(agg.queries, 2);
        assert_eq!(agg.total_tests, 10);
        assert_eq!(agg.total_prefilter_skips, 5);
        assert_eq!(agg.zero_test_queries, 1);
        assert_eq!(agg.exact_match_queries, 1);
        assert_eq!(agg.exact_shortcuts, 1);
        assert_eq!(agg.direct_hits, 2);
        assert_eq!(agg.exclusion_hits, 4);
        assert!((agg.avg_query_time_ms() - 55.0).abs() < 1e-9);
        assert!((agg.avg_overhead_ms() - 3.0).abs() < 1e-9);
        assert!((agg.avg_tests() - 5.0).abs() < 1e-9);
        assert!(agg.validation_share_of_overhead() > 0.0);
    }

    #[test]
    fn empty_aggregate_is_zero() {
        let agg = AggregateMetrics::default();
        assert_eq!(agg.avg_query_time_ms(), 0.0);
        assert_eq!(agg.avg_tests(), 0.0);
        assert_eq!(agg.validation_share_of_overhead(), 0.0);
    }

    #[test]
    fn degraded_and_panic_counters_fold() {
        let mut agg = AggregateMetrics::default();
        let mut m = metrics(3, 1, 1);
        m.degraded = Some(Interrupt::Deadline);
        m.panics_recovered = 2;
        agg.record(&m);
        agg.record(&metrics(1, 1, 1));
        assert_eq!(agg.degraded_queries, 1);
        assert_eq!(agg.panics_recovered, 2);
    }

    #[test]
    fn maintenance_counters_fold() {
        let mut agg = AggregateMetrics::default();
        let mut m = metrics(2, 1, 1);
        m.repairs_applied = 3;
        m.invalidations_avoided = 5;
        m.repair_fallbacks = 1;
        agg.record(&m);
        agg.record(&m);
        assert_eq!(agg.repairs_applied, 6);
        assert_eq!(agg.invalidations_avoided, 10);
        assert_eq!(agg.repair_fallbacks, 2);
    }

    #[test]
    fn hit_breakdown_classification() {
        assert!(!HitBreakdown::default().is_hit());
        for set in [
            HitBreakdown {
                direct_hits: 1,
                ..HitBreakdown::default()
            },
            HitBreakdown {
                exclusion_hits: 1,
                ..HitBreakdown::default()
            },
            HitBreakdown {
                exact_match: true,
                ..HitBreakdown::default()
            },
            HitBreakdown {
                empty_shortcut: true,
                ..HitBreakdown::default()
            },
        ] {
            assert!(set.is_hit(), "{set:?}");
        }
    }

    #[test]
    fn span_totals_accumulate_across_queries() {
        use gc_telemetry::Stage;
        let mut agg = AggregateMetrics::default();
        let mut m = metrics(2, 1, 1);
        m.spans.record(Stage::HitProbe, 100);
        m.spans.record(Stage::Verify, 40);
        agg.record(&m);
        agg.record(&m);
        assert_eq!(agg.span_totals.get(Stage::HitProbe), 200);
        assert_eq!(agg.span_totals.get(Stage::Verify), 80);
        assert_eq!(agg.span_totals.get(Stage::Audit), 0);
    }

    #[test]
    fn speedup_definition() {
        assert_eq!(speedup(100.0, 20.0), 5.0);
        assert_eq!(speedup(10.0, 0.0), f64::INFINITY);
        assert!(speedup(10.0, 20.0) < 1.0);
    }
}
