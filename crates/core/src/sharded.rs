//! A sharded (decentralized) GC+ — the paper's §8 future-work item
//! "developing a distributed/decentralized version of GC+", simulated as
//! N independent GC+ instances each owning a dataset partition.
//!
//! Design (shared-nothing, the shape a scale-out deployment would take):
//!
//! * the dataset is partitioned round-robin over `n` shards; each shard
//!   runs a complete GC+ (own cache, window, change log, validity
//!   machinery) over its partition;
//! * a *global id* identifies each graph across the deployment; the router
//!   maintains the global↔(shard, local) mapping — local stores never see
//!   global ids, so all per-shard bitset indexing stays dense;
//! * queries fan out to every shard (optionally on scoped threads — the
//!   answer is a union, so shards need no coordination); answers are
//!   translated back to global ids and unioned;
//! * dataset changes route to the owning shard (ADD: round-robin).
//!
//! Because subgraph/supergraph answers distribute over disjoint dataset
//! unions, the sharded answer is exactly the single-instance answer —
//! asserted by `tests` below and the cross-crate suite.

use std::panic::{catch_unwind, AssertUnwindSafe};

use gc_dataset::{ChangeOp, DatasetError};
use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::{Interrupt, QueryKind};

use crate::config::GcConfig;
use crate::fault::HealthSnapshot;
use crate::metrics::QueryMetrics;
use crate::system::{GraphCachePlus, QueryOutcome};

/// Global graph identifier in a sharded deployment.
pub type GlobalId = usize;

/// A round-robin sharded GC+ deployment.
pub struct ShardedGraphCache {
    shards: Vec<GraphCachePlus>,
    /// global id → (shard, local id); `None` once deleted.
    routing: Vec<Option<(usize, usize)>>,
    /// reverse map per shard: local id → global id.
    reverse: Vec<Vec<GlobalId>>,
    next_shard: usize,
    parallel_fanout: bool,
}

impl ShardedGraphCache {
    /// Partitions `initial` round-robin over `shard_count` shards, each
    /// running GC+ with the given configuration.
    pub fn new(config: GcConfig, initial: Vec<LabeledGraph>, shard_count: usize) -> Self {
        assert!(shard_count >= 1, "need at least one shard");
        let mut partitions: Vec<Vec<LabeledGraph>> = vec![Vec::new(); shard_count];
        let mut routing = Vec::with_capacity(initial.len());
        let mut reverse: Vec<Vec<GlobalId>> = vec![Vec::new(); shard_count];
        for (global, g) in initial.into_iter().enumerate() {
            let shard = global % shard_count;
            let local = partitions[shard].len();
            partitions[shard].push(g);
            routing.push(Some((shard, local)));
            reverse[shard].push(global);
        }
        ShardedGraphCache {
            shards: partitions
                .into_iter()
                .map(|p| GraphCachePlus::new(config, p))
                .collect(),
            routing,
            reverse,
            next_shard: 0,
            parallel_fanout: false,
        }
    }

    /// Enables threaded query fan-out (one scoped thread per shard).
    pub fn with_parallel_fanout(mut self, enabled: bool) -> Self {
        self.parallel_fanout = enabled;
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total live graphs across shards.
    pub fn live_count(&self) -> usize {
        self.shards.iter().map(|s| s.store().live_count()).sum()
    }

    /// Applies a change, routing it to the owning shard. Returns the
    /// global id affected (for ADD: the fresh global id).
    pub fn apply(&mut self, op: ChangeOp) -> Result<GlobalId, DatasetError> {
        match op {
            ChangeOp::Add(g) => {
                let shard = self.next_shard;
                self.next_shard = (self.next_shard + 1) % self.shards.len();
                let local = self.shards[shard].apply(ChangeOp::Add(g))?;
                let global = self.routing.len();
                self.routing.push(Some((shard, local)));
                debug_assert_eq!(self.reverse[shard].len(), local);
                self.reverse[shard].push(global);
                Ok(global)
            }
            ChangeOp::Del(global) => {
                let (shard, local) = self.locate(global)?;
                self.shards[shard].apply(ChangeOp::Del(local))?;
                self.routing[global] = None;
                Ok(global)
            }
            ChangeOp::Ua { id, u, v } => {
                let (shard, local) = self.locate(id)?;
                self.shards[shard].apply(ChangeOp::Ua { id: local, u, v })?;
                Ok(id)
            }
            ChangeOp::Ur { id, u, v } => {
                let (shard, local) = self.locate(id)?;
                self.shards[shard].apply(ChangeOp::Ur { id: local, u, v })?;
                Ok(id)
            }
        }
    }

    fn locate(&self, global: GlobalId) -> Result<(usize, usize), DatasetError> {
        self.routing
            .get(global)
            .copied()
            .flatten()
            .ok_or(DatasetError::NoSuchGraph(global))
    }

    /// Fetches a live graph by global id.
    pub fn get(&self, global: GlobalId) -> Option<&LabeledGraph> {
        let (shard, local) = self.locate(global).ok()?;
        self.shards[shard].store().get(local)
    }

    /// Executes a query on every shard and unions the translated answers.
    /// Metrics are summed across shards (tests, saved tests) with the
    /// slowest shard's query time (the deployment's critical path).
    ///
    /// **Panic isolation:** each shard runs behind its own panic boundary
    /// (via [`GraphCachePlus::execute_isolated`]). A failing shard
    /// quarantines its own suspect entries and retries; in the worst case
    /// it contributes an explicitly degraded empty partial — tagged in the
    /// unioned metrics — instead of taking the whole deployment down.
    pub fn execute(&mut self, query: &LabeledGraph, kind: QueryKind) -> QueryOutcome {
        // a shard slot that fails beyond recovery yields a degraded empty
        // outcome: sound (contributes no answers) and explicitly tagged
        let degraded_slot = || QueryOutcome {
            answer: BitSet::new(),
            metrics: QueryMetrics {
                degraded: Some(Interrupt::Panic),
                ..QueryMetrics::default()
            },
        };
        let outcomes: Vec<QueryOutcome> = if self.parallel_fanout && self.shards.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .map(|s| scope.spawn(move || s.execute_isolated(query, kind)))
                    .collect();
                handles
                    .into_iter()
                    // execute_isolated contains all panics, so a join
                    // failure should be unreachable; degrade rather than
                    // cascade if it ever happens
                    .map(|h| h.join().unwrap_or_else(|_| degraded_slot()))
                    .collect()
            })
        } else {
            self.shards
                .iter_mut()
                .map(|s| {
                    catch_unwind(AssertUnwindSafe(|| s.execute_isolated(query, kind)))
                        .unwrap_or_else(|_| degraded_slot())
                })
                .collect()
        };

        let mut answer = BitSet::new();
        let mut metrics = QueryMetrics::default();
        for (shard, out) in outcomes.iter().enumerate() {
            for local in out.answer.iter_ones() {
                answer.set(self.reverse[shard][local], true);
            }
            metrics.subiso_tests += out.metrics.subiso_tests;
            metrics.tests_saved += out.metrics.tests_saved;
            metrics.candidate_size += out.metrics.candidate_size;
            metrics.query_time = metrics.query_time.max(out.metrics.query_time);
            metrics.overhead_time += out.metrics.overhead_time;
            metrics.validation_time += out.metrics.validation_time;
            metrics.panics_recovered += out.metrics.panics_recovered;
            if metrics.degraded.is_none() {
                // one degraded shard degrades the unioned outcome: the
                // union may be missing that shard's share of the answer
                metrics.degraded = out.metrics.degraded;
            }
        }
        QueryOutcome { answer, metrics }
    }

    /// Sums the fault-tolerance counters across all shards.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        let mut total = HealthSnapshot::default();
        for s in &self.shards {
            let h = s.health_snapshot();
            total.panics_recovered += h.panics_recovered;
            total.quarantined_entries += h.quarantined_entries;
            total.degraded_queries += h.degraded_queries;
            total.audit_repairs += h.audit_repairs;
            total.audit_evictions += h.audit_evictions;
        }
        total
    }

    /// Entries currently under quarantine across all shards.
    pub fn quarantined_entries(&self) -> usize {
        self.shards.iter().map(|s| s.quarantined_entries()).sum()
    }

    /// Runs the consistency auditor on every shard (repair mode), folding
    /// the per-shard reports. Shard `i` audits with seed `seed + i` so
    /// samples stay deterministic but uncorrelated.
    pub fn audit(&mut self, sample_rate: f64, seed: u64) -> crate::system::AuditReport {
        let mut total = crate::system::AuditReport::default();
        for (i, s) in self.shards.iter_mut().enumerate() {
            let r = s.audit(sample_rate, seed.wrapping_add(i as u64));
            total.sampled += r.sampled;
            total.clean += r.clean;
            total.repaired += r.repaired;
            total.evicted += r.evicted;
        }
        total
    }

    /// Installs fault injectors per shard (chaos testing); shard `i` gets
    /// `make(i)`.
    pub fn set_fault_injectors(
        &mut self,
        mut make: impl FnMut(usize) -> Option<std::sync::Arc<crate::fault::FaultInjector>>,
    ) {
        for (i, s) in self.shards.iter_mut().enumerate() {
            if let Some(inj) = make(i) {
                s.set_fault_injector(inj);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::generate::random_connected_graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<LabeledGraph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let v = rng.random_range(4..10usize);
                random_connected_graph(&mut rng, v, 2, |r| r.random_range(0..3u16))
            })
            .collect()
    }

    fn query(data: &[LabeledGraph], seed: u64) -> LabeledGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        gc_graph::generate::bfs_extract(&mut rng, &data[0], 0, 3).expect("extractable")
    }

    #[test]
    fn sharded_answers_equal_single_instance() {
        let data = dataset(23, 1);
        let q = query(&data, 2);
        let mut single = GraphCachePlus::new(GcConfig::default(), data.clone());
        for shards in [1usize, 2, 3, 5] {
            let mut sharded = ShardedGraphCache::new(GcConfig::default(), data.clone(), shards);
            assert_eq!(sharded.shard_count(), shards);
            let got = sharded.execute(&q, QueryKind::Subgraph);
            let expected = single.execute(&q, QueryKind::Subgraph);
            assert_eq!(got.answer, expected.answer, "{shards} shards");
        }
    }

    #[test]
    fn changes_route_correctly() {
        let data = dataset(10, 3);
        let mut sharded = ShardedGraphCache::new(GcConfig::default(), data.clone(), 3);
        assert_eq!(sharded.live_count(), 10);

        // delete global 4, add a new graph, flip an edge on global 7
        sharded.apply(ChangeOp::Del(4)).unwrap();
        assert_eq!(sharded.live_count(), 9);
        assert!(sharded.get(4).is_none());
        assert!(matches!(
            sharded.apply(ChangeOp::Del(4)),
            Err(DatasetError::NoSuchGraph(4))
        ));

        let new_global = sharded.apply(ChangeOp::Add(data[0].clone())).unwrap();
        assert_eq!(new_global, 10);
        assert_eq!(sharded.live_count(), 10);
        assert!(sharded.get(10).is_some());

        let g7 = sharded.get(7).expect("live").clone();
        let (u, v) = g7.edges().next().expect("has edges");
        sharded.apply(ChangeOp::Ur { id: 7, u, v }).unwrap();
        assert!(!sharded.get(7).expect("live").has_edge(u, v));
    }

    #[test]
    fn sharded_stays_exact_under_churn() {
        let data = dataset(18, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut sharded =
            ShardedGraphCache::new(GcConfig::default(), data.clone(), 3).with_parallel_fanout(true);
        // mirror state in a flat store for ground truth
        let mut flat = GraphCachePlus::new(GcConfig::default(), data.clone());

        for step in 0..40 {
            if step % 5 == 4 {
                let global = rng.random_range(0..data.len());
                if sharded.get(global).is_some() {
                    let g = sharded.get(global).expect("live").clone();
                    let first_edge = g.edges().next();
                    if let Some((u, v)) = first_edge {
                        sharded.apply(ChangeOp::Ur { id: global, u, v }).unwrap();
                        flat.apply(ChangeOp::Ur { id: global, u, v }).unwrap();
                    }
                }
            }
            let q = query(&data, 100 + step);
            let got = sharded.execute(&q, QueryKind::Subgraph);
            let expected = flat.execute(&q, QueryKind::Subgraph);
            assert_eq!(got.answer, expected.answer, "step {step}");
            // fan-out runs the union of all shard candidate sets
            assert_eq!(got.metrics.candidate_size, expected.metrics.candidate_size);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedGraphCache::new(GcConfig::default(), Vec::new(), 0);
    }

    #[test]
    fn panicking_shard_is_contained() {
        use crate::fault::FaultInjector;
        use std::sync::Arc;
        let data = dataset(12, 9);
        let q = query(&data, 10);
        let mut oracle = GraphCachePlus::new(GcConfig::default(), data.clone());
        let expected = oracle.execute(&q, QueryKind::Subgraph).answer;
        for fanout in [false, true] {
            let mut sharded = ShardedGraphCache::new(GcConfig::default(), data.clone(), 3)
                .with_parallel_fanout(fanout);
            // shard 1 panics on its first query; the other shards are clean
            sharded.set_fault_injectors(|i| {
                (i == 1).then(|| Arc::new(FaultInjector::new("panic-query@1".parse().unwrap())))
            });
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let out = sharded.execute(&q, QueryKind::Subgraph);
            std::panic::set_hook(prev);
            assert_eq!(out.answer, expected, "fanout={fanout}");
            assert!(out.metrics.degraded.is_none(), "retry recovered exactly");
            assert_eq!(out.metrics.panics_recovered, 1);
            assert_eq!(sharded.health_snapshot().panics_recovered, 1);
            // auditing clears whatever the recovery quarantined
            sharded.audit(1.0, 5);
            assert_eq!(sharded.quarantined_entries(), 0);
        }
    }
}
