//! A sharded (decentralized) GC+ — the paper's §8 future-work item
//! "developing a distributed/decentralized version of GC+", simulated as
//! N independent GC+ instances each owning a dataset partition.
//!
//! Design (shared-nothing, the shape a scale-out deployment would take):
//!
//! * the dataset is partitioned round-robin over `n` shards; each shard
//!   runs a complete GC+ (own cache, window, change log, validity
//!   machinery) over its partition;
//! * a *global id* identifies each graph across the deployment; the router
//!   maintains the global↔(shard, local) mapping — local stores never see
//!   global ids, so all per-shard bitset indexing stays dense;
//! * queries fan out to every shard (optionally on scoped threads — the
//!   answer is a union, so shards need no coordination); answers are
//!   translated back to global ids and unioned;
//! * dataset changes route to the owning shard (ADD: round-robin).
//!
//! Because subgraph/supergraph answers distribute over disjoint dataset
//! unions, the sharded answer is exactly the single-instance answer —
//! asserted by `tests` below and the cross-crate suite.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gc_dataset::{ChangeOp, DatasetError};
use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::{Interrupt, MethodM, QueryKind};
use gc_telemetry::{Counter, StageSpans};

use crate::config::GcConfig;
use crate::fault::{HealthSnapshot, QueryBudget, RuntimeHealth};
use crate::metrics::QueryMetrics;
use crate::system::{GraphCachePlus, QueryOutcome};

/// Global graph identifier in a sharded deployment.
pub type GlobalId = usize;

/// A shard whose worker panics this many times is failed over: marked
/// unhealthy and served by cache-less baseline until the auditor clears
/// its quarantine.
pub const PANIC_FAILOVER_THRESHOLD: u32 = 2;

/// How long a stalled shard's slot blocks when the query carries no
/// deadline — a stall must never hang an unlimited-budget request forever.
const STALL_FALLBACK: Duration = Duration::from_millis(100);

/// Router-level view of one shard's availability.
#[derive(Debug, Clone, Copy)]
struct ShardState {
    /// Panics this shard's worker has recovered from since it last
    /// rejoined; reaching [`PANIC_FAILOVER_THRESHOLD`] fails it over.
    panics: u32,
    /// Healthy shards serve through their GC+ cache; unhealthy shards are
    /// served by cache-less baseline (answers stay exact, just slower).
    healthy: bool,
    /// A stalled shard burns the query's remaining deadline and degrades
    /// (chaos-injected; mirrors a network partition to that shard).
    stalled: bool,
}

impl Default for ShardState {
    fn default() -> Self {
        ShardState {
            panics: 0,
            healthy: true,
            stalled: false,
        }
    }
}

/// A [`QueryOutcome`] plus how the router produced it.
#[derive(Debug)]
pub struct RoutedOutcome {
    pub outcome: QueryOutcome,
    /// Shards whose slice of the answer came from cache-less baseline
    /// because the shard is failed over.
    pub baseline_shards: u32,
}

/// Always-on per-shard cache-effectiveness counters (relaxed atomics —
/// safe to share with the serving layer via [`stats_handle`]).
///
/// `hits + misses` advances by exactly one per query the shard *executed*,
/// which is what lets a scrape reconcile against an external request
/// ledger. Shed requests (rejected before execution) count separately.
///
/// [`stats_handle`]: ShardedGraphCache::stats_handle
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Queries where this shard's cache contributed (any hit kind).
    pub hits: Counter,
    /// Queries this shard executed without any cache contribution
    /// (including baseline-served and stalled slots).
    pub misses: Counter,
    /// Requests shed before reaching this shard (serving-layer
    /// backpressure; incremented by the service, not the router).
    pub shed: Counter,
}

/// Point-in-time copy of one shard's counters plus its live gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    /// Cache-contributing queries (see [`ShardStats::hits`]).
    pub hits: u64,
    /// Cache-less executed queries.
    pub misses: u64,
    /// Cache evictions since the shard started.
    pub evictions: u64,
    /// Entries currently under quarantine (a gauge, not a counter).
    pub quarantined: u64,
    /// Requests shed by the serving layer.
    pub shed: u64,
}

impl ShardStatsSnapshot {
    /// Field-wise sum (quarantined is a gauge but sums meaningfully into
    /// "entries quarantined across the deployment").
    pub fn merge(&mut self, other: &ShardStatsSnapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.quarantined += other.quarantined;
        self.shed += other.shed;
    }
}

/// A round-robin sharded GC+ deployment.
pub struct ShardedGraphCache {
    shards: Vec<GraphCachePlus>,
    /// global id → (shard, local id); `None` once deleted.
    routing: Vec<Option<(usize, usize)>>,
    /// reverse map per shard: local id → global id.
    reverse: Vec<Vec<GlobalId>>,
    next_shard: usize,
    parallel_fanout: bool,
    config: GcConfig,
    states: Vec<ShardState>,
    /// Routing-layer counters (load shed, failovers, baseline serves) —
    /// shard-internal counters live on each shard's own health.
    router_health: RuntimeHealth,
    /// Always-on per-shard hit/miss/shed counters, shareable with the
    /// serving layer (which increments `shed` without the cache lock).
    stats: Arc<Vec<ShardStats>>,
}

impl ShardedGraphCache {
    /// Partitions `initial` round-robin over `shard_count` shards, each
    /// running GC+ with the given configuration. A zero shard count is a
    /// caller bug (asserted in debug builds) and clamps to one shard.
    pub fn new(config: GcConfig, initial: Vec<LabeledGraph>, shard_count: usize) -> Self {
        debug_assert!(shard_count >= 1, "need at least one shard");
        let shard_count = shard_count.max(1);
        let mut partitions: Vec<Vec<LabeledGraph>> = vec![Vec::new(); shard_count];
        let mut routing = Vec::with_capacity(initial.len());
        let mut reverse: Vec<Vec<GlobalId>> = vec![Vec::new(); shard_count];
        for (global, g) in initial.into_iter().enumerate() {
            let shard = global % shard_count;
            let local = partitions[shard].len();
            partitions[shard].push(g);
            routing.push(Some((shard, local)));
            reverse[shard].push(global);
        }
        ShardedGraphCache {
            shards: partitions
                .into_iter()
                .map(|p| GraphCachePlus::new(config, p))
                .collect(),
            routing,
            reverse,
            next_shard: 0,
            parallel_fanout: false,
            config,
            states: vec![ShardState::default(); shard_count],
            router_health: RuntimeHealth::default(),
            stats: Arc::new((0..shard_count).map(|_| ShardStats::default()).collect()),
        }
    }

    /// Enables threaded query fan-out (one scoped thread per shard).
    pub fn with_parallel_fanout(mut self, enabled: bool) -> Self {
        self.parallel_fanout = enabled;
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configuration every shard runs with.
    pub fn config(&self) -> &GcConfig {
        &self.config
    }

    /// Total live graphs across shards.
    pub fn live_count(&self) -> usize {
        self.shards.iter().map(|s| s.store().live_count()).sum()
    }

    /// Applies a change, routing it to the owning shard. Returns the
    /// global id affected (for ADD: the fresh global id).
    pub fn apply(&mut self, op: ChangeOp) -> Result<GlobalId, DatasetError> {
        match op {
            ChangeOp::Add(g) => {
                let shard = self.next_shard;
                self.next_shard = (self.next_shard + 1) % self.shards.len();
                let local = self.shards[shard].apply(ChangeOp::Add(g))?;
                let global = self.routing.len();
                self.routing.push(Some((shard, local)));
                debug_assert_eq!(self.reverse[shard].len(), local);
                self.reverse[shard].push(global);
                Ok(global)
            }
            ChangeOp::Del(global) => {
                let (shard, local) = self.locate(global)?;
                self.shards[shard].apply(ChangeOp::Del(local))?;
                self.routing[global] = None;
                Ok(global)
            }
            ChangeOp::Ua { id, u, v } => {
                let (shard, local) = self.locate(id)?;
                self.shards[shard].apply(ChangeOp::Ua { id: local, u, v })?;
                Ok(id)
            }
            ChangeOp::Ur { id, u, v } => {
                let (shard, local) = self.locate(id)?;
                self.shards[shard].apply(ChangeOp::Ur { id: local, u, v })?;
                Ok(id)
            }
        }
    }

    fn locate(&self, global: GlobalId) -> Result<(usize, usize), DatasetError> {
        self.routing
            .get(global)
            .copied()
            .flatten()
            .ok_or(DatasetError::NoSuchGraph(global))
    }

    /// Fetches a live graph by global id.
    pub fn get(&self, global: GlobalId) -> Option<&LabeledGraph> {
        let (shard, local) = self.locate(global).ok()?;
        self.shards[shard].store().get(local)
    }

    /// Executes a query on every shard and unions the translated answers.
    /// Metrics are summed across shards (tests, saved tests) with the
    /// slowest shard's query time (the deployment's critical path).
    ///
    /// **Panic isolation:** each shard runs behind its own panic boundary
    /// (via [`GraphCachePlus::execute_isolated`]). A failing shard
    /// quarantines its own suspect entries and retries; in the worst case
    /// it contributes an explicitly degraded empty partial — tagged in the
    /// unioned metrics — instead of taking the whole deployment down.
    pub fn execute(&mut self, query: &LabeledGraph, kind: QueryKind) -> QueryOutcome {
        self.execute_deadline(query, kind, self.config.budget)
            .outcome
    }

    /// [`execute`](Self::execute) under an explicit per-request budget,
    /// with failover-aware routing. The deadline is shared across the
    /// fan-out: each shard gets the *remaining* budget at the moment its
    /// slot starts, so a slow or stalled shard cannot starve the others of
    /// their share.
    ///
    /// Per-shard routing:
    /// * healthy → the full GC+ pipeline behind its panic boundary;
    /// * failed over (unhealthy) → cache-less budgeted baseline over the
    ///   shard's store — exact answers, no cache exposure, counted in
    ///   [`RoutedOutcome::baseline_shards`];
    /// * stalled (chaos) → the slot sleeps out the remaining deadline and
    ///   contributes a degraded empty partial.
    ///
    /// Shards whose recoveries accumulate [`PANIC_FAILOVER_THRESHOLD`]
    /// panics are failed over here; [`audit`](Self::audit) rejoins them.
    pub fn execute_deadline(
        &mut self,
        query: &LabeledGraph,
        kind: QueryKind,
        budget: QueryBudget,
    ) -> RoutedOutcome {
        #[derive(Clone, Copy, PartialEq)]
        enum Plan {
            Run,
            Baseline,
            Stalled,
        }
        let overall = budget.deadline.map(|d| Instant::now() + d);
        let remaining = move || QueryBudget {
            deadline: overall.map(|t| t.saturating_duration_since(Instant::now())),
            max_tests: budget.max_tests,
        };
        // a shard slot that fails beyond recovery yields a degraded empty
        // outcome: sound (contributes no answers) and explicitly tagged
        let degraded_slot = |why| QueryOutcome {
            answer: BitSet::new(),
            metrics: QueryMetrics {
                degraded: Some(why),
                ..QueryMetrics::default()
            },
        };
        let plans: Vec<Plan> = self
            .states
            .iter()
            .map(|st| {
                if st.stalled {
                    Plan::Stalled
                } else if st.healthy {
                    Plan::Run
                } else {
                    Plan::Baseline
                }
            })
            .collect();
        let method = self.config.method;
        let run_slot = move |s: &mut GraphCachePlus, plan: Plan| -> QueryOutcome {
            match plan {
                Plan::Run => catch_unwind(AssertUnwindSafe(|| {
                    s.execute_isolated_budgeted(query, kind, remaining())
                }))
                .unwrap_or_else(|_| degraded_slot(Interrupt::Panic)),
                Plan::Baseline => catch_unwind(AssertUnwindSafe(|| {
                    baseline_budgeted(s, &method, query, kind, remaining())
                }))
                .unwrap_or_else(|_| degraded_slot(Interrupt::Panic)),
                Plan::Stalled => {
                    std::thread::sleep(remaining().deadline.unwrap_or(STALL_FALLBACK));
                    degraded_slot(Interrupt::Deadline)
                }
            }
        };
        let outcomes: Vec<QueryOutcome> = if self.parallel_fanout && self.shards.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(plans.iter().copied())
                    .map(|(s, plan)| scope.spawn(move || run_slot(s, plan)))
                    .collect();
                handles
                    .into_iter()
                    // the slot runner contains all panics, so a join
                    // failure should be unreachable; degrade rather than
                    // cascade if it ever happens
                    .map(|h| h.join().unwrap_or_else(|_| degraded_slot(Interrupt::Panic)))
                    .collect()
            })
        } else {
            self.shards
                .iter_mut()
                .zip(plans.iter().copied())
                .map(|(s, plan)| run_slot(s, plan))
                .collect()
        };

        let mut answer = BitSet::new();
        let mut metrics = QueryMetrics::default();
        let mut baseline_shards = 0u32;
        for (shard, out) in outcomes.iter().enumerate() {
            for local in out.answer.iter_ones() {
                answer.set(self.reverse[shard][local], true);
            }
            metrics.subiso_tests += out.metrics.subiso_tests;
            metrics.tests_saved += out.metrics.tests_saved;
            metrics.candidate_size += out.metrics.candidate_size;
            metrics.query_time = metrics.query_time.max(out.metrics.query_time);
            metrics.overhead_time += out.metrics.overhead_time;
            metrics.validation_time += out.metrics.validation_time;
            metrics.panics_recovered += out.metrics.panics_recovered;
            metrics.repairs_applied += out.metrics.repairs_applied;
            metrics.invalidations_avoided += out.metrics.invalidations_avoided;
            metrics.repair_fallbacks += out.metrics.repair_fallbacks;
            metrics.spans.merge(&out.metrics.spans);
            // every executed query counts exactly once per shard — the
            // invariant a stats scrape reconciles against a request ledger
            if out.metrics.hits.is_hit() {
                self.stats[shard].hits.inc();
            } else {
                self.stats[shard].misses.inc();
            }
            if metrics.degraded.is_none() {
                // one degraded shard degrades the unioned outcome: the
                // union may be missing that shard's share of the answer
                metrics.degraded = out.metrics.degraded;
            }
            if plans[shard] == Plan::Baseline {
                baseline_shards += 1;
                self.router_health.add_baseline_served(1);
            }
            let st = &mut self.states[shard];
            st.panics = st
                .panics
                .saturating_add(out.metrics.panics_recovered.min(u32::MAX as u64) as u32);
            if st.healthy && st.panics >= PANIC_FAILOVER_THRESHOLD {
                st.healthy = false;
                self.router_health.add_shard_failover();
            }
        }
        RoutedOutcome {
            outcome: QueryOutcome { answer, metrics },
            baseline_shards,
        }
    }

    /// The shard owning a live global id, if any.
    pub fn owner_shard(&self, global: GlobalId) -> Option<usize> {
        self.locate(global).ok().map(|(shard, _)| shard)
    }

    /// Whether the router currently considers the shard healthy.
    pub fn shard_healthy(&self, shard: usize) -> bool {
        self.states[shard].healthy
    }

    /// Shards currently failed over to baseline serving.
    pub fn unhealthy_shards(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, st)| !st.healthy)
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks a shard stalled (chaos injection): its next query slots burn
    /// the remaining deadline and degrade instead of answering.
    pub fn set_shard_stalled(&mut self, shard: usize, stalled: bool) {
        self.states[shard].stalled = stalled;
    }

    /// Routing-layer health counters (load shed / failovers / baseline
    /// serves) — shard-internal counters are folded by
    /// [`health_snapshot`](Self::health_snapshot).
    pub fn router_health(&self) -> &RuntimeHealth {
        &self.router_health
    }

    /// Sums the fault-tolerance counters across all shards, plus the
    /// routing layer's own counters.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        let mut total = self.router_health.snapshot();
        for s in &self.shards {
            total.merge(&s.health_snapshot());
        }
        total
    }

    /// Entries currently under quarantine across all shards.
    pub fn quarantined_entries(&self) -> usize {
        self.shards.iter().map(|s| s.quarantined_entries()).sum()
    }

    /// Shared handle to the per-shard counters, for layers that must
    /// record (e.g. shed) without holding the cache itself.
    pub fn stats_handle(&self) -> Arc<Vec<ShardStats>> {
        Arc::clone(&self.stats)
    }

    /// Point-in-time per-shard counters, with live eviction/quarantine
    /// gauges folded in from each shard.
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.shards
            .iter()
            .zip(self.stats.iter())
            .map(|(shard, stats)| ShardStatsSnapshot {
                hits: stats.hits.get(),
                misses: stats.misses.get(),
                evictions: shard.evictions(),
                quarantined: shard.quarantined_entries() as u64,
                shed: stats.shed.get(),
            })
            .collect()
    }

    /// Folded label-index gauges across shards: `(resident bytes,
    /// non-empty syncs, cumulative sync nanoseconds)`. All zero when the
    /// candidate source is the linear scan.
    pub fn index_stats(&self) -> (u64, u64, u64) {
        let mut bytes = 0u64;
        let mut syncs = 0u64;
        let mut nanos = 0u64;
        for s in &self.shards {
            if let Some(idx) = s.label_index() {
                bytes += idx.memory_bytes();
                syncs += idx.syncs();
                nanos += idx.sync_nanos();
            }
        }
        (bytes, syncs, nanos)
    }

    /// Pipeline-stage wall time summed across all shards (all-zero unless
    /// the configuration enables tracing).
    pub fn stage_totals(&self) -> StageSpans {
        let mut total = StageSpans::default();
        for s in &self.shards {
            total.merge(&s.stage_totals());
        }
        total
    }

    /// Runs the consistency auditor on every shard (repair mode), folding
    /// the per-shard reports. Shard `i` audits with seed `seed + i` so
    /// samples stay deterministic but uncorrelated.
    pub fn audit(&mut self, sample_rate: f64, seed: u64) -> crate::system::AuditReport {
        let mut total = crate::system::AuditReport::default();
        for (i, s) in self.shards.iter_mut().enumerate() {
            let r = s.audit(sample_rate, seed.wrapping_add(i as u64));
            total.sampled += r.sampled;
            total.clean += r.clean;
            total.repaired += r.repaired;
            total.evicted += r.evicted;
        }
        // a failed-over shard rejoins once the audit leaves it with no
        // quarantined knowledge: everything it serves from here is clean
        for (st, s) in self.states.iter_mut().zip(&self.shards) {
            if !st.healthy && s.quarantined_entries() == 0 {
                st.healthy = true;
                st.panics = 0;
            }
        }
        total
    }

    /// Installs fault injectors per shard (chaos testing); shard `i` gets
    /// `make(i)`.
    pub fn set_fault_injectors(
        &mut self,
        mut make: impl FnMut(usize) -> Option<std::sync::Arc<crate::fault::FaultInjector>>,
    ) {
        for (i, s) in self.shards.iter_mut().enumerate() {
            if let Some(inj) = make(i) {
                s.set_fault_injector(inj);
            }
        }
    }
}

/// Cache-less budgeted execution against one shard's store — the serving
/// path for failed-over shards. Answers are exact unless the budget runs
/// out first (then sound-partial, tagged like any degraded outcome).
fn baseline_budgeted(
    shard: &GraphCachePlus,
    method: &MethodM,
    query: &LabeledGraph,
    kind: QueryKind,
    budget: QueryBudget,
) -> QueryOutcome {
    let started = Instant::now();
    let token = budget.token();
    let store = shard.store();
    let csm = store.live_bitset();
    let candidate_size = csm.count_ones() as u64;
    let m = method.run_budgeted(query, kind, store, &csm, &token);
    QueryOutcome {
        answer: m.answer,
        metrics: QueryMetrics {
            query_time: started.elapsed(),
            subiso_tests: m.tests,
            prefilter_skips: m.prefilter_skips,
            candidate_size,
            degraded: m.interrupted,
            panics_recovered: m.panics_recovered,
            ..QueryMetrics::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::generate::random_connected_graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> Vec<LabeledGraph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let v = rng.random_range(4..10usize);
                random_connected_graph(&mut rng, v, 2, |r| r.random_range(0..3u16))
            })
            .collect()
    }

    fn query(data: &[LabeledGraph], seed: u64) -> LabeledGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        gc_graph::generate::bfs_extract(&mut rng, &data[0], 0, 3).expect("extractable")
    }

    #[test]
    fn sharded_answers_equal_single_instance() {
        let data = dataset(23, 1);
        let q = query(&data, 2);
        let mut single = GraphCachePlus::new(GcConfig::default(), data.clone());
        for shards in [1usize, 2, 3, 5] {
            let mut sharded = ShardedGraphCache::new(GcConfig::default(), data.clone(), shards);
            assert_eq!(sharded.shard_count(), shards);
            let got = sharded.execute(&q, QueryKind::Subgraph);
            let expected = single.execute(&q, QueryKind::Subgraph);
            assert_eq!(got.answer, expected.answer, "{shards} shards");
        }
    }

    #[test]
    fn changes_route_correctly() {
        let data = dataset(10, 3);
        let mut sharded = ShardedGraphCache::new(GcConfig::default(), data.clone(), 3);
        assert_eq!(sharded.live_count(), 10);

        // delete global 4, add a new graph, flip an edge on global 7
        sharded.apply(ChangeOp::Del(4)).unwrap();
        assert_eq!(sharded.live_count(), 9);
        assert!(sharded.get(4).is_none());
        assert!(matches!(
            sharded.apply(ChangeOp::Del(4)),
            Err(DatasetError::NoSuchGraph(4))
        ));

        let new_global = sharded.apply(ChangeOp::Add(data[0].clone())).unwrap();
        assert_eq!(new_global, 10);
        assert_eq!(sharded.live_count(), 10);
        assert!(sharded.get(10).is_some());

        let g7 = sharded.get(7).expect("live").clone();
        let (u, v) = g7.edges().next().expect("has edges");
        sharded.apply(ChangeOp::Ur { id: 7, u, v }).unwrap();
        assert!(!sharded.get(7).expect("live").has_edge(u, v));
    }

    #[test]
    fn sharded_stays_exact_under_churn() {
        let data = dataset(18, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut sharded =
            ShardedGraphCache::new(GcConfig::default(), data.clone(), 3).with_parallel_fanout(true);
        // mirror state in a flat store for ground truth
        let mut flat = GraphCachePlus::new(GcConfig::default(), data.clone());

        for step in 0..40 {
            if step % 5 == 4 {
                let global = rng.random_range(0..data.len());
                if sharded.get(global).is_some() {
                    let g = sharded.get(global).expect("live").clone();
                    let first_edge = g.edges().next();
                    if let Some((u, v)) = first_edge {
                        sharded.apply(ChangeOp::Ur { id: global, u, v }).unwrap();
                        flat.apply(ChangeOp::Ur { id: global, u, v }).unwrap();
                    }
                }
            }
            let q = query(&data, 100 + step);
            let got = sharded.execute(&q, QueryKind::Subgraph);
            let expected = flat.execute(&q, QueryKind::Subgraph);
            assert_eq!(got.answer, expected.answer, "step {step}");
            // fan-out runs the union of all shard candidate sets
            assert_eq!(got.metrics.candidate_size, expected.metrics.candidate_size);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_asserts_in_debug() {
        let _ = ShardedGraphCache::new(GcConfig::default(), Vec::new(), 0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn zero_shards_clamps_in_release() {
        let data = dataset(4, 11);
        let sharded = ShardedGraphCache::new(GcConfig::default(), data, 0);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.live_count(), 4);
    }

    #[test]
    fn panicking_shard_is_contained() {
        use crate::fault::FaultInjector;
        use std::sync::Arc;
        let data = dataset(12, 9);
        let q = query(&data, 10);
        let mut oracle = GraphCachePlus::new(GcConfig::default(), data.clone());
        let expected = oracle.execute(&q, QueryKind::Subgraph).answer;
        for fanout in [false, true] {
            let mut sharded = ShardedGraphCache::new(GcConfig::default(), data.clone(), 3)
                .with_parallel_fanout(fanout);
            // shard 1 panics on its first query; the other shards are clean
            sharded.set_fault_injectors(|i| {
                (i == 1).then(|| Arc::new(FaultInjector::new("panic-query@1".parse().unwrap())))
            });
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let out = sharded.execute(&q, QueryKind::Subgraph);
            std::panic::set_hook(prev);
            assert_eq!(out.answer, expected, "fanout={fanout}");
            assert!(out.metrics.degraded.is_none(), "retry recovered exactly");
            assert_eq!(out.metrics.panics_recovered, 1);
            assert_eq!(sharded.health_snapshot().panics_recovered, 1);
            // auditing clears whatever the recovery quarantined
            sharded.audit(1.0, 5);
            assert_eq!(sharded.quarantined_entries(), 0);
            // one contained panic stays below the failover threshold
            assert!(sharded.shard_healthy(1));
        }
    }

    #[test]
    fn twice_panicking_shard_fails_over_to_baseline_until_audit() {
        use crate::fault::FaultInjector;
        use std::sync::Arc;
        let data = dataset(15, 13);
        let q = query(&data, 14);
        let mut oracle = GraphCachePlus::new(GcConfig::default(), data.clone());
        let expected = oracle.execute(&q, QueryKind::Subgraph).answer;

        let mut sharded = ShardedGraphCache::new(GcConfig::default(), data.clone(), 3);
        // shard 1's first query panics, and so does the isolation retry
        sharded.set_fault_injectors(|i| {
            (i == 1).then(|| {
                Arc::new(FaultInjector::new(
                    "panic-query@1;panic-query@2".parse().unwrap(),
                ))
            })
        });
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let first = sharded.execute_deadline(&q, QueryKind::Subgraph, QueryBudget::UNLIMITED);
        std::panic::set_hook(prev);
        // the double panic resolved through the shard's own baseline
        // fallback, so the answer is still exact — and the shard is now
        // failed over at the routing layer
        assert_eq!(first.outcome.answer, expected);
        assert_eq!(
            first.baseline_shards, 0,
            "failover starts on the *next* query"
        );
        assert!(!sharded.shard_healthy(1));
        assert_eq!(sharded.unhealthy_shards(), vec![1]);
        assert_eq!(sharded.health_snapshot().shard_failovers, 1);

        // while failed over, shard 1's slice is served by router baseline:
        // exact answers, no cache exposure
        let second = sharded.execute_deadline(&q, QueryKind::Subgraph, QueryBudget::UNLIMITED);
        assert_eq!(second.outcome.answer, expected);
        assert!(second.outcome.metrics.degraded.is_none());
        assert_eq!(second.baseline_shards, 1);
        assert!(sharded.health_snapshot().baseline_served >= 1);

        // a full audit clears the quarantine and rejoins the shard
        sharded.audit(1.0, 7);
        assert_eq!(sharded.quarantined_entries(), 0);
        assert!(sharded.shard_healthy(1));
        let third = sharded.execute_deadline(&q, QueryKind::Subgraph, QueryBudget::UNLIMITED);
        assert_eq!(third.outcome.answer, expected);
        assert_eq!(third.baseline_shards, 0);
    }

    #[test]
    fn shard_counters_reconcile_with_executed_queries() {
        let data = dataset(20, 21);
        let mut sharded = ShardedGraphCache::new(GcConfig::default(), data.clone(), 3);
        let queries = 7u64;
        for i in 0..queries {
            let q = query(&data, 200 + i);
            sharded.execute(&q, QueryKind::Subgraph);
        }
        let stats = sharded.shard_stats();
        assert_eq!(stats.len(), 3);
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(
                s.hits + s.misses,
                queries,
                "shard {i}: every executed query is classified exactly once"
            );
            assert_eq!(s.shed, 0, "nothing sheds without a serving layer");
        }
        // repeated queries hit: at least one shard saw a cache hit by now
        let q = query(&data, 200);
        sharded.execute(&q, QueryKind::Subgraph);
        let after = sharded.shard_stats();
        assert!(
            after.iter().map(|s| s.hits).sum::<u64>() > 0,
            "a repeated query must register as a hit somewhere"
        );
        // merge folds field-wise
        let mut total = ShardStatsSnapshot::default();
        for s in &after {
            total.merge(s);
        }
        assert_eq!(total.hits + total.misses, (queries + 1) * 3);
        // the shed counter is shared with the serving layer via the handle
        let handle = sharded.stats_handle();
        handle[1].shed.inc();
        assert_eq!(sharded.shard_stats()[1].shed, 1);
    }

    #[test]
    fn stalled_shard_burns_deadline_and_degrades() {
        let data = dataset(12, 17);
        let q = query(&data, 18);
        let mut oracle = GraphCachePlus::new(GcConfig::default(), data.clone());
        let expected = oracle.execute(&q, QueryKind::Subgraph).answer;

        let mut sharded = ShardedGraphCache::new(GcConfig::default(), data.clone(), 2);
        sharded.set_shard_stalled(1, true);
        let budget = QueryBudget {
            deadline: Some(Duration::from_millis(30)),
            max_tests: None,
        };
        let t = Instant::now();
        let routed = sharded.execute_deadline(&q, QueryKind::Subgraph, budget);
        let elapsed = t.elapsed();
        assert!(
            elapsed >= Duration::from_millis(30),
            "stall burns the deadline"
        );
        assert!(
            elapsed < Duration::from_millis(30) * 4,
            "a stall must not hang past the deadline's order of magnitude: {elapsed:?}"
        );
        assert_eq!(
            routed.outcome.metrics.degraded,
            Some(Interrupt::Deadline),
            "the stalled slot is explicitly degraded"
        );
        // the answer is sound: a subset of the true answer (missing at
        // most the stalled shard's share)
        for g in routed.outcome.answer.iter_ones() {
            assert!(expected.get(g), "unsound positive {g}");
        }
        assert!(sharded.shard_healthy(1), "stall is not a panic failover");

        // clearing the stall restores exact answers
        sharded.set_shard_stalled(1, false);
        let clean = sharded.execute_deadline(&q, QueryKind::Subgraph, QueryBudget::UNLIMITED);
        assert_eq!(clean.outcome.answer, expected);
        assert!(clean.outcome.metrics.degraded.is_none());
    }
}
