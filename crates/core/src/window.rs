//! The Window Manager — GC+'s cache admission control.
//!
//! Executed queries do not enter the cache store directly: they are
//! "batched to enter cache" through a bounded window (default 20). While
//! in the window they already serve hit discovery and are kept consistent
//! by the validator (the paper: cached graphs "by default cover those
//! previous queries in both cache and window"), accumulating the usage
//! statistics the replacement policy will judge them by. When the window
//! fills up, the whole batch is flushed towards the cache store.

use crate::entry::CachedQuery;

/// Bounded admission window.
#[derive(Debug, Default)]
pub struct Window {
    entries: Vec<CachedQuery>,
    capacity: usize,
}

impl Window {
    /// Creates a window with the given capacity (0 disables caching of new
    /// queries entirely — useful for ablations).
    pub fn new(capacity: usize) -> Self {
        Window {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Admits a query. If the window reaches capacity, returns the drained
    /// batch to be merged into the cache store.
    pub fn push(&mut self, entry: CachedQuery) -> Option<Vec<CachedQuery>> {
        if self.capacity == 0 {
            return None;
        }
        self.entries.push(entry);
        if self.entries.len() >= self.capacity {
            Some(std::mem::take(&mut self.entries))
        } else {
            None
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no query is windowed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Shared iteration for hit discovery.
    pub fn iter(&self) -> impl Iterator<Item = &CachedQuery> {
        self.entries.iter()
    }

    /// Mutable access for validation and stat credit.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut CachedQuery> {
        self.entries.iter_mut()
    }

    /// Direct indexed access (hit lists store indices).
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut CachedQuery> {
        self.entries.get_mut(idx)
    }

    /// EVI purge.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of windowed entries currently under quarantine.
    pub fn quarantined_count(&self) -> usize {
        self.entries.iter().filter(|e| e.quarantined).count()
    }

    /// Drops every windowed entry matching `pred` (order-preserving) and
    /// returns how many were removed — the auditor's eviction primitive.
    pub fn evict_where(&mut self, mut pred: impl FnMut(&CachedQuery) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !pred(e));
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{BitSet, LabeledGraph};
    use gc_subiso::QueryKind;

    fn entry() -> CachedQuery {
        CachedQuery::new(
            LabeledGraph::from_parts(vec![0], &[]).unwrap(),
            QueryKind::Subgraph,
            BitSet::new(),
            0,
            0,
        )
    }

    #[test]
    fn flushes_exactly_at_capacity() {
        let mut w = Window::new(3);
        assert!(w.push(entry()).is_none());
        assert!(w.push(entry()).is_none());
        assert_eq!(w.len(), 2);
        let batch = w.push(entry()).expect("third push flushes");
        assert_eq!(batch.len(), 3);
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 3);
    }

    #[test]
    fn zero_capacity_never_admits() {
        let mut w = Window::new(0);
        assert!(w.push(entry()).is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn clear_purges() {
        let mut w = Window::new(5);
        w.push(entry());
        w.push(entry());
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.iter().count(), 0);
    }

    #[test]
    fn quarantine_bookkeeping_and_targeted_eviction() {
        let mut w = Window::new(5);
        w.push(entry());
        w.push(entry());
        w.get_mut(0).unwrap().quarantined = true;
        assert_eq!(w.quarantined_count(), 1);
        assert_eq!(w.evict_where(|e| e.quarantined), 1);
        assert_eq!(w.len(), 1);
        assert_eq!(w.quarantined_count(), 0);
    }

    #[test]
    fn indexed_mutation() {
        let mut w = Window::new(5);
        w.push(entry());
        w.get_mut(0).unwrap().credit(3, 1.0, 7);
        assert_eq!(w.iter().next().unwrap().stats.tests_saved, 3);
        assert!(w.get_mut(1).is_none());
        assert_eq!(w.iter_mut().count(), 1);
    }
}
