//! The Candidate Set Pruner — §6 of the paper, formulas (1)–(5), plus the
//! two §6.3 optimal cases.
//!
//! For a (subgraph) query `g` with Method M candidate set `CS_M(g)` (the
//! live dataset):
//!
//! 1. **formula (1)** — direct hits pool their *valid* answers:
//!    `Answer_sub(g) = ⋃ CGvalid(g′) ∩ Answer(g′)`; those graphs are
//!    sub-iso test-free and enter the final answer directly;
//! 2. **formula (2)** — `CS = CS_M \ Answer_sub`;
//! 3. **formulas (4)+(5)** — each exclusion hit `g″` retains only
//!    `CS ∩ (¬CGvalid(g″) ∪ Answer(g″))`: a graph provably *not*
//!    containing `g″` (valid negative) can never contain `g ⊇ g″`;
//! 4. the survivors go to Method M (`Mverifier`); **formula (3)** unions
//!    the verified answers with `Answer_sub`.
//!
//! Optimal cases (§6.3), checked before any of the above:
//!
//! * **exact match** — an isomorphic cached query holding validity on all
//!   live graphs: return its answer (restricted to live graphs), zero
//!   tests;
//! * **empty result** — an exclusion hit with *no valid live answer* and
//!   full validity on the live set: the final answer is provably empty,
//!   zero tests.
//!
//! The same algebra serves supergraph queries with the hit roles swapped
//! (see [`crate::processor`]); the bit operations are identical.

use gc_graph::BitSet;

use crate::cache::CacheManager;
use crate::processor::{resolve, EntryRef, Hits};
use crate::window::Window;

/// Zero-sub-iso-test fast paths of §6.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shortcut {
    /// Optimal case 1: a fully valid isomorphic entry answered the query.
    ExactMatch(EntryRef),
    /// Optimal case 2: a fully valid exclusion hit with an empty (live)
    /// answer set proves the result empty.
    EmptyResult(EntryRef),
}

/// Pruning result for one query.
#[derive(Debug)]
pub struct PruneOutcome {
    /// Fast path taken, if any (its answer is already in `direct_answers`;
    /// `candidates` is empty).
    pub shortcut: Option<Shortcut>,
    /// Sub-iso-test-free answers (formula (1), or the §6.3 shortcut
    /// answer).
    pub direct_answers: BitSet,
    /// Remaining candidate set for Method M (formulas (2)+(5)).
    pub candidates: BitSet,
    /// Per-entry alleviated-test attribution `(entry, tests)` — each
    /// contributing entry is credited with the tests it alone could save,
    /// the statistic the PIN/PINC/HD policies rank by.
    pub attribution: Vec<(EntryRef, u64)>,
}

/// Applies §6 pruning. `csm` is Method M's candidate set (the live
/// dataset); `live` is the live-graph bitset used for the full-validity
/// checks of the optimal cases (identical to `csm` in GC+'s deployment,
/// passed separately for clarity and testability).
pub fn prune(
    csm: &BitSet,
    hits: &Hits,
    cache: &CacheManager,
    window: &Window,
    live: &BitSet,
) -> PruneOutcome {
    // --- §6.3 optimal case 1: exact match ---
    if let Some(r) = hits.exact {
        let e = resolve(r, cache, window);
        if e.fully_valid_on(live) {
            let answer = e.answer.intersection(live);
            return PruneOutcome {
                shortcut: Some(Shortcut::ExactMatch(r)),
                direct_answers: answer,
                candidates: BitSet::new(),
                attribution: vec![(r, csm.count_ones() as u64)],
            };
        }
    }

    // --- §6.3 optimal case 2: provably empty result ---
    for &r in &hits.exclusion {
        let e = resolve(r, cache, window);
        if e.fully_valid_on(live) && e.answer.intersection(live).is_empty() {
            return PruneOutcome {
                shortcut: Some(Shortcut::EmptyResult(r)),
                direct_answers: BitSet::new(),
                candidates: BitSet::new(),
                attribution: vec![(r, csm.count_ones() as u64)],
            };
        }
    }

    let mut attribution: Vec<(EntryRef, u64)> = Vec::new();

    // --- formula (1): pooled valid answers of direct hits ---
    let mut direct_answers = BitSet::new();
    for &r in &hits.direct {
        let e = resolve(r, cache, window);
        let mut contribution = e.valid_answers();
        contribution.intersect_with(csm);
        let saved = contribution.count_ones() as u64;
        if saved > 0 {
            attribution.push((r, saved));
        }
        direct_answers.union_with(&contribution);
    }

    // --- formula (2): CS = CS_M \ Answer_sub ---
    let mut candidates = csm.difference(&direct_answers);

    // --- formulas (4)+(5): exclusion hits shrink the survivors ---
    // Per-entry attribution measures each hit's standalone pruning power
    // against the post-formula-(2) candidate set.
    let base = candidates.clone();
    for &r in &hits.exclusion {
        let e = resolve(r, cache, window);
        // tests this hit alone would save: valid negatives inside `base`
        let mut alone = base.intersection(&e.cg_valid);
        alone.difference_with(&e.answer);
        let saved = alone.count_ones() as u64;
        if saved > 0 {
            attribution.push((r, saved));
        }
        candidates.retain_super_hit(&e.cg_valid, &e.answer);
    }

    PruneOutcome {
        shortcut: None,
        direct_answers,
        candidates,
        attribution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Policy;
    use crate::entry::CachedQuery;
    use gc_graph::LabeledGraph;
    use gc_subiso::QueryKind;

    fn entry_with(answer: &[usize], valid: &[usize], span: usize) -> CachedQuery {
        let mut e = CachedQuery::new(
            LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap(),
            QueryKind::Subgraph,
            BitSet::from_indices(answer.iter().copied()),
            span,
            0,
        );
        e.cg_valid = BitSet::from_indices(valid.iter().copied());
        e
    }

    fn setup(entries: Vec<CachedQuery>) -> (CacheManager, Window) {
        let mut cache = CacheManager::new(100, Policy::Pin);
        cache.admit_batch(entries);
        (cache, Window::new(20))
    }

    /// Reproduces Figure 3(a): CS_M = {1,2,3,4}; direct hit g′ with
    /// Answer = {2,3}, CGvalid = {2}. Expected: G2 test-free, CS = {1,3,4}.
    #[test]
    fn figure_3a_subgraph_case() {
        let (cache, window) = setup(vec![entry_with(&[2, 3], &[2], 5)]);
        let csm = BitSet::from_indices([1usize, 2, 3, 4]);
        let hits = Hits {
            direct: vec![EntryRef::Cache(0)],
            ..Hits::default()
        };
        let out = prune(&csm, &hits, &cache, &window, &csm);
        assert!(out.shortcut.is_none());
        assert_eq!(out.direct_answers.iter_ones().collect::<Vec<_>>(), vec![2]);
        assert_eq!(
            out.candidates.iter_ones().collect::<Vec<_>>(),
            vec![1, 3, 4]
        );
        assert_eq!(out.attribution, vec![(EntryRef::Cache(0), 1)]);
    }

    /// Reproduces Figure 3(b): CS_M = {1,2,3,4}; exclusion hit g″ with
    /// Answer = {2,3}, CGvalid = {2,3,4}. Expected survivors {1,2,3}
    /// (G4: valid negative → excluded; G1: stale → must be verified).
    #[test]
    fn figure_3b_supergraph_case() {
        let (cache, window) = setup(vec![entry_with(&[2, 3], &[2, 3, 4], 5)]);
        let csm = BitSet::from_indices([1usize, 2, 3, 4]);
        let hits = Hits {
            exclusion: vec![EntryRef::Cache(0)],
            ..Hits::default()
        };
        let out = prune(&csm, &hits, &cache, &window, &csm);
        assert!(out.shortcut.is_none());
        assert!(out.direct_answers.is_empty());
        assert_eq!(
            out.candidates.iter_ones().collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(out.attribution, vec![(EntryRef::Cache(0), 1)]);
    }

    #[test]
    fn multiple_direct_hits_pool_answers() {
        let (cache, window) = setup(vec![
            entry_with(&[0, 1], &[0], 4),    // valid answer {0}
            entry_with(&[1, 2], &[1, 2], 4), // valid answers {1,2}
        ]);
        let csm = BitSet::from_indices(0..4);
        let hits = Hits {
            direct: vec![EntryRef::Cache(0), EntryRef::Cache(1)],
            ..Hits::default()
        };
        let out = prune(&csm, &hits, &cache, &window, &csm);
        assert_eq!(
            out.direct_answers.iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(out.candidates.iter_ones().collect::<Vec<_>>(), vec![3]);
        assert_eq!(out.attribution.len(), 2);
    }

    #[test]
    fn exclusion_hits_intersect() {
        // hit A excludes {0} (valid negative), hit B excludes {1}
        let (cache, window) = setup(vec![entry_with(&[], &[0], 3), entry_with(&[], &[1], 3)]);
        let csm = BitSet::from_indices(0..3);
        let hits = Hits {
            exclusion: vec![EntryRef::Cache(0), EntryRef::Cache(1)],
            ..Hits::default()
        };
        let out = prune(&csm, &hits, &cache, &window, &csm);
        assert_eq!(out.candidates.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn exact_match_shortcut_requires_full_validity() {
        // fully valid exact match → shortcut with cached answer ∩ live
        let (cache, window) = setup(vec![entry_with(&[0, 2], &[0, 1, 2], 3)]);
        let csm = BitSet::from_indices(0..3);
        let hits = Hits {
            exact: Some(EntryRef::Cache(0)),
            direct: vec![EntryRef::Cache(0)],
            exclusion: vec![EntryRef::Cache(0)],
            ..Hits::default()
        };
        let out = prune(&csm, &hits, &cache, &window, &csm);
        assert_eq!(out.shortcut, Some(Shortcut::ExactMatch(EntryRef::Cache(0))));
        assert_eq!(
            out.direct_answers.iter_ones().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert!(out.candidates.is_empty());
        assert_eq!(out.attribution, vec![(EntryRef::Cache(0), 3)]);

        // partially valid exact match → no shortcut, falls through to
        // formula pruning (here: direct contributes valid answers only)
        let (cache2, window2) = setup(vec![entry_with(&[0, 2], &[0, 1], 3)]);
        let out2 = prune(&csm, &hits, &cache2, &window2, &csm);
        assert!(out2.shortcut.is_none());
        assert_eq!(out2.direct_answers.iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn exact_match_answer_restricted_to_live() {
        // graph 1 was deleted after the entry was cached; its answer bit
        // must not leak into the shortcut answer
        let (cache, window) = setup(vec![entry_with(&[0, 1], &[0, 1, 2], 3)]);
        let live = BitSet::from_indices([0usize, 2]);
        let hits = Hits {
            exact: Some(EntryRef::Cache(0)),
            ..Hits::default()
        };
        let out = prune(&live, &hits, &cache, &window, &live);
        assert_eq!(out.shortcut, Some(Shortcut::ExactMatch(EntryRef::Cache(0))));
        assert_eq!(out.direct_answers.iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn empty_result_shortcut() {
        // exclusion hit with empty answer + full validity proves ∅
        let (cache, window) = setup(vec![entry_with(&[], &[0, 1, 2], 3)]);
        let csm = BitSet::from_indices(0..3);
        let hits = Hits {
            exclusion: vec![EntryRef::Cache(0)],
            ..Hits::default()
        };
        let out = prune(&csm, &hits, &cache, &window, &csm);
        assert_eq!(
            out.shortcut,
            Some(Shortcut::EmptyResult(EntryRef::Cache(0)))
        );
        assert!(out.direct_answers.is_empty());
        assert!(out.candidates.is_empty());

        // without full validity, no shortcut
        let (cache2, window2) = setup(vec![entry_with(&[], &[0, 1], 3)]);
        let out2 = prune(&csm, &hits, &cache2, &window2, &csm);
        assert!(out2.shortcut.is_none());
        // the hit still excludes its valid negatives {0,1}
        assert_eq!(out2.candidates.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn empty_result_ignores_answers_on_deleted_graphs() {
        // entry answered {1} but graph 1 was deleted: live answers are
        // empty, so the shortcut still fires
        let (cache, window) = setup(vec![entry_with(&[1], &[0, 1, 2], 3)]);
        let live = BitSet::from_indices([0usize, 2]);
        let hits = Hits {
            exclusion: vec![EntryRef::Cache(0)],
            ..Hits::default()
        };
        let out = prune(&live, &hits, &cache, &window, &live);
        assert_eq!(
            out.shortcut,
            Some(Shortcut::EmptyResult(EntryRef::Cache(0)))
        );
    }

    #[test]
    fn no_hits_passthrough() {
        let (cache, window) = setup(vec![]);
        let csm = BitSet::from_indices(0..5);
        let out = prune(&csm, &Hits::default(), &cache, &window, &csm);
        assert!(out.shortcut.is_none());
        assert!(out.direct_answers.is_empty());
        assert_eq!(out.candidates, csm);
        assert!(out.attribution.is_empty());
    }
}
