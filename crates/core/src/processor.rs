//! GC+sub / GC+super processors — hit discovery against cached queries.
//!
//! When query `g` arrives, GC+ probes every cached query (cache *and*
//! window) for subgraph/supergraph relations, producing:
//!
//! * **direct hits** — entries whose valid answers inject straight into
//!   `g`'s answer set (subgraph query: cached `g′` with `g ⊆ g′`, the
//!   `Result_sub` of formula (1); supergraph query: the dual `g′ ⊆ g`);
//! * **exclusion hits** — entries whose valid *non*-answers prove graphs
//!   out of `g`'s candidate set (subgraph query: cached `g″ ⊆ g`, the
//!   `Result_super` of formulas (4)/(5); supergraph query: the dual);
//! * an **exact match** — an entry isomorphic to `g` (§6.3 optimal case 1:
//!   one containment direction + equal vertex/edge counts suffices, since
//!   an injective edge-preserving map between equal-size graphs with equal
//!   edge counts is an isomorphism).
//!
//! Only entries of the *same query kind* are usable: a subgraph-query
//! entry stores `{G : q ⊆ G}` knowledge, which says nothing useful about
//! a supergraph query's `{G : G ⊆ q}` — and vice versa.
//!
//! Probes are cheap: cached queries are small (the window+cache hold at
//! most ~120 of them) and the signature quick filters of
//! [`CachedQuery`] eliminate most pairs before any SI search runs. When
//! they are *not* cheap — large cached query graphs, big windows — the
//! probe loop fans out over scoped worker threads
//! ([`discover_hits_with`] with `parallelism > 1`): every entry's probe is
//! independent, per-entry outcomes are computed in parallel and folded in
//! entry order, so the resulting [`Hits`] (lists, exact-match choice,
//! probe count) are bit-identical to the sequential scan.

use gc_graph::LabeledGraph;
use gc_subiso::parallel::parallel_map_indexed;
use gc_subiso::{CancelToken, QueryKind, SubgraphMatcher};

use crate::cache::CacheManager;
use crate::entry::CachedQuery;
use crate::window::Window;

/// Reference to a cached entry (hit lists stay valid until the next cache
/// mutation, which only happens after pruning completes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryRef {
    /// Index into the cache store.
    Cache(usize),
    /// Index into the window.
    Window(usize),
}

/// The outcome of hit discovery for one query.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Hits {
    /// Entries contributing sub-iso-test-free answers.
    pub direct: Vec<EntryRef>,
    /// Entries excluding graphs from the candidate set.
    pub exclusion: Vec<EntryRef>,
    /// An entry isomorphic to the query, if discovered.
    pub exact: Option<EntryRef>,
    /// Number of SI probes executed during discovery (instrumentation).
    pub probes: u64,
}

/// Resolves an [`EntryRef`] against the two stores.
pub fn resolve<'a>(r: EntryRef, cache: &'a CacheManager, window: &'a Window) -> &'a CachedQuery {
    match r {
        EntryRef::Cache(i) => cache.iter().nth(i).expect("stale cache ref"),
        EntryRef::Window(i) => window.iter().nth(i).expect("stale window ref"),
    }
}

/// The outcome of probing one entry, independent of every other entry —
/// the unit of work the parallel probe distributes.
#[derive(Debug, Clone, Copy, Default)]
struct ProbeOutcome {
    query_in_entry: bool,
    entry_in_query: bool,
    same_sig: bool,
    probes: u64,
}

/// One SI probe, optionally under a budget. `None` means the budget is
/// exhausted and the probe was skipped/abandoned — the entry is simply not
/// used as a hit, which is always sound (missed hits only cost tests, they
/// never change the answer). Probes charge the token's test counter: the
/// budget covers *all* SI work a query triggers.
fn budgeted_contains(
    matcher: &dyn SubgraphMatcher,
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    token: Option<&CancelToken>,
) -> Option<bool> {
    match token {
        None => Some(matcher.contains(pattern, target)),
        Some(tok) => tok
            .charge_test()
            .and_then(|()| matcher.contains_budgeted(pattern, target, tok))
            .ok(),
    }
}

/// Probes one entry (kind-matched) for both containment directions.
/// Quarantined entries are skipped entirely: their knowledge is under
/// suspicion until the consistency auditor clears them.
fn probe_entry(
    query: &LabeledGraph,
    kind: QueryKind,
    entry: &CachedQuery,
    matcher: &dyn SubgraphMatcher,
    token: Option<&CancelToken>,
) -> ProbeOutcome {
    if entry.kind != kind || entry.quarantined {
        return ProbeOutcome::default();
    }
    let mut out = ProbeOutcome {
        same_sig: entry.same_signature(query),
        ..ProbeOutcome::default()
    };

    // query ⊆ entry ?
    out.query_in_entry = entry.may_contain_query(query)
        && match budgeted_contains(matcher, query, &entry.graph, token) {
            Some(found) => {
                out.probes += 1;
                found
            }
            None => false,
        };
    // entry ⊆ query ?  (an exact match needs only one SI probe: equal
    // signatures + one direction imply isomorphism)
    out.entry_in_query = if out.same_sig && out.query_in_entry {
        true
    } else {
        entry.may_be_contained_in_query(query)
            && match budgeted_contains(matcher, &entry.graph, query, token) {
                Some(found) => {
                    out.probes += 1;
                    found
                }
                None => false,
            }
    };
    out
}

/// Folds one probe outcome into the hit lists. Direction names follow the
/// *subgraph*-query case; for supergraph queries the roles of the two
/// containment directions swap.
fn fold_outcome(hits: &mut Hits, kind: QueryKind, r: EntryRef, out: ProbeOutcome) {
    hits.probes += out.probes;
    if out.query_in_entry && out.entry_in_query && out.same_sig && hits.exact.is_none() {
        hits.exact = Some(r);
    }
    match kind {
        QueryKind::Subgraph => {
            if out.query_in_entry {
                hits.direct.push(r);
            }
            if out.entry_in_query {
                hits.exclusion.push(r);
            }
        }
        QueryKind::Supergraph => {
            if out.entry_in_query {
                hits.direct.push(r);
            }
            if out.query_in_entry {
                hits.exclusion.push(r);
            }
        }
    }
}

/// Runs GC+sub and GC+super discovery over cache and window, sequentially.
pub fn discover_hits(
    query: &LabeledGraph,
    kind: QueryKind,
    cache: &CacheManager,
    window: &Window,
    matcher: &dyn SubgraphMatcher,
) -> Hits {
    discover_hits_with(query, kind, cache, window, matcher, 1)
}

/// Minimum entry population before the probe loop spawns worker threads;
/// below this the per-query spawn cost dwarfs the probes themselves.
const PARALLEL_PROBE_THRESHOLD: usize = 16;

/// Runs hit discovery with an explicit probe-parallelism level. Entries are
/// probed independently (in parallel when `parallelism > 1` and the
/// population is large enough) and the outcomes folded in entry order —
/// cache entries first, then window entries — so the returned [`Hits`] are
/// identical at every parallelism level.
pub fn discover_hits_with(
    query: &LabeledGraph,
    kind: QueryKind,
    cache: &CacheManager,
    window: &Window,
    matcher: &dyn SubgraphMatcher,
    parallelism: usize,
) -> Hits {
    discover_hits_budgeted(query, kind, cache, window, matcher, parallelism, None)
}

/// [`discover_hits_with`] under an optional [`CancelToken`]. An exhausted
/// budget makes remaining probes no-ops: the hits found so far are all
/// real (probing is sound under interruption — a missed hit weakens
/// pruning but never the answer), so discovery needs no degraded tag of
/// its own.
#[allow(clippy::too_many_arguments)]
pub fn discover_hits_budgeted(
    query: &LabeledGraph,
    kind: QueryKind,
    cache: &CacheManager,
    window: &Window,
    matcher: &dyn SubgraphMatcher,
    parallelism: usize,
    token: Option<&CancelToken>,
) -> Hits {
    let entry_iter = || {
        cache
            .iter()
            .enumerate()
            .map(|(i, e)| (EntryRef::Cache(i), e))
            .chain(
                window
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (EntryRef::Window(i), e)),
            )
    };

    let mut hits = Hits::default();
    let population = cache.len() + window.len();
    if parallelism > 1 && population >= PARALLEL_PROBE_THRESHOLD {
        let entries: Vec<(EntryRef, &CachedQuery)> = entry_iter().collect();
        let outcomes = parallel_map_indexed(entries.len(), parallelism, |i| {
            probe_entry(query, kind, entries[i].1, matcher, token)
        });
        for ((r, _), out) in entries.iter().zip(outcomes) {
            fold_outcome(&mut hits, kind, *r, out);
        }
    } else {
        // the default sequential path stays allocation-free
        for (r, e) in entry_iter() {
            let out = probe_entry(query, kind, e, matcher, token);
            fold_outcome(&mut hits, kind, r, out);
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Policy;
    use gc_graph::{BitSet, LabeledGraph};
    use gc_subiso::Algorithm;

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    fn entry(graph: LabeledGraph, kind: QueryKind) -> CachedQuery {
        CachedQuery::new(graph, kind, BitSet::new(), 4, 0)
    }

    fn setup(entries: Vec<CachedQuery>) -> (CacheManager, Window) {
        let mut cache = CacheManager::new(100, Policy::Pin);
        cache.admit_batch(entries);
        (cache, Window::new(20))
    }

    #[test]
    fn subgraph_query_directions() {
        // cached: triangle (direct for edge query), edge (exclusion for
        // triangle query)
        let triangle = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let edge = g(vec![0, 0], &[(0, 1)]);
        let (cache, window) = setup(vec![
            entry(triangle.clone(), QueryKind::Subgraph),
            entry(edge.clone(), QueryKind::Subgraph),
        ]);
        let m = Algorithm::Vf2Plus.matcher();

        // query = edge: contained in both cached queries → two direct hits;
        // also the cached edge is ⊆ query → exclusion + exact.
        let hits = discover_hits(&edge, QueryKind::Subgraph, &cache, &window, m);
        assert_eq!(hits.direct.len(), 2);
        assert_eq!(hits.exclusion.len(), 1);
        assert_eq!(hits.exact, Some(EntryRef::Cache(1)));

        // query = path3: triangle is NOT ⊆ path3, edge is ⊆ path3
        let p3 = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
        let hits = discover_hits(&p3, QueryKind::Subgraph, &cache, &window, m);
        assert_eq!(hits.direct, vec![EntryRef::Cache(0)]); // p3 ⊆ triangle
        assert_eq!(hits.exclusion, vec![EntryRef::Cache(1)]); // edge ⊆ p3
        assert!(hits.exact.is_none());
    }

    #[test]
    fn supergraph_query_directions_swap() {
        let triangle = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let edge = g(vec![0, 0], &[(0, 1)]);
        let (cache, window) = setup(vec![
            entry(triangle.clone(), QueryKind::Supergraph),
            entry(edge.clone(), QueryKind::Supergraph),
        ]);
        let m = Algorithm::Vf2Plus.matcher();

        // supergraph query = triangle: cached edge ⊆ triangle → direct
        // (everything contained in the edge is contained in the triangle
        // ... no wait: direct means answers of edge inject into triangle's
        // answers, which is correct: G ⊆ edge ⊆ triangle)
        let hits = discover_hits(&triangle, QueryKind::Supergraph, &cache, &window, m);
        assert!(hits.direct.contains(&EntryRef::Cache(1)));
        // the cached triangle is iso to the query: exact + both lists
        assert_eq!(hits.exact, Some(EntryRef::Cache(0)));
        assert!(hits.direct.contains(&EntryRef::Cache(0)));
        assert!(hits.exclusion.contains(&EntryRef::Cache(0)));

        // supergraph query = edge: triangle ⊇ query → exclusion
        let hits = discover_hits(&edge, QueryKind::Supergraph, &cache, &window, m);
        assert!(hits.exclusion.contains(&EntryRef::Cache(0)));
    }

    #[test]
    fn kind_mismatch_is_ignored() {
        let edge = g(vec![0, 0], &[(0, 1)]);
        let (cache, window) = setup(vec![entry(edge.clone(), QueryKind::Supergraph)]);
        let m = Algorithm::Vf2Plus.matcher();
        let hits = discover_hits(&edge, QueryKind::Subgraph, &cache, &window, m);
        assert!(hits.direct.is_empty());
        assert!(hits.exclusion.is_empty());
        assert!(hits.exact.is_none());
    }

    #[test]
    fn window_entries_participate() {
        let edge = g(vec![0, 0], &[(0, 1)]);
        let cache = CacheManager::new(100, Policy::Pin);
        let mut window = Window::new(20);
        window.push(entry(edge.clone(), QueryKind::Subgraph));
        let m = Algorithm::Vf2Plus.matcher();
        let hits = discover_hits(&edge, QueryKind::Subgraph, &cache, &window, m);
        assert_eq!(hits.exact, Some(EntryRef::Window(0)));
        assert_eq!(
            resolve(EntryRef::Window(0), &cache, &window)
                .graph
                .edge_count(),
            1
        );
    }

    #[test]
    fn quick_filters_avoid_probes() {
        // label-disjoint entry: no SI probe should run
        let alien = g(vec![9, 9], &[(0, 1)]);
        let (cache, window) = setup(vec![entry(alien, QueryKind::Subgraph)]);
        let m = Algorithm::Vf2Plus.matcher();
        let q = g(vec![0, 0], &[(0, 1)]);
        let hits = discover_hits(&q, QueryKind::Subgraph, &cache, &window, m);
        assert_eq!(hits.probes, 0);
        assert!(hits.direct.is_empty() && hits.exclusion.is_empty());
    }

    #[test]
    fn parallel_probing_equals_sequential() {
        use gc_graph::generate::{bfs_extract, random_connected_graph};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        // a mixed population well above the parallel threshold
        let mut entries = Vec::new();
        for i in 0..40 {
            let n = rng.random_range(3..10usize);
            let g = random_connected_graph(&mut rng, n, 2, |r| r.random_range(0..3u16));
            let kind = if i % 3 == 0 {
                QueryKind::Supergraph
            } else {
                QueryKind::Subgraph
            };
            entries.push(entry(g, kind));
        }
        let (cache, mut window) = setup(entries);
        let probe_src = random_connected_graph(&mut rng, 12, 5, |r| r.random_range(0..3u16));
        window.push(entry(probe_src.clone(), QueryKind::Subgraph));
        let query = bfs_extract(&mut rng, &probe_src, 0, 4).expect("extractable");
        let m = Algorithm::Vf2Plus.matcher();
        for kind in [QueryKind::Subgraph, QueryKind::Supergraph] {
            let seq = discover_hits_with(&query, kind, &cache, &window, m, 1);
            for threads in [2usize, 4, 8] {
                let par = discover_hits_with(&query, kind, &cache, &window, m, threads);
                assert_eq!(seq, par, "{kind:?} with {threads} threads");
            }
        }
    }

    #[test]
    fn quarantined_entries_contribute_no_hits() {
        let edge = g(vec![0, 0], &[(0, 1)]);
        let mut quarantined = entry(edge.clone(), QueryKind::Subgraph);
        quarantined.quarantined = true;
        let (cache, window) = setup(vec![quarantined]);
        let m = Algorithm::Vf2Plus.matcher();
        let hits = discover_hits(&edge, QueryKind::Subgraph, &cache, &window, m);
        assert!(hits.direct.is_empty());
        assert!(hits.exclusion.is_empty());
        assert!(hits.exact.is_none());
        assert_eq!(hits.probes, 0, "no SI work on suspect knowledge");
    }

    #[test]
    fn exhausted_budget_skips_probes_soundly() {
        let edge = g(vec![0, 0], &[(0, 1)]);
        let (cache, window) = setup(vec![entry(edge.clone(), QueryKind::Subgraph)]);
        let m = Algorithm::Vf2Plus.matcher();
        let token = CancelToken::unlimited();
        token.cancel();
        let hits = discover_hits_budgeted(
            &edge,
            QueryKind::Subgraph,
            &cache,
            &window,
            m,
            1,
            Some(&token),
        );
        assert!(hits.direct.is_empty() && hits.exact.is_none());
        assert_eq!(hits.probes, 0);
        // a live token reproduces the unbudgeted result
        let live = CancelToken::unlimited();
        let budgeted = discover_hits_budgeted(
            &edge,
            QueryKind::Subgraph,
            &cache,
            &window,
            m,
            1,
            Some(&live),
        );
        let plain = discover_hits(&edge, QueryKind::Subgraph, &cache, &window, m);
        assert_eq!(budgeted, plain);
    }

    #[test]
    fn exact_match_costs_one_probe() {
        let edge = g(vec![0, 0], &[(0, 1)]);
        let (cache, window) = setup(vec![entry(edge.clone(), QueryKind::Subgraph)]);
        let m = Algorithm::Vf2Plus.matcher();
        let hits = discover_hits(&edge, QueryKind::Subgraph, &cache, &window, m);
        assert_eq!(hits.exact, Some(EntryRef::Cache(0)));
        assert_eq!(
            hits.probes, 1,
            "signature equality short-circuits the reverse probe"
        );
    }
}
