//! GraphCache+ (GC+) — a consistency-preserving semantic cache for
//! subgraph/supergraph queries over *dynamic* graph datasets.
//!
//! This crate is the paper's primary contribution. A [`GraphCachePlus`]
//! instance owns the dataset ([`gc_dataset::GraphStore`] + change log) and
//! the cache subsystems of Figure 1:
//!
//! * **Dataset Manager** — change log + [Algorithm 1](gc_dataset::LogAnalyzer)
//!   log analysis (in `gc-dataset`), consumed here by the Cache Validator;
//! * **Cache Manager** — [`cache::CacheManager`] (bounded store of
//!   [`entry::CachedQuery`] entries), [`window::Window`] admission buffer,
//!   [`stats`] statistics manager, [`policy`] replacement policies
//!   (LRU/LFU/PIN/PINC/HD), and the [`validator`] implementing the paper's
//!   two consistency models:
//!   [`config::CacheModel::Evi`] (purge on any change) and
//!   [`config::CacheModel::Con`] (Algorithm 2 per-graph
//!   validity refresh);
//! * **Query Processing Runtime** — [`processor`] (GC+sub / GC+super hit
//!   discovery against cached queries), [`pruner`] (candidate-set pruning,
//!   formulas (1)–(5) of §6, plus both §6.3 optimal cases), and
//!   [`runtime`] (the per-query pipeline with the paper's metrics: query
//!   time, overhead, sub-iso test counts, hit breakdown);
//! * **Method M** — any [`gc_subiso::MethodM`] (VF2, VF2+ or GQL).
//!
//! The answers produced are *exactly* those of cache-less Method M — the
//! paper's Theorems 3 and 6, enforced in this repo by integration and
//! property tests rather than trust.
//!
//! ```
//! use gc_core::{GcConfig, GraphCachePlus};
//! use gc_graph::LabeledGraph;
//! use gc_subiso::QueryKind;
//!
//! let g0 = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
//! let g1 = LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap();
//! let mut gc = GraphCachePlus::new(GcConfig::default(), vec![g0, g1]);
//!
//! let q = LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap();
//! let out = gc.execute(&q, QueryKind::Subgraph);
//! assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
//! ```

pub mod cache;
pub mod concurrent;
pub mod config;
pub mod entry;
pub mod fault;
pub mod metrics;
pub mod policy;
pub mod processor;
pub mod pruner;
pub mod runtime;
pub mod sharded;
pub mod stats;
pub mod system;
pub mod validator;
pub mod window;

pub use concurrent::ConcurrentGraphCache;
pub use config::{CacheModel, CandidateSource, GcConfig, MaintenanceMode, Policy};
pub use fault::{
    Fault, FaultInjector, FaultPlan, HealthSnapshot, QueryBudget, RequestDirective, RuntimeHealth,
};
pub use metrics::{AggregateMetrics, HitBreakdown, QueryMetrics};
pub use sharded::{
    RoutedOutcome, ShardStats, ShardStatsSnapshot, ShardedGraphCache, PANIC_FAILOVER_THRESHOLD,
};
pub use system::{baseline_execute, AuditReport, GraphCachePlus, QueryOutcome};
pub use validator::MaintenanceOutcome;
