//! The GraphCache+ facade — the system of Figure 1 wired together.
//!
//! [`GraphCachePlus`] owns the dataset (store + change log), the cache
//! subsystems and Method M. Each [`execute`](GraphCachePlus::execute) call
//! runs the paper's per-query pipeline:
//!
//! 1. **consistency maintenance** — if the dataset changed since the last
//!    query, EVI purges cache+window; CON runs Algorithms 1 & 2 (measured
//!    as *overhead*, with the CON-specific share tracked separately for
//!    Figure 6's "<1% of CON overhead" claim);
//! 2. **hit discovery** — GC+sub/GC+super probe the cached queries;
//! 3. **candidate pruning** — formulas (1)–(5) and the §6.3 optimal cases
//!    shrink `CS_M`;
//! 4. **verification** — Method M sub-iso tests the surviving candidates;
//!    steps 2–4 constitute the measured *query time*;
//! 5. **statistics + admission** — contributing entries are credited
//!    (PIN/PINC's R and C), the query enters the window, full windows
//!    flush into the cache under the replacement policy (more *overhead*).
//!
//! Dataset changes arrive through [`apply`](GraphCachePlus::apply) (single
//! operation) or [`with_dataset`](GraphCachePlus::with_dataset) (bulk —
//! e.g. a `gc_dataset::PlanExecutor` driving the paper's change plan).
//!
//! # Failure model
//!
//! The pipeline above assumes every stage runs to completion. Three
//! mechanisms keep the system useful when it does not:
//!
//! * **budgets** — [`execute`](GraphCachePlus::execute) materializes
//!   `config.budget` into a [`CancelToken`] threaded through probing and
//!   Method M; an exhausted budget yields a *sound partial* answer (its
//!   positives are verified) explicitly tagged in
//!   `QueryMetrics::degraded`, and the partial answer is never admitted
//!   into cache or window;
//! * **panic isolation** —
//!   [`execute_isolated`](GraphCachePlus::execute_isolated) /
//!   [`apply_isolated`](GraphCachePlus::apply_isolated) contain a panicking
//!   attempt, quarantine the cache entries the query may have touched, and
//!   retry once (injected faults are one-shot; a second panic falls back
//!   to cache-less [`baseline_execute`]). Quarantined entries contribute
//!   no hits until re-verified;
//! * **the consistency auditor** — [`audit`](GraphCachePlus::audit)
//!   re-verifies a seeded random sample of entries (plus every quarantined
//!   one) against the store and repairs or evicts divergent ones — the
//!   recovery path for silent corruption that validity bookkeeping cannot
//!   see.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gc_dataset::{ChangeLog, ChangeOp, DatasetError, GraphId, GraphStore, LogAnalyzer, LogCursor};
use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::{Interrupt, QueryKind};
use gc_telemetry::{Stage, StageSpans};

use crate::cache::CacheManager;
use crate::config::{CacheModel, CandidateSource, GcConfig, MaintenanceMode};
use crate::entry::CachedQuery;
use crate::fault::{FaultInjector, HealthSnapshot, QueryBudget, RuntimeHealth};
use crate::metrics::{AggregateMetrics, HitBreakdown, QueryMetrics};
use crate::policy;
use crate::processor::{discover_hits_budgeted, EntryRef};
use crate::pruner::{prune, Shortcut};
pub use crate::runtime::{baseline_execute, QueryOutcome};
use crate::validator::{self, MaintenanceOutcome};
use crate::window::Window;

/// Everything one consistency-maintenance pass reports back: its wall
/// time, the CON-specific share, the delta-repair tally, and the repair
/// span's nanoseconds (nonzero only when tracing a repair-mode pass).
#[derive(Debug, Clone, Copy, Default)]
struct MaintenanceResult {
    overhead: Duration,
    validation_time: Duration,
    outcome: MaintenanceOutcome,
    repair_nanos: u64,
}

/// What one [`GraphCachePlus::audit`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Entries re-verified against the store.
    pub sampled: usize,
    /// Audited entries whose valid claims matched ground truth.
    pub clean: usize,
    /// Divergent entries rebuilt in place (answer + full validity).
    pub repaired: usize,
    /// Divergent entries evicted instead of repaired.
    pub evicted: usize,
}

/// The GraphCache+ system.
#[derive(Debug)]
pub struct GraphCachePlus {
    config: GcConfig,
    store: GraphStore,
    log: ChangeLog,
    cursor: LogCursor,
    cache: CacheManager,
    window: Window,
    clock: u64,
    aggregate: AggregateMetrics,
    /// Postings-bitset candidate index; present iff `config.candidate_source`
    /// is [`CandidateSource::LabelIndex`]. Built once at construction and
    /// incrementally synced from the change log at each query — never
    /// rebuilt on the update path — so external bulk mutations via
    /// [`with_dataset`](Self::with_dataset) are picked up by log replay.
    label_index: Option<gc_dataset::LabelIndex>,
    /// Shared fault-tolerance counters.
    health: Arc<RuntimeHealth>,
    /// Deterministic fault injection, when enabled (tests / chaos driver).
    injector: Option<Arc<FaultInjector>>,
    /// Pipeline-stage wall time accumulated across queries and audits.
    /// All-zero unless `config.trace` is on.
    stage_totals: StageSpans,
}

impl GraphCachePlus {
    /// Builds a GC+ instance over an initial dataset.
    pub fn new(config: GcConfig, initial: Vec<LabeledGraph>) -> Self {
        let store = GraphStore::from_graphs(initial);
        let log = ChangeLog::new();
        let label_index = (config.candidate_source == CandidateSource::LabelIndex)
            .then(|| gc_dataset::LabelIndex::build(&store, &log));
        GraphCachePlus {
            cache: CacheManager::new(config.cache_capacity, config.policy),
            window: Window::new(config.window_capacity),
            config,
            log,
            cursor: LogCursor::default(),
            store,
            clock: 0,
            aggregate: AggregateMetrics::default(),
            label_index,
            health: Arc::new(RuntimeHealth::default()),
            injector: None,
            stage_totals: StageSpans::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GcConfig {
        &self.config
    }

    /// The postings-bitset candidate index, when it is the configured
    /// candidate source. Exposed so harnesses can assert the incremental
    /// maintenance path (via [`gc_dataset::LabelIndex::records_replayed`])
    /// and structural convergence.
    pub fn label_index(&self) -> Option<&gc_dataset::LabelIndex> {
        self.label_index.as_ref()
    }

    /// Read access to the dataset.
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// Installs a deterministic fault injector (tests / chaos driver).
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    /// The shared fault-tolerance counters.
    pub fn health(&self) -> Arc<RuntimeHealth> {
        Arc::clone(&self.health)
    }

    /// Point-in-time copy of the fault-tolerance counters.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        self.health.snapshot()
    }

    /// Entries currently under quarantine across cache and window.
    pub fn quarantined_entries(&self) -> usize {
        self.cache.quarantined_count() + self.window.quarantined_count()
    }

    /// Applies a single dataset change, logging it. Returns the assigned
    /// id for ADD, the affected id otherwise.
    pub fn apply(&mut self, op: ChangeOp) -> Result<GraphId, DatasetError> {
        if let Some(inj) = &self.injector {
            // fires *before* any mutation, so a contained panic leaves the
            // dataset untouched and the operation can simply be retried
            inj.before_update();
        }
        let result = match op {
            ChangeOp::Add(g) => {
                let id = self.store.add_graph(g);
                self.log.append(id, gc_dataset::OpType::Add);
                Ok(id)
            }
            ChangeOp::Del(id) => {
                self.store.delete(id)?;
                self.log.append(id, gc_dataset::OpType::Del);
                Ok(id)
            }
            ChangeOp::Ua { id, u, v } => {
                self.store.add_edge(id, u, v)?;
                self.log.append_edge(id, gc_dataset::OpType::Ua, u, v);
                Ok(id)
            }
            ChangeOp::Ur { id, u, v } => {
                self.store.remove_edge(id, u, v)?;
                self.log.append_edge(id, gc_dataset::OpType::Ur, u, v);
                Ok(id)
            }
        };
        if result.is_ok() {
            if let Some(bit) = self.injector.as_ref().and_then(|i| i.after_update()) {
                self.corrupt_one_entry(bit);
            }
        }
        result
    }

    /// [`apply`](Self::apply) behind a panic boundary: a panicking update
    /// (e.g. an injected fault) is contained and retried once from the
    /// unchanged pre-update state. A second panic propagates — a
    /// deterministic failure is a real bug, not a transient fault.
    pub fn apply_isolated(&mut self, op: ChangeOp) -> Result<GraphId, DatasetError> {
        let retry = op.clone();
        match catch_unwind(AssertUnwindSafe(|| self.apply(op))) {
            Ok(result) => result,
            Err(_) => {
                self.health.add_panics_recovered(1);
                self.apply(retry)
            }
        }
    }

    /// Injected silent corruption: flips answer bit `bit` (and forces the
    /// matching validity bit on) in the first resident entry — exactly the
    /// divergence the consistency auditor exists to catch.
    fn corrupt_one_entry(&mut self, bit: usize) {
        let entry = self.cache.get_mut(0).or_else(|| self.window.get_mut(0));
        if let Some(e) = entry {
            e.answer.set(bit, !e.answer.get(bit));
            e.cg_valid.set(bit, true);
        }
    }

    /// Grants bulk mutable access to `(store, log)` — the interface the
    /// paper's change-plan executor drives. Every mutation must be logged
    /// by the caller (PlanExecutor does), or the cache will not see it.
    pub fn with_dataset<R>(&mut self, f: impl FnOnce(&mut GraphStore, &mut ChangeLog) -> R) -> R {
        f(&mut self.store, &mut self.log)
    }

    /// Number of change-log records accumulated so far.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Cache + window occupancy `(cache, window)`.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.cache.len(), self.window.len())
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Aggregated metrics since construction (or the last reset).
    pub fn aggregate_metrics(&self) -> &AggregateMetrics {
        &self.aggregate
    }

    /// Pipeline-stage wall time accumulated across queries *and* audits
    /// since construction (or the last reset). All-zero unless
    /// [`GcConfig::trace`] is on.
    pub fn stage_totals(&self) -> StageSpans {
        self.stage_totals
    }

    /// Resets the aggregate metrics (e.g. after the paper's one-window
    /// warm-up before measurement starts).
    pub fn reset_metrics(&mut self) {
        self.aggregate = AggregateMetrics::default();
        self.stage_totals = StageSpans::default();
    }

    /// Step 1 of the pipeline: the delta-impact maintenance pass. Shared
    /// by query execution and the auditor (which must refresh validity
    /// bits before judging an entry's claims). Idempotent when the log has
    /// not moved.
    ///
    /// Under [`MaintenanceMode::Invalidate`] this is the paper's behavior:
    /// EVI purges, CON/CON-R clear every validity bit Algorithm 2 cannot
    /// prove intact. Under [`MaintenanceMode::Repair`] the same keep
    /// decision instead classifies each (entry, touched graph) pair as
    /// Unaffected / LocalRepair / Invalidate (see
    /// [`validator::refresh_entry_repair`]), splicing affected answer bits
    /// back to ground truth in place where the per-pass test budget allows.
    /// The tally lands in the returned [`MaintenanceResult`] and the shared
    /// health counters.
    fn maintain_consistency(&mut self) -> MaintenanceResult {
        let mut res = MaintenanceResult::default();
        if self.log.changed_since(self.cursor) {
            let t = Instant::now();
            let repair = self.config.maintenance == MaintenanceMode::Repair
                && self.config.model != CacheModel::Evi;
            let matcher = self.config.internal_matcher;
            let mut budget = self.config.repair_test_budget;
            match self.config.model {
                CacheModel::Evi => {
                    self.cache.clear();
                    self.window.clear();
                }
                CacheModel::Con => {
                    let counters = LogAnalyzer::analyze(self.log.records_since(self.cursor));
                    if repair {
                        let mut out = validator::refresh_all_repair(
                            self.cache.iter_mut(),
                            &counters,
                            &self.store,
                            matcher,
                            &mut budget,
                        );
                        out.merge(&validator::refresh_all_repair(
                            self.window.iter_mut(),
                            &counters,
                            &self.store,
                            matcher,
                            &mut budget,
                        ));
                        res.outcome = out;
                    } else {
                        let span = self.store.id_span();
                        validator::refresh_all(self.cache.iter_mut(), &counters, span);
                        validator::refresh_all(self.window.iter_mut(), &counters, span);
                    }
                }
                CacheModel::ConRetro => {
                    let effects =
                        gc_dataset::RetroAnalyzer::analyze(self.log.records_since(self.cursor));
                    if repair {
                        let mut out = validator::refresh_all_repair_retro(
                            self.cache.iter_mut(),
                            &effects,
                            &self.store,
                            matcher,
                            &mut budget,
                        );
                        out.merge(&validator::refresh_all_repair_retro(
                            self.window.iter_mut(),
                            &effects,
                            &self.store,
                            matcher,
                            &mut budget,
                        ));
                        res.outcome = out;
                    } else {
                        let span = self.store.id_span();
                        validator::refresh_all_retro(self.cache.iter_mut(), &effects, span);
                        validator::refresh_all_retro(self.window.iter_mut(), &effects, span);
                    }
                }
            }
            self.cursor = self.log.head();
            let elapsed = t.elapsed();
            if self.config.model != CacheModel::Evi {
                res.validation_time = elapsed;
            }
            res.overhead = elapsed;
            if repair && self.config.trace {
                res.repair_nanos = elapsed.as_nanos() as u64;
            }
            let o = &res.outcome;
            if o.repairs_applied > 0 {
                self.health.add_repairs_applied(o.repairs_applied);
            }
            if o.invalidations_avoided > 0 {
                self.health
                    .add_invalidations_avoided(o.invalidations_avoided);
            }
            if o.repair_fallbacks > 0 {
                self.health.add_repair_fallbacks(o.repair_fallbacks);
            }
        }
        res
    }

    /// Executes a query through the full GC+ pipeline under the
    /// configured budget (`config.budget`; unlimited by default).
    pub fn execute(&mut self, query: &LabeledGraph, kind: QueryKind) -> QueryOutcome {
        self.execute_budgeted(query, kind, self.config.budget)
    }

    /// Executes a query under an explicit per-query budget. On budget
    /// exhaustion the returned answer is a *sound partial* result (every
    /// positive verified, some candidates unexamined), tagged in
    /// `metrics.degraded`; partial answers never enter cache or window.
    pub fn execute_budgeted(
        &mut self,
        query: &LabeledGraph,
        kind: QueryKind,
        budget: QueryBudget,
    ) -> QueryOutcome {
        // the deadline clock starts before injected delays and maintenance
        // — everything a caller would experience counts against it
        let token = budget.token();
        if let Some(inj) = &self.injector {
            inj.before_query();
        }
        self.clock += 1;
        let now = self.clock;

        // ---- step 1: consistency maintenance (overhead) ----
        let maintenance = self.maintain_consistency();
        let mut overhead = maintenance.overhead;
        let validation_time = maintenance.validation_time;

        // ---- steps 2-4: query execution (query time) ----
        let t_query = Instant::now();
        let trace = self.config.trace;
        let mut spans = StageSpans::default();
        if maintenance.repair_nanos > 0 {
            spans.record(Stage::Repair, maintenance.repair_nanos);
        }
        // CS_M: the postings index's output (the default) or the whole
        // live dataset (the paper's SI-method deployment). Both are sound
        // supersets of the answer set; the pruner's optimal-case checks
        // stay correct against either — graphs outside a sound filter can
        // never be answers. Index candidates already passed the full
        // signature check (the folded pre-filter), so the scan below runs
        // with Method M's per-candidate pre-filter off: one pass total.
        let index_backed = self.label_index.is_some();
        let csm = match self.label_index.as_mut() {
            Some(idx) => {
                let t_prefilter = trace.then(Instant::now);
                idx.sync(&self.store, &self.log);
                let cands = match kind {
                    QueryKind::Subgraph => idx.subgraph_candidates(query),
                    QueryKind::Supergraph => idx.supergraph_candidates(query),
                };
                if let Some(t) = t_prefilter {
                    spans.record(Stage::Prefilter, t.elapsed().as_nanos() as u64);
                }
                cands
            }
            None => self.store.live_bitset(),
        };
        let candidate_size = csm.count_ones() as u64;
        let matcher = self.config.internal_matcher.matcher();
        let budget_token = (!budget.is_unlimited()).then_some(&token);
        // Hit discovery under the token: an exhausted budget skips the
        // remaining probes, which only weakens pruning — every hit found
        // is real, so discovery never degrades the answer by itself.
        let t_probe = trace.then(Instant::now);
        let hits = discover_hits_budgeted(
            query,
            kind,
            &self.cache,
            &self.window,
            matcher,
            self.config.probe_parallelism,
            budget_token,
        );
        if let Some(t) = t_probe {
            spans.record(Stage::HitProbe, t.elapsed().as_nanos() as u64);
        }
        let outcome = prune(&csm, &hits, &self.cache, &self.window, &csm);

        let (answer, tests, prefilter_skips, degraded, panics_recovered) =
            if outcome.candidates.is_empty() {
                (outcome.direct_answers.clone(), 0, 0, None, 0)
            } else {
                let t_scan = trace.then(Instant::now);
                let mut method = self.config.method.with_timing(trace);
                if index_backed {
                    // the index already applied the signature pre-filter;
                    // re-running it per candidate would be a second pass
                    method = method.with_prefilter(false);
                }
                let m = method.run_budgeted(query, kind, &self.store, &outcome.candidates, &token);
                if let Some(t) = t_scan {
                    spans.record(Stage::CandidateScan, t.elapsed().as_nanos() as u64);
                    // Prefilter/Verify are the scan's inner stages, summed
                    // across workers — they can exceed CandidateScan's wall
                    // time on a parallel scan.
                    spans.record(Stage::Prefilter, m.prefilter_nanos);
                    spans.record(Stage::Verify, m.verify_nanos);
                }
                let mut answer = m.answer;
                answer.union_with(&outcome.direct_answers);
                (
                    answer,
                    m.tests,
                    m.prefilter_skips,
                    m.interrupted,
                    m.panics_recovered,
                )
            };
        let query_time = t_query.elapsed();

        // ---- step 5: statistics + admission (overhead) ----
        let t_admit = Instant::now();
        // Per-saved-test cost proxy ∝ query size; dataset-graph sizes are
        // iid across hits, so they fold into a constant that does not
        // affect PINC's ranking.
        let per_test_cost = (query.vertex_count() + query.edge_count()) as f64;
        for &(r, saved) in &outcome.attribution {
            let e = match r {
                EntryRef::Cache(i) => self.cache.get_mut(i),
                EntryRef::Window(i) => self.window.get_mut(i),
            }
            .expect("hit refs are valid until admission");
            e.credit(saved, saved as f64 * per_test_cost, now);
        }
        if degraded.is_some() {
            // a partial answer must never become cached knowledge: skip
            // the twin refresh and admission entirely
        } else if let Some(r) = hits.exact {
            // An isomorphic twin is already cached: refresh it in place
            // with the just-computed answer (full validity again) instead
            // of admitting a duplicate.
            let span = self.store.id_span();
            let e = match r {
                EntryRef::Cache(i) => self.cache.get_mut(i),
                EntryRef::Window(i) => self.window.get_mut(i),
            }
            .expect("hit refs are valid until admission");
            e.answer = answer.clone();
            e.cg_valid = BitSet::all_set(span);
            e.quarantined = false;
        } else {
            let entry = CachedQuery::new(
                query.clone(),
                kind,
                answer.clone(),
                self.store.id_span(),
                now,
            );
            if let Some(batch) = self.window.push(entry) {
                self.cache.admit_batch(batch);
            }
        }
        // TTL trigger: entries idle past the configured tick budget leave
        // on the admission sweep, independent of the capacity trigger
        if self.config.entry_ttl > 0 {
            let ttl = self.config.entry_ttl;
            self.cache.evict_where(|e| policy::expired(e, now, ttl));
        }
        let admit_elapsed = t_admit.elapsed();
        overhead += admit_elapsed;
        if trace {
            spans.record(Stage::Admission, admit_elapsed.as_nanos() as u64);
        }

        if degraded.is_some() {
            self.health.add_degraded_query();
        }
        if panics_recovered > 0 {
            self.health.add_panics_recovered(panics_recovered);
        }
        let metrics = QueryMetrics {
            query_time,
            overhead_time: overhead,
            validation_time,
            subiso_tests: tests,
            prefilter_skips,
            tests_saved: candidate_size.saturating_sub(tests),
            candidate_size,
            hits: HitBreakdown {
                direct_hits: hits.direct.len() as u32,
                exclusion_hits: hits.exclusion.len() as u32,
                exact_match: hits.exact.is_some(),
                exact_shortcut: matches!(outcome.shortcut, Some(Shortcut::ExactMatch(_))),
                empty_shortcut: matches!(outcome.shortcut, Some(Shortcut::EmptyResult(_))),
            },
            degraded,
            panics_recovered,
            repairs_applied: maintenance.outcome.repairs_applied,
            invalidations_avoided: maintenance.outcome.invalidations_avoided,
            repair_fallbacks: maintenance.outcome.repair_fallbacks,
            spans,
        };
        self.aggregate.record(&metrics);
        self.stage_totals.merge(&spans);
        QueryOutcome { answer, metrics }
    }

    /// [`execute`](Self::execute) behind a panic boundary. A panicking
    /// attempt (injected fault, poisoned entry, matcher bug) is contained:
    /// the entries the query plausibly touched are quarantined, then the
    /// query is retried once — quarantined knowledge excluded. If the
    /// retry *also* panics, the cache is bypassed entirely and the query
    /// falls back to cache-less [`baseline_execute`]; if even that fails,
    /// an explicitly degraded empty outcome is returned. This method never
    /// panics and never returns a silently wrong answer.
    pub fn execute_isolated(&mut self, query: &LabeledGraph, kind: QueryKind) -> QueryOutcome {
        self.execute_isolated_budgeted(query, kind, self.config.budget)
    }

    /// [`execute_isolated`](Self::execute_isolated) under an explicit
    /// per-query budget — the networked service materializes each
    /// request's remaining deadline through this entry point.
    pub fn execute_isolated_budgeted(
        &mut self,
        query: &LabeledGraph,
        kind: QueryKind,
        budget: QueryBudget,
    ) -> QueryOutcome {
        match catch_unwind(AssertUnwindSafe(|| {
            self.execute_budgeted(query, kind, budget)
        })) {
            Ok(out) => out,
            Err(_) => {
                self.health.add_panics_recovered(1);
                self.quarantine_related(query, kind);
                match catch_unwind(AssertUnwindSafe(|| {
                    self.execute_budgeted(query, kind, budget)
                })) {
                    Ok(mut out) => {
                        // the retry's answer is exact (or already tagged by
                        // its own budget); only the panic count needs fixing
                        out.metrics.panics_recovered += 1;
                        self.aggregate.panics_recovered += 1;
                        out
                    }
                    Err(_) => {
                        self.health.add_panics_recovered(1);
                        self.degraded_fallback(query, kind)
                    }
                }
            }
        }
    }

    /// Last-resort path after repeated panics: answer from the store
    /// alone. The baseline answer is exact, so it is not tagged degraded;
    /// only a panic in the baseline itself produces a degraded empty
    /// outcome.
    fn degraded_fallback(&mut self, query: &LabeledGraph, kind: QueryKind) -> QueryOutcome {
        let baseline = catch_unwind(AssertUnwindSafe(|| {
            baseline_execute(&self.store, &self.config.method, query, kind)
        }));
        let mut out = match baseline {
            Ok(out) => out,
            Err(_) => {
                self.health.add_panics_recovered(1);
                self.health.add_degraded_query();
                QueryOutcome {
                    answer: BitSet::new(),
                    metrics: QueryMetrics {
                        degraded: Some(Interrupt::Panic),
                        ..QueryMetrics::default()
                    },
                }
            }
        };
        out.metrics.panics_recovered += 2;
        self.aggregate.record(&out.metrics);
        out
    }

    /// Quarantines every entry the given query could have interacted with
    /// (same kind, signature-compatible in either containment direction).
    /// Returns how many entries were newly quarantined.
    pub fn quarantine_related(&mut self, query: &LabeledGraph, kind: QueryKind) -> usize {
        let mut count = 0u64;
        let entries = self.cache.iter_mut().chain(self.window.iter_mut());
        for e in entries {
            if e.quarantined || e.kind != kind {
                continue;
            }
            if e.may_contain_query(query) || e.may_be_contained_in_query(query) {
                e.quarantined = true;
                count += 1;
            }
        }
        self.health.add_quarantined(count);
        count as usize
    }

    /// The consistency auditor. Re-verifies a seeded random sample of
    /// resident entries (every quarantined entry is always audited)
    /// against the live store using Method M, and compares each entry's
    /// *valid claims* — answer bits it currently holds validity for —
    /// with ground truth. Divergent entries are repaired in place
    /// (`repair = true`: answer rebuilt, validity restored) or evicted
    /// (`repair = false`). Clean and repaired entries leave quarantine.
    ///
    /// Validity bits are refreshed first, so entries that merely lag the
    /// change log are *not* misdiagnosed as divergent — the auditor only
    /// flags corruption the consistency machinery cannot see.
    pub fn audit_with(&mut self, sample_rate: f64, seed: u64, repair: bool) -> AuditReport {
        let t_audit = self.config.trace.then(Instant::now);
        let maintenance = self.maintain_consistency();
        if maintenance.repair_nanos > 0 {
            self.stage_totals
                .record(Stage::Repair, maintenance.repair_nanos);
        }
        let mut report = AuditReport::default();
        let live = self.store.live_bitset();
        let span = self.store.id_span();
        let mut rng = seed | 1; // xorshift state must be nonzero
        let store = &self.store;
        let method = &self.config.method;
        let mut evict_any = false;
        for e in self.cache.iter_mut().chain(self.window.iter_mut()) {
            let sampled =
                e.quarantined || sample_rate >= 1.0 || xorshift_f64(&mut rng) < sample_rate;
            if !sampled {
                continue;
            }
            report.sampled += 1;
            let truth = method.run(&e.graph, e.kind, store, &live).answer;
            let valid_live = e.cg_valid.intersection(&live);
            let claimed = e.answer.intersection(&valid_live);
            let actual = truth.intersection(&valid_live);
            if claimed == actual {
                report.clean += 1;
                e.quarantined = false;
            } else if repair {
                e.answer = truth;
                e.cg_valid = BitSet::all_set(span);
                e.quarantined = false;
                report.repaired += 1;
            } else {
                // mark for the eviction sweep below
                e.quarantined = true;
                evict_any = true;
            }
        }
        if evict_any {
            let evicted = self.cache.evict_where(|e| e.quarantined)
                + self.window.evict_where(|e| e.quarantined);
            report.evicted = evicted;
        }
        self.health.add_audit_repairs(report.repaired as u64);
        self.health.add_audit_evictions(report.evicted as u64);
        if let Some(t) = t_audit {
            self.stage_totals
                .record(Stage::Audit, t.elapsed().as_nanos() as u64);
        }
        report
    }

    /// [`audit_with`](Self::audit_with) in repair mode — the default
    /// recovery policy.
    pub fn audit(&mut self, sample_rate: f64, seed: u64) -> AuditReport {
        self.audit_with(sample_rate, seed, true)
    }
}

/// Minimal xorshift64* step mapped to `[0, 1)` — the auditor's sampling
/// coin. Deterministic for a given seed, no external RNG dependency in
/// this crate.
fn xorshift_f64(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    fn dataset() -> Vec<LabeledGraph> {
        vec![
            g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]), // 0: triangle
            g(vec![0, 0, 0], &[(0, 1), (1, 2)]),         // 1: path3
            g(vec![0, 0], &[(0, 1)]),                    // 2: edge
            g(vec![1, 1], &[(0, 1)]),                    // 3: labeled edge
        ]
    }

    fn config() -> GcConfig {
        GcConfig {
            cache_capacity: 10,
            window_capacity: 2,
            ..GcConfig::default()
        }
    }

    #[test]
    fn first_query_scans_the_index_candidates() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        // the postings index excludes graph 3 (labels {1,1}) before the
        // scan; the three label-0 graphs are tested
        assert_eq!(out.metrics.candidate_size, 3);
        assert_eq!(out.metrics.subiso_tests, 3);
        assert_eq!(out.metrics.tests_saved, 0);
        assert_eq!(gc.occupancy(), (0, 1));
    }

    #[test]
    fn paper_scan_config_tests_every_live_graph() {
        let cfg = GcConfig {
            candidate_source: CandidateSource::LiveScan,
            ..config()
        };
        let mut gc = GraphCachePlus::new(cfg, dataset());
        assert!(gc.label_index().is_none());
        let q = g(vec![0, 0], &[(0, 1)]);
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(out.metrics.candidate_size, 4, "CS_M is the live set");
        assert_eq!(out.metrics.subiso_tests, 4);
    }

    #[test]
    fn repeated_query_is_exact_match_with_zero_tests() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        let first = gc.execute(&q, QueryKind::Subgraph);
        let second = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(first.answer, second.answer);
        assert_eq!(second.metrics.subiso_tests, 0);
        assert!(second.metrics.hits.exact_shortcut);
        // the twin was refreshed in place, not duplicated
        assert_eq!(gc.occupancy(), (0, 1));
    }

    #[test]
    fn direct_hit_prunes_answers() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        // prime with path3 (answers: triangle 0, path3 1)
        let p3 = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
        gc.execute(&p3, QueryKind::Subgraph);
        // edge ⊆ path3: direct hit makes graphs 0,1 test-free
        let q = g(vec![0, 0], &[(0, 1)]);
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(out.metrics.subiso_tests < 4);
        assert!(out.metrics.hits.direct_hits >= 1);
    }

    #[test]
    fn empty_answer_shortcut_fires() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        // no dataset graph contains two 1-1 edges in a path: query 1-1-1
        let q1 = g(vec![1, 1, 1], &[(0, 1), (1, 2)]);
        let first = gc.execute(&q1, QueryKind::Subgraph);
        assert!(first.answer.is_empty());
        // a supergraph of q1 must also be empty — and provably so
        let q2 = g(vec![1, 1, 1, 0], &[(0, 1), (1, 2), (2, 3)]);
        let out = gc.execute(&q2, QueryKind::Subgraph);
        assert!(out.answer.is_empty());
        assert!(out.metrics.hits.empty_shortcut);
        assert_eq!(out.metrics.subiso_tests, 0);
    }

    #[test]
    fn con_model_survives_changes_with_correct_answers() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        gc.execute(&q, QueryKind::Subgraph);
        // UA on graph 3 (labels 1-1): does not affect q's positive answers
        gc.apply(ChangeOp::Add(g(vec![0, 0, 0], &[(0, 1)])))
            .unwrap();
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(
            out.answer.iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2, 4],
            "new graph 4 contains a 0-0 edge"
        );
    }

    #[test]
    fn repair_mode_preserves_entries_a_ur_would_invalidate() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        gc.execute(&q, QueryKind::Subgraph);
        // UR an edge of triangle 0: Algorithm 2 would invalidate its bit
        // (UR-exclusive on an answered graph), but graph 0 still contains
        // a 0-0 edge — the repair pass proves it and keeps the knowledge
        gc.apply(ChangeOp::Ur { id: 0, u: 0, v: 1 }).unwrap();
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(out.metrics.invalidations_avoided > 0);
        assert_eq!(out.metrics.repairs_applied, 0, "bit value was already true");
        assert_eq!(out.metrics.repair_fallbacks, 0);
        assert!(
            out.metrics.hits.exact_shortcut,
            "the repaired entry serves the repeat exactly"
        );
        assert!(gc.aggregate_metrics().invalidations_avoided > 0);
    }

    #[test]
    fn repair_mode_splices_a_changed_bit_to_ground_truth() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let tri = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let first = gc.execute(&tri, QueryKind::Subgraph);
        assert_eq!(first.answer.iter_ones().collect::<Vec<_>>(), vec![0]);
        // break graph 0's triangle: the cached bit is now stale; repair
        // flips it in place instead of discarding the entry
        gc.apply(ChangeOp::Ur { id: 0, u: 0, v: 1 }).unwrap();
        let out = gc.execute(&tri, QueryKind::Subgraph);
        assert!(out.answer.is_empty(), "no live graph contains a triangle");
        assert_eq!(out.metrics.repairs_applied, 1);
        assert!(out.metrics.invalidations_avoided > 0);
        assert!(
            out.metrics.hits.exact_shortcut,
            "the spliced entry still serves exactly"
        );
    }

    #[test]
    fn exhausted_repair_budget_falls_back_to_invalidation() {
        let cfg = GcConfig {
            repair_test_budget: 0,
            ..config()
        };
        let mut gc = GraphCachePlus::new(cfg, dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        gc.execute(&q, QueryKind::Subgraph);
        gc.apply(ChangeOp::Ur { id: 0, u: 0, v: 1 }).unwrap();
        let out = gc.execute(&q, QueryKind::Subgraph);
        // answers stay exact — the cleared bit is recomputed by the scan
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(out.metrics.repair_fallbacks > 0);
        assert_eq!(out.metrics.invalidations_avoided, 0);
    }

    #[test]
    fn ttl_trigger_expires_idle_entries() {
        let cfg = GcConfig {
            entry_ttl: 2,
            window_capacity: 1, // entries reach the cache immediately
            ..config()
        };
        let mut gc = GraphCachePlus::new(cfg, dataset());
        gc.execute(&g(vec![1, 1], &[(0, 1)]), QueryKind::Subgraph);
        assert_eq!(gc.occupancy(), (1, 0));
        // three unrelated queries age the idle entry past its 2-tick ttl
        for _ in 0..3 {
            gc.execute(&g(vec![0, 0], &[(0, 1)]), QueryKind::Subgraph);
        }
        let (cache, _) = gc.occupancy();
        assert_eq!(cache, 1, "only the live entry remains");
        let out = gc.execute(&g(vec![1, 1], &[(0, 1)]), QueryKind::Subgraph);
        assert!(
            !out.metrics.hits.exact_match,
            "the idle entry was expired by the ttl sweep"
        );
    }

    #[test]
    fn evi_purges_on_any_change() {
        let cfg = GcConfig {
            model: CacheModel::Evi,
            cache_capacity: 10,
            window_capacity: 2,
            ..GcConfig::default()
        };
        let mut gc = GraphCachePlus::new(cfg, dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(gc.occupancy(), (0, 1));
        gc.apply(ChangeOp::Del(3)).unwrap();
        let out = gc.execute(&q, QueryKind::Subgraph);
        // cache was purged: full scan of the 3 live graphs, no exact match
        assert_eq!(out.metrics.subiso_tests, 3);
        assert!(!out.metrics.hits.exact_match);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn supergraph_queries_work_end_to_end() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        // supergraph query: find dataset graphs contained in the triangle
        let tri = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let out = gc.execute(&tri, QueryKind::Supergraph);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        // repeat → exact shortcut
        let out2 = gc.execute(&tri, QueryKind::Supergraph);
        assert_eq!(out2.answer, out.answer);
        assert!(out2.metrics.hits.exact_shortcut);
    }

    #[test]
    fn apply_propagates_errors() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        assert!(gc.apply(ChangeOp::Del(99)).is_err());
        assert!(gc.apply(ChangeOp::Ua { id: 0, u: 0, v: 1 }).is_err()); // exists
        assert!(gc.apply(ChangeOp::Ur { id: 2, u: 0, v: 9 }).is_err());
        // log only contains successful ops
        assert_eq!(gc.log.len(), 0);
    }

    #[test]
    fn metrics_aggregate_and_reset() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        gc.execute(&q, QueryKind::Subgraph);
        gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(gc.aggregate_metrics().queries, 2);
        assert_eq!(gc.aggregate_metrics().exact_shortcuts, 1);
        gc.reset_metrics();
        assert_eq!(gc.aggregate_metrics().queries, 0);
    }

    #[test]
    fn window_flush_populates_cache() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        // window capacity 2: two distinct queries flush into cache
        gc.execute(&g(vec![0, 0], &[(0, 1)]), QueryKind::Subgraph);
        gc.execute(&g(vec![1, 1], &[(0, 1)]), QueryKind::Subgraph);
        assert_eq!(gc.occupancy(), (2, 0));
    }

    /// Runs `f` with the default panic hook silenced (for tests that
    /// deliberately contain panics).
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(prev);
        r
    }

    #[test]
    fn exhausted_test_cap_degrades_without_admission() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        let oracle = baseline_execute(gc.store(), &gc.config().method, &q, QueryKind::Subgraph);
        let out = gc.execute_budgeted(
            &q,
            QueryKind::Subgraph,
            QueryBudget {
                deadline: None,
                max_tests: Some(1),
            },
        );
        assert_eq!(out.metrics.degraded, Some(Interrupt::TestCap));
        assert!(out.metrics.subiso_tests <= 1);
        assert!(
            out.answer.is_subset_of(&oracle.answer),
            "partial answers are sound: verified positives only"
        );
        assert_eq!(gc.occupancy(), (0, 0), "partial answers are not admitted");
        assert_eq!(gc.aggregate_metrics().degraded_queries, 1);
        assert_eq!(gc.health_snapshot().degraded_queries, 1);
        // an unbudgeted rerun is exact and cacheable again
        let full = gc.execute(&q, QueryKind::Subgraph);
        assert!(full.metrics.degraded.is_none());
        assert_eq!(full.answer, oracle.answer);
        assert_eq!(gc.occupancy(), (0, 1));
    }

    #[test]
    fn injected_query_panic_is_contained_and_retried() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        gc.set_fault_injector(Arc::new(FaultInjector::new(
            "panic-query@1".parse().unwrap(),
        )));
        let q = g(vec![0, 0], &[(0, 1)]);
        let oracle = baseline_execute(gc.store(), &gc.config().method, &q, QueryKind::Subgraph);
        let out = quiet_panics(|| gc.execute_isolated(&q, QueryKind::Subgraph));
        assert_eq!(
            out.answer, oracle.answer,
            "retry produced the oracle answer"
        );
        assert!(out.metrics.degraded.is_none());
        assert_eq!(out.metrics.panics_recovered, 1);
        assert_eq!(gc.health_snapshot().panics_recovered, 1);
    }

    #[test]
    fn injected_update_panic_is_contained_and_retried() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        gc.set_fault_injector(Arc::new(FaultInjector::new(
            "panic-update@1".parse().unwrap(),
        )));
        let added = quiet_panics(|| {
            gc.apply_isolated(ChangeOp::Add(g(vec![0, 0, 0], &[(0, 1)])))
                .unwrap()
        });
        assert_eq!(added, 4);
        assert_eq!(gc.health_snapshot().panics_recovered, 1);
        // the retried ADD is fully visible to queries
        let out = gc.execute(&g(vec![0, 0], &[(0, 1)]), QueryKind::Subgraph);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2, 4]);
    }

    #[test]
    fn auditor_repairs_injected_corruption() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        gc.execute(&q, QueryKind::Subgraph);
        // corrupt the resident entry's answer bit for graph 0 right after
        // the next (unrelated) update commits
        gc.set_fault_injector(Arc::new(FaultInjector::new("corrupt@1:0".parse().unwrap())));
        gc.apply(ChangeOp::Add(g(vec![1, 1, 1], &[(0, 1), (1, 2)])))
            .unwrap();
        let report = gc.audit(1.0, 42);
        assert_eq!(report.repaired, 1);
        assert_eq!(report.evicted, 0);
        assert_eq!(gc.quarantined_entries(), 0);
        assert_eq!(gc.health_snapshot().audit_repairs, 1);
        // post-repair the entry serves the oracle answer again
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert!(out.metrics.hits.exact_match);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn auditor_evicts_divergent_entries_when_asked() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        gc.execute(&q, QueryKind::Subgraph);
        gc.set_fault_injector(Arc::new(FaultInjector::new("corrupt@1:0".parse().unwrap())));
        gc.apply(ChangeOp::Add(g(vec![1, 1], &[(0, 1)]))).unwrap();
        let report = gc.audit_with(1.0, 7, false);
        assert_eq!(report.evicted, 1);
        assert_eq!(report.repaired, 0);
        assert_eq!(gc.occupancy(), (0, 0));
        assert_eq!(gc.quarantined_entries(), 0);
        assert_eq!(gc.health_snapshot().audit_evictions, 1);
    }

    #[test]
    fn quarantined_entries_stop_serving_until_audited() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(gc.quarantine_related(&q, QueryKind::Subgraph), 1);
        assert_eq!(gc.quarantined_entries(), 1);
        assert_eq!(gc.health_snapshot().quarantined_entries, 1);
        // the quarantined twin serves no hits: all index candidates are
        // re-tested, no exact match
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert!(!out.metrics.hits.exact_match);
        assert_eq!(out.metrics.subiso_tests, 3);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        // the auditor always re-verifies quarantined entries, even at
        // sampling rate zero, and clears the clean ones
        let report = gc.audit(0.0, 9);
        assert_eq!(report.sampled, 1);
        assert_eq!(report.clean, 1);
        assert_eq!(gc.quarantined_entries(), 0);
    }

    #[test]
    fn trace_flag_populates_stage_spans() {
        let mut gc = GraphCachePlus::new(
            GcConfig {
                trace: true,
                ..config()
            },
            dataset(),
        );
        let q = g(vec![0, 0], &[(0, 1)]);
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert!(out.metrics.spans.get(Stage::HitProbe) > 0);
        assert!(out.metrics.spans.get(Stage::CandidateScan) > 0);
        assert!(out.metrics.spans.get(Stage::Verify) > 0);
        assert!(
            out.metrics.spans.get(Stage::Prefilter) > 0,
            "index sync + postings lookup is attributed to the prefilter stage"
        );
        assert!(out.metrics.spans.get(Stage::Admission) > 0);
        assert_eq!(out.metrics.spans.get(Stage::Audit), 0);
        gc.audit(1.0, 3);
        let totals = gc.stage_totals();
        assert!(totals.get(Stage::Audit) > 0, "audit passes are timed too");
        assert!(totals.get(Stage::HitProbe) >= out.metrics.spans.get(Stage::HitProbe));
        assert_eq!(
            gc.aggregate_metrics().span_totals.get(Stage::CandidateScan),
            out.metrics.spans.get(Stage::CandidateScan)
        );
        gc.reset_metrics();
        assert_eq!(gc.stage_totals(), StageSpans::default());
    }

    #[test]
    fn untraced_queries_record_no_spans() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(out.metrics.spans, StageSpans::default());
        gc.audit(1.0, 3);
        assert_eq!(gc.stage_totals(), StageSpans::default());
    }

    #[test]
    fn repeated_panic_falls_back_to_baseline() {
        // two consecutive injected panics: the isolated path must bypass
        // the cache and still return the exact store answer
        let mut gc = GraphCachePlus::new(config(), dataset());
        gc.set_fault_injector(Arc::new(FaultInjector::new(
            "panic-query@1;panic-query@2".parse().unwrap(),
        )));
        let q = g(vec![0, 0], &[(0, 1)]);
        let oracle = baseline_execute(gc.store(), &gc.config().method, &q, QueryKind::Subgraph);
        let out = quiet_panics(|| gc.execute_isolated(&q, QueryKind::Subgraph));
        assert_eq!(out.answer, oracle.answer);
        assert!(out.metrics.degraded.is_none(), "baseline answers are exact");
        assert_eq!(out.metrics.panics_recovered, 2);
        assert_eq!(gc.health_snapshot().panics_recovered, 2);
    }
}
