//! The GraphCache+ facade — the system of Figure 1 wired together.
//!
//! [`GraphCachePlus`] owns the dataset (store + change log), the cache
//! subsystems and Method M. Each [`execute`](GraphCachePlus::execute) call
//! runs the paper's per-query pipeline:
//!
//! 1. **consistency maintenance** — if the dataset changed since the last
//!    query, EVI purges cache+window; CON runs Algorithms 1 & 2 (measured
//!    as *overhead*, with the CON-specific share tracked separately for
//!    Figure 6's "<1% of CON overhead" claim);
//! 2. **hit discovery** — GC+sub/GC+super probe the cached queries;
//! 3. **candidate pruning** — formulas (1)–(5) and the §6.3 optimal cases
//!    shrink `CS_M`;
//! 4. **verification** — Method M sub-iso tests the surviving candidates;
//!    steps 2–4 constitute the measured *query time*;
//! 5. **statistics + admission** — contributing entries are credited
//!    (PIN/PINC's R and C), the query enters the window, full windows
//!    flush into the cache under the replacement policy (more *overhead*).
//!
//! Dataset changes arrive through [`apply`](GraphCachePlus::apply) (single
//! operation) or [`with_dataset`](GraphCachePlus::with_dataset) (bulk —
//! e.g. a `gc_dataset::PlanExecutor` driving the paper's change plan).

use std::time::{Duration, Instant};

use gc_dataset::{ChangeLog, ChangeOp, DatasetError, GraphId, GraphStore, LogAnalyzer, LogCursor};
use gc_graph::LabeledGraph;
use gc_subiso::QueryKind;

use crate::cache::CacheManager;
use crate::config::{CacheModel, GcConfig};
use crate::entry::CachedQuery;
use crate::metrics::{AggregateMetrics, HitBreakdown, QueryMetrics};
use crate::processor::{discover_hits_with, EntryRef};
use crate::pruner::{prune, Shortcut};
pub use crate::runtime::{baseline_execute, QueryOutcome};
use crate::validator;
use crate::window::Window;

/// The GraphCache+ system.
#[derive(Debug)]
pub struct GraphCachePlus {
    config: GcConfig,
    store: GraphStore,
    log: ChangeLog,
    cursor: LogCursor,
    cache: CacheManager,
    window: Window,
    clock: u64,
    aggregate: AggregateMetrics,
    /// FTV filter index; present iff `config.use_ftv_filter`. Lazily
    /// synced from the change log at each query, so external bulk
    /// mutations via [`with_dataset`](Self::with_dataset) are picked up.
    ftv_index: Option<gc_dataset::LabelIndex>,
}

impl GraphCachePlus {
    /// Builds a GC+ instance over an initial dataset.
    pub fn new(config: GcConfig, initial: Vec<LabeledGraph>) -> Self {
        let store = GraphStore::from_graphs(initial);
        let log = ChangeLog::new();
        let ftv_index = config
            .use_ftv_filter
            .then(|| gc_dataset::LabelIndex::build(&store, &log));
        GraphCachePlus {
            cache: CacheManager::new(config.cache_capacity, config.policy),
            window: Window::new(config.window_capacity),
            config,
            log,
            cursor: LogCursor::default(),
            store,
            clock: 0,
            aggregate: AggregateMetrics::default(),
            ftv_index,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GcConfig {
        &self.config
    }

    /// Read access to the dataset.
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// Applies a single dataset change, logging it. Returns the assigned
    /// id for ADD, the affected id otherwise.
    pub fn apply(&mut self, op: ChangeOp) -> Result<GraphId, DatasetError> {
        match op {
            ChangeOp::Add(g) => {
                let id = self.store.add_graph(g);
                self.log.append(id, gc_dataset::OpType::Add);
                Ok(id)
            }
            ChangeOp::Del(id) => {
                self.store.delete(id)?;
                self.log.append(id, gc_dataset::OpType::Del);
                Ok(id)
            }
            ChangeOp::Ua { id, u, v } => {
                self.store.add_edge(id, u, v)?;
                self.log.append_edge(id, gc_dataset::OpType::Ua, u, v);
                Ok(id)
            }
            ChangeOp::Ur { id, u, v } => {
                self.store.remove_edge(id, u, v)?;
                self.log.append_edge(id, gc_dataset::OpType::Ur, u, v);
                Ok(id)
            }
        }
    }

    /// Grants bulk mutable access to `(store, log)` — the interface the
    /// paper's change-plan executor drives. Every mutation must be logged
    /// by the caller (PlanExecutor does), or the cache will not see it.
    pub fn with_dataset<R>(&mut self, f: impl FnOnce(&mut GraphStore, &mut ChangeLog) -> R) -> R {
        f(&mut self.store, &mut self.log)
    }

    /// Cache + window occupancy `(cache, window)`.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.cache.len(), self.window.len())
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Aggregated metrics since construction (or the last reset).
    pub fn aggregate_metrics(&self) -> &AggregateMetrics {
        &self.aggregate
    }

    /// Resets the aggregate metrics (e.g. after the paper's one-window
    /// warm-up before measurement starts).
    pub fn reset_metrics(&mut self) {
        self.aggregate = AggregateMetrics::default();
    }

    /// Executes a query through the full GC+ pipeline.
    pub fn execute(&mut self, query: &LabeledGraph, kind: QueryKind) -> QueryOutcome {
        self.clock += 1;
        let now = self.clock;

        // ---- step 1: consistency maintenance (overhead) ----
        let mut overhead = Duration::ZERO;
        let mut validation_time = Duration::ZERO;
        if self.log.changed_since(self.cursor) {
            let t = Instant::now();
            match self.config.model {
                CacheModel::Evi => {
                    self.cache.clear();
                    self.window.clear();
                }
                CacheModel::Con => {
                    let counters = LogAnalyzer::analyze(self.log.records_since(self.cursor));
                    let span = self.store.id_span();
                    validator::refresh_all(self.cache.iter_mut(), &counters, span);
                    validator::refresh_all(self.window.iter_mut(), &counters, span);
                }
                CacheModel::ConRetro => {
                    let effects =
                        gc_dataset::RetroAnalyzer::analyze(self.log.records_since(self.cursor));
                    let span = self.store.id_span();
                    validator::refresh_all_retro(self.cache.iter_mut(), &effects, span);
                    validator::refresh_all_retro(self.window.iter_mut(), &effects, span);
                }
            }
            self.cursor = self.log.head();
            let elapsed = t.elapsed();
            if self.config.model != CacheModel::Evi {
                validation_time = elapsed;
            }
            overhead += elapsed;
        }

        // ---- steps 2-4: query execution (query time) ----
        let t_query = Instant::now();
        // CS_M: the whole live dataset (SI-method deployment) or the FTV
        // filter's output (both are sound supersets of the answer set;
        // the pruner's optimal-case checks stay correct against either —
        // graphs outside a sound filter can never be answers).
        let csm = match self.ftv_index.as_mut() {
            Some(idx) => {
                idx.sync(&self.store, &self.log);
                match kind {
                    QueryKind::Subgraph => idx.subgraph_candidates(query),
                    QueryKind::Supergraph => idx.supergraph_candidates(query),
                }
            }
            None => self.store.live_bitset(),
        };
        let candidate_size = csm.count_ones() as u64;
        let matcher = self.config.internal_matcher.matcher();
        let hits = discover_hits_with(
            query,
            kind,
            &self.cache,
            &self.window,
            matcher,
            self.config.probe_parallelism,
        );
        let outcome = prune(&csm, &hits, &self.cache, &self.window, &csm);

        let (answer, tests, prefilter_skips) = if outcome.candidates.is_empty() {
            (outcome.direct_answers.clone(), 0, 0)
        } else {
            let m = self
                .config
                .method
                .run(query, kind, &self.store, &outcome.candidates);
            let mut answer = m.answer;
            answer.union_with(&outcome.direct_answers);
            (answer, m.tests, m.prefilter_skips)
        };
        let query_time = t_query.elapsed();

        // ---- step 5: statistics + admission (overhead) ----
        let t_admit = Instant::now();
        // Per-saved-test cost proxy ∝ query size; dataset-graph sizes are
        // iid across hits, so they fold into a constant that does not
        // affect PINC's ranking.
        let per_test_cost = (query.vertex_count() + query.edge_count()) as f64;
        for &(r, saved) in &outcome.attribution {
            let e = match r {
                EntryRef::Cache(i) => self.cache.get_mut(i),
                EntryRef::Window(i) => self.window.get_mut(i),
            }
            .expect("hit refs are valid until admission");
            e.credit(saved, saved as f64 * per_test_cost, now);
        }
        if let Some(r) = hits.exact {
            // An isomorphic twin is already cached: refresh it in place
            // with the just-computed answer (full validity again) instead
            // of admitting a duplicate.
            let span = self.store.id_span();
            let e = match r {
                EntryRef::Cache(i) => self.cache.get_mut(i),
                EntryRef::Window(i) => self.window.get_mut(i),
            }
            .expect("hit refs are valid until admission");
            e.answer = answer.clone();
            e.cg_valid = gc_graph::BitSet::all_set(span);
        } else {
            let entry = CachedQuery::new(
                query.clone(),
                kind,
                answer.clone(),
                self.store.id_span(),
                now,
            );
            if let Some(batch) = self.window.push(entry) {
                self.cache.admit_batch(batch);
            }
        }
        overhead += t_admit.elapsed();

        let metrics = QueryMetrics {
            query_time,
            overhead_time: overhead,
            validation_time,
            subiso_tests: tests,
            prefilter_skips,
            tests_saved: candidate_size.saturating_sub(tests),
            candidate_size,
            hits: HitBreakdown {
                direct_hits: hits.direct.len() as u32,
                exclusion_hits: hits.exclusion.len() as u32,
                exact_match: hits.exact.is_some(),
                exact_shortcut: matches!(outcome.shortcut, Some(Shortcut::ExactMatch(_))),
                empty_shortcut: matches!(outcome.shortcut, Some(Shortcut::EmptyResult(_))),
            },
        };
        self.aggregate.record(&metrics);
        QueryOutcome { answer, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    fn dataset() -> Vec<LabeledGraph> {
        vec![
            g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]), // 0: triangle
            g(vec![0, 0, 0], &[(0, 1), (1, 2)]),         // 1: path3
            g(vec![0, 0], &[(0, 1)]),                    // 2: edge
            g(vec![1, 1], &[(0, 1)]),                    // 3: labeled edge
        ]
    }

    fn config() -> GcConfig {
        GcConfig {
            cache_capacity: 10,
            window_capacity: 2,
            ..GcConfig::default()
        }
    }

    #[test]
    fn first_query_runs_full_scan() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(out.metrics.subiso_tests, 4);
        assert_eq!(out.metrics.tests_saved, 0);
        assert_eq!(gc.occupancy(), (0, 1));
    }

    #[test]
    fn repeated_query_is_exact_match_with_zero_tests() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        let first = gc.execute(&q, QueryKind::Subgraph);
        let second = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(first.answer, second.answer);
        assert_eq!(second.metrics.subiso_tests, 0);
        assert!(second.metrics.hits.exact_shortcut);
        // the twin was refreshed in place, not duplicated
        assert_eq!(gc.occupancy(), (0, 1));
    }

    #[test]
    fn direct_hit_prunes_answers() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        // prime with path3 (answers: triangle 0, path3 1)
        let p3 = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
        gc.execute(&p3, QueryKind::Subgraph);
        // edge ⊆ path3: direct hit makes graphs 0,1 test-free
        let q = g(vec![0, 0], &[(0, 1)]);
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(out.metrics.subiso_tests < 4);
        assert!(out.metrics.hits.direct_hits >= 1);
    }

    #[test]
    fn empty_answer_shortcut_fires() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        // no dataset graph contains two 1-1 edges in a path: query 1-1-1
        let q1 = g(vec![1, 1, 1], &[(0, 1), (1, 2)]);
        let first = gc.execute(&q1, QueryKind::Subgraph);
        assert!(first.answer.is_empty());
        // a supergraph of q1 must also be empty — and provably so
        let q2 = g(vec![1, 1, 1, 0], &[(0, 1), (1, 2), (2, 3)]);
        let out = gc.execute(&q2, QueryKind::Subgraph);
        assert!(out.answer.is_empty());
        assert!(out.metrics.hits.empty_shortcut);
        assert_eq!(out.metrics.subiso_tests, 0);
    }

    #[test]
    fn con_model_survives_changes_with_correct_answers() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        gc.execute(&q, QueryKind::Subgraph);
        // UA on graph 3 (labels 1-1): does not affect q's positive answers
        gc.apply(ChangeOp::Add(g(vec![0, 0, 0], &[(0, 1)])))
            .unwrap();
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(
            out.answer.iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2, 4],
            "new graph 4 contains a 0-0 edge"
        );
    }

    #[test]
    fn evi_purges_on_any_change() {
        let cfg = GcConfig {
            model: CacheModel::Evi,
            cache_capacity: 10,
            window_capacity: 2,
            ..GcConfig::default()
        };
        let mut gc = GraphCachePlus::new(cfg, dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(gc.occupancy(), (0, 1));
        gc.apply(ChangeOp::Del(3)).unwrap();
        let out = gc.execute(&q, QueryKind::Subgraph);
        // cache was purged: full scan of the 3 live graphs, no exact match
        assert_eq!(out.metrics.subiso_tests, 3);
        assert!(!out.metrics.hits.exact_match);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn supergraph_queries_work_end_to_end() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        // supergraph query: find dataset graphs contained in the triangle
        let tri = g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let out = gc.execute(&tri, QueryKind::Supergraph);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        // repeat → exact shortcut
        let out2 = gc.execute(&tri, QueryKind::Supergraph);
        assert_eq!(out2.answer, out.answer);
        assert!(out2.metrics.hits.exact_shortcut);
    }

    #[test]
    fn apply_propagates_errors() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        assert!(gc.apply(ChangeOp::Del(99)).is_err());
        assert!(gc.apply(ChangeOp::Ua { id: 0, u: 0, v: 1 }).is_err()); // exists
        assert!(gc.apply(ChangeOp::Ur { id: 2, u: 0, v: 9 }).is_err());
        // log only contains successful ops
        assert_eq!(gc.log.len(), 0);
    }

    #[test]
    fn metrics_aggregate_and_reset() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        let q = g(vec![0, 0], &[(0, 1)]);
        gc.execute(&q, QueryKind::Subgraph);
        gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(gc.aggregate_metrics().queries, 2);
        assert_eq!(gc.aggregate_metrics().exact_shortcuts, 1);
        gc.reset_metrics();
        assert_eq!(gc.aggregate_metrics().queries, 0);
    }

    #[test]
    fn window_flush_populates_cache() {
        let mut gc = GraphCachePlus::new(config(), dataset());
        // window capacity 2: two distinct queries flush into cache
        gc.execute(&g(vec![0, 0], &[(0, 1)]), QueryKind::Subgraph);
        gc.execute(&g(vec![1, 1], &[(0, 1)]), QueryKind::Subgraph);
        assert_eq!(gc.occupancy(), (2, 0));
    }
}
