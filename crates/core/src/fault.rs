//! Fault tolerance: query budgets, deterministic fault injection, and
//! runtime health counters.
//!
//! The cache's correctness story (Theorems 3/6) assumes every pipeline
//! stage runs to completion. This module supplies the pieces that keep the
//! runtime *operational* when that assumption breaks:
//!
//! * [`QueryBudget`] — per-query wall-clock deadline and sub-iso test cap,
//!   materialized into a [`CancelToken`] threaded through the `gc_subiso`
//!   kernels. An exhausted budget degrades the query (explicitly tagged in
//!   its metrics) instead of wedging it;
//! * [`FaultPlan`] / [`FaultInjector`] — *deterministic*, seedable fault
//!   injection (panic at the K-th update or query, delay a query, silently
//!   corrupt a cached answer set) so failure handling is reproducible in
//!   tests and the `experiments chaos` driver. Plans parse from a compact
//!   string and from the `GC_FAULT_PLAN` environment variable;
//! * [`RuntimeHealth`] — lock-free counters (`AtomicU64`) for recovered
//!   panics, quarantined entries, degraded queries and auditor activity,
//!   shared across threads via `Arc`.
//!
//! Injection points live in `gc_core::system`; nothing in this module
//! panics unless a plan says so.

use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gc_subiso::CancelToken;

/// Per-query execution budget. `Default` is unlimited — the paper's
/// measurement setting, where queries must run to completion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Wall-clock deadline per query, measured from query arrival.
    pub deadline: Option<Duration>,
    /// Cap on sub-iso tests charged per query (Method M candidates).
    pub max_tests: Option<u64>,
}

impl QueryBudget {
    /// An unlimited budget.
    pub const UNLIMITED: QueryBudget = QueryBudget {
        deadline: None,
        max_tests: None,
    };

    /// Does this budget ever interrupt anything?
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_tests.is_none()
    }

    /// Materializes the budget into a fresh token; the deadline clock
    /// starts now.
    pub fn token(&self) -> CancelToken {
        CancelToken::new(self.deadline.map(|d| Instant::now() + d), self.max_tests)
    }
}

/// One injectable fault. Counters are 1-based: `nth: 3` fires on the third
/// update/query observed by the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic when the `nth` dataset update arrives (before any mutation,
    /// so a retry starts from clean state).
    PanicOnUpdate {
        /// 1-based update ordinal.
        nth: u64,
    },
    /// Panic when the `nth` query arrives (before the pipeline runs).
    PanicOnQuery {
        /// 1-based query ordinal.
        nth: u64,
    },
    /// Sleep before executing the `nth` query — models a stalled shard or
    /// a slow storage tier, exercising deadline handling.
    DelayQuery {
        /// 1-based query ordinal.
        nth: u64,
        /// Sleep duration in milliseconds.
        millis: u64,
    },
    /// After the `nth` update completes, silently flip answer bit
    /// `graph_id` in one cached entry — the corruption the consistency
    /// auditor exists to catch.
    CorruptEntry {
        /// 1-based update ordinal after which the corruption lands.
        after_update: u64,
        /// Dataset-graph id whose answer bit is flipped.
        graph_id: usize,
    },
    /// Close the connection when the server receives its `nth` request,
    /// before any reply is written — models a flaky link or a peer dying
    /// mid-call. The client sees a transport error and must decide whether
    /// the operation is safe to retry.
    DropConn {
        /// 1-based request ordinal.
        nth: u64,
    },
    /// Sleep before replying to the `nth` request — models a congested
    /// link or a delayed frame, exercising client-side timeouts.
    DelayConn {
        /// 1-based request ordinal.
        nth: u64,
        /// Sleep duration in milliseconds.
        millis: u64,
    },
    /// Stall one shard while serving the `nth` query request: the routing
    /// layer burns that query's remaining deadline on the stalled shard,
    /// which must surface as an explicitly degraded (sound partial)
    /// answer, never a hang.
    StallShard {
        /// 1-based request ordinal.
        nth: u64,
    },
}

/// A deterministic set of faults. Parse with [`FromStr`]:
///
/// ```text
/// panic-update@5;panic-query@12;delay-query@3:50;corrupt@8:2
/// ```
///
/// means: panic on the 5th update, panic on the 12th query, sleep 50 ms
/// before the 3rd query, and corrupt answer bit 2 after the 8th update.
/// Network faults (interpreted by the `gc_server` front-end) use the same
/// grammar: `drop-conn@3` closes the connection on the 3rd request,
/// `delay-conn@7:40` sleeps 40 ms before replying to the 7th, and
/// `stall-shard@9` stalls one shard for the 9th query request.
///
/// Ordinals are 1-based and must be positive; exact duplicate entries are
/// rejected (each fault fires at most once, so a duplicate is a plan bug).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults to inject.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Reads `GC_FAULT_PLAN` from the environment; `None` when unset,
    /// `Err` when set but malformed.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("GC_FAULT_PLAN") {
            Ok(s) if s.trim().is_empty() => Ok(None),
            Ok(s) => s.parse().map(Some),
            Err(_) => Ok(None),
        }
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.trim()
        .parse()
        .map_err(|_| format!("invalid {what} '{s}' in fault plan"))
}

/// Parses a 1-based ordinal: a u64 that must be positive.
fn parse_ordinal(s: &str, what: &str) -> Result<u64, String> {
    let n = parse_u64(s, what)?;
    if n == 0 {
        return Err(format!("{what} is 1-based; 0 never fires"));
    }
    Ok(n)
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut faults = Vec::new();
        for part in s.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, args) = part
                .split_once('@')
                .ok_or_else(|| format!("fault '{part}' missing '@'"))?;
            let mut nums = args.split(':');
            let first = nums.next().unwrap_or("");
            let second = nums.next();
            let fault = match name.trim() {
                "panic-update" => Fault::PanicOnUpdate {
                    nth: parse_ordinal(first, "update ordinal")?,
                },
                "panic-query" => Fault::PanicOnQuery {
                    nth: parse_ordinal(first, "query ordinal")?,
                },
                "delay-query" => Fault::DelayQuery {
                    nth: parse_ordinal(first, "query ordinal")?,
                    millis: parse_u64(
                        second.ok_or_else(|| format!("delay-query '{part}' needs ':millis'"))?,
                        "delay millis",
                    )?,
                },
                "corrupt" => Fault::CorruptEntry {
                    after_update: parse_ordinal(first, "update ordinal")?,
                    graph_id: parse_u64(
                        second.ok_or_else(|| format!("corrupt '{part}' needs ':graph_id'"))?,
                        "graph id",
                    )? as usize,
                },
                "drop-conn" => Fault::DropConn {
                    nth: parse_ordinal(first, "request ordinal")?,
                },
                "delay-conn" => Fault::DelayConn {
                    nth: parse_ordinal(first, "request ordinal")?,
                    millis: parse_u64(
                        second.ok_or_else(|| format!("delay-conn '{part}' needs ':millis'"))?,
                        "delay millis",
                    )?,
                },
                "stall-shard" => Fault::StallShard {
                    nth: parse_ordinal(first, "request ordinal")?,
                },
                other => return Err(format!("unknown fault kind '{other}'")),
            };
            if faults.contains(&fault) {
                return Err(format!("duplicate fault entry '{part}'"));
            }
            faults.push(fault);
        }
        Ok(FaultPlan { faults })
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            match *fault {
                Fault::PanicOnUpdate { nth } => write!(f, "panic-update@{nth}")?,
                Fault::PanicOnQuery { nth } => write!(f, "panic-query@{nth}")?,
                Fault::DelayQuery { nth, millis } => write!(f, "delay-query@{nth}:{millis}")?,
                Fault::CorruptEntry {
                    after_update,
                    graph_id,
                } => write!(f, "corrupt@{after_update}:{graph_id}")?,
                Fault::DropConn { nth } => write!(f, "drop-conn@{nth}")?,
                Fault::DelayConn { nth, millis } => write!(f, "delay-conn@{nth}:{millis}")?,
                Fault::StallShard { nth } => write!(f, "stall-shard@{nth}")?,
            }
        }
        Ok(())
    }
}

/// What a networked front-end must do with one incoming request, as
/// dictated by the fault plan. Returned by
/// [`FaultInjector::before_request`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestDirective {
    /// Close the connection without replying (the client sees a transport
    /// error).
    pub drop_conn: bool,
    /// Sleep this long before replying.
    pub delay: Option<Duration>,
    /// Stall one shard for this request: route it so that the stalled
    /// shard burns the request's remaining deadline.
    pub stall_shard: bool,
}

/// Executes a [`FaultPlan`] against live update/query streams. All state
/// is atomic; one injector can be shared across threads. Each fault fires
/// at most once (ordinals are strictly increasing).
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    updates: AtomicU64,
    queries: AtomicU64,
    requests: AtomicU64,
}

impl FaultInjector {
    /// Builds an injector for the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            updates: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Updates observed so far.
    pub fn updates_seen(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Queries observed so far.
    pub fn queries_seen(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Requests observed so far (network-level counter).
    pub fn requests_seen(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Hook at request receipt in a networked front-end: counts the
    /// request and returns the network faults scheduled for this ordinal.
    /// Unlike the panic hooks this never unwinds — connection handling
    /// stays in the server's control.
    pub fn before_request(&self) -> RequestDirective {
        let n = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let mut directive = RequestDirective::default();
        for fault in &self.plan.faults {
            match *fault {
                Fault::DropConn { nth } if nth == n => directive.drop_conn = true,
                Fault::DelayConn { nth, millis } if nth == n => {
                    directive.delay = Some(Duration::from_millis(millis));
                }
                Fault::StallShard { nth } if nth == n => directive.stall_shard = true,
                _ => {}
            }
        }
        directive
    }

    /// Hook before a dataset update mutates anything. Panics when the plan
    /// says this ordinal fails — because no mutation has happened yet, a
    /// caller that contains the panic can simply retry the operation.
    pub fn before_update(&self) {
        let n = self.updates.fetch_add(1, Ordering::Relaxed) + 1;
        for fault in &self.plan.faults {
            if let Fault::PanicOnUpdate { nth } = *fault {
                if nth == n {
                    panic!("injected fault: panic on update #{n}");
                }
            }
        }
    }

    /// Hook after the `n`-th update committed: returns the answer-bit id
    /// to corrupt, if the plan schedules a corruption here.
    pub fn after_update(&self) -> Option<usize> {
        let n = self.updates.load(Ordering::Relaxed);
        self.plan.faults.iter().find_map(|fault| match *fault {
            Fault::CorruptEntry {
                after_update,
                graph_id,
            } if after_update == n => Some(graph_id),
            _ => None,
        })
    }

    /// Hook before a query enters the pipeline: sleeps through scheduled
    /// delays, then panics if the plan says this ordinal fails.
    pub fn before_query(&self) {
        let n = self.queries.fetch_add(1, Ordering::Relaxed) + 1;
        for fault in &self.plan.faults {
            if let Fault::DelayQuery { nth, millis } = *fault {
                if nth == n {
                    std::thread::sleep(Duration::from_millis(millis));
                }
            }
        }
        for fault in &self.plan.faults {
            if let Fault::PanicOnQuery { nth } = *fault {
                if nth == n {
                    panic!("injected fault: panic on query #{n}");
                }
            }
        }
    }
}

/// Point-in-time copy of the health counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Panics contained by any isolation boundary.
    pub panics_recovered: u64,
    /// Entries ever placed under quarantine.
    pub quarantined_entries: u64,
    /// Queries that returned a `Degraded`-tagged (partial) outcome.
    pub degraded_queries: u64,
    /// Divergent entries repaired in place by the auditor.
    pub audit_repairs: u64,
    /// Divergent entries evicted by the auditor.
    pub audit_evictions: u64,
    /// Requests shed with an explicit `Overloaded` response by the
    /// backpressure gate (never silently dropped).
    pub load_shed: u64,
    /// Shards marked unhealthy by the routing layer after repeated panics.
    pub shard_failovers: u64,
    /// Queries (per shard) served by cache-less `baseline_execute` because
    /// the owning shard was marked unhealthy.
    pub baseline_served: u64,
    /// Answer bits the delta-repair maintenance pass spliced back to
    /// ground truth in place.
    pub repairs_applied: u64,
    /// Validity bits preserved that invalidate-mode maintenance would have
    /// cleared.
    pub invalidations_avoided: u64,
    /// Affected bits the repair path invalidated after exhausting its
    /// per-pass test budget.
    pub repair_fallbacks: u64,
}

/// Lock-free runtime health counters, shared via `Arc` between the cache,
/// its shards and observers.
#[derive(Debug, Default)]
pub struct RuntimeHealth {
    panics_recovered: AtomicU64,
    quarantined_entries: AtomicU64,
    degraded_queries: AtomicU64,
    audit_repairs: AtomicU64,
    audit_evictions: AtomicU64,
    load_shed: AtomicU64,
    shard_failovers: AtomicU64,
    baseline_served: AtomicU64,
    repairs_applied: AtomicU64,
    invalidations_avoided: AtomicU64,
    repair_fallbacks: AtomicU64,
}

impl RuntimeHealth {
    /// Records `n` contained panics.
    pub fn add_panics_recovered(&self, n: u64) {
        self.panics_recovered.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` entries placed under quarantine.
    pub fn add_quarantined(&self, n: u64) {
        self.quarantined_entries.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one degraded query outcome.
    pub fn add_degraded_query(&self) {
        self.degraded_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records auditor repairs.
    pub fn add_audit_repairs(&self, n: u64) {
        self.audit_repairs.fetch_add(n, Ordering::Relaxed);
    }

    /// Records auditor evictions.
    pub fn add_audit_evictions(&self, n: u64) {
        self.audit_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one request shed with an explicit `Overloaded` response.
    pub fn add_load_shed(&self) {
        self.load_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one shard marked unhealthy by the routing layer.
    pub fn add_shard_failover(&self) {
        self.shard_failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` per-shard queries served by cache-less baseline
    /// execution while the shard was unhealthy.
    pub fn add_baseline_served(&self, n: u64) {
        self.baseline_served.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` answer bits delta-repaired in place by maintenance.
    pub fn add_repairs_applied(&self, n: u64) {
        self.repairs_applied.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` validity bits preserved that invalidation would have
    /// cleared.
    pub fn add_invalidations_avoided(&self, n: u64) {
        self.invalidations_avoided.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` repair-budget exhaustions that fell back to
    /// invalidation.
    pub fn add_repair_fallbacks(&self, n: u64) {
        self.repair_fallbacks.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot (individual counters are exact; the
    /// set is not read atomically, which observers do not need).
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            panics_recovered: self.panics_recovered.load(Ordering::Relaxed),
            quarantined_entries: self.quarantined_entries.load(Ordering::Relaxed),
            degraded_queries: self.degraded_queries.load(Ordering::Relaxed),
            audit_repairs: self.audit_repairs.load(Ordering::Relaxed),
            audit_evictions: self.audit_evictions.load(Ordering::Relaxed),
            load_shed: self.load_shed.load(Ordering::Relaxed),
            shard_failovers: self.shard_failovers.load(Ordering::Relaxed),
            baseline_served: self.baseline_served.load(Ordering::Relaxed),
            repairs_applied: self.repairs_applied.load(Ordering::Relaxed),
            invalidations_avoided: self.invalidations_avoided.load(Ordering::Relaxed),
            repair_fallbacks: self.repair_fallbacks.load(Ordering::Relaxed),
        }
    }
}

impl HealthSnapshot {
    /// Field-wise sum of two snapshots (folding per-shard counters into a
    /// deployment-wide view).
    pub fn merge(&mut self, other: &HealthSnapshot) {
        self.panics_recovered += other.panics_recovered;
        self.quarantined_entries += other.quarantined_entries;
        self.degraded_queries += other.degraded_queries;
        self.audit_repairs += other.audit_repairs;
        self.audit_evictions += other.audit_evictions;
        self.load_shed += other.load_shed;
        self.shard_failovers += other.shard_failovers;
        self.baseline_served += other.baseline_served;
        self.repairs_applied += other.repairs_applied;
        self.invalidations_avoided += other.invalidations_avoided;
        self.repair_fallbacks += other.repair_fallbacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_token_never_fires() {
        let b = QueryBudget::default();
        assert!(b.is_unlimited());
        let t = b.token();
        for _ in 0..100 {
            assert!(t.charge_test().is_ok());
        }
    }

    #[test]
    fn budget_limits_materialize() {
        let b = QueryBudget {
            deadline: Some(Duration::from_secs(3600)),
            max_tests: Some(2),
        };
        assert!(!b.is_unlimited());
        let t = b.token();
        assert!(t.charge_test().is_ok());
        assert!(t.charge_test().is_ok());
        assert!(t.charge_test().is_err());
    }

    #[test]
    fn plan_parses_and_round_trips() {
        let s = "panic-update@5;panic-query@12;delay-query@3:50;corrupt@8:2";
        let plan: FaultPlan = s.parse().unwrap();
        assert_eq!(
            plan.faults,
            vec![
                Fault::PanicOnUpdate { nth: 5 },
                Fault::PanicOnQuery { nth: 12 },
                Fault::DelayQuery { nth: 3, millis: 50 },
                Fault::CorruptEntry {
                    after_update: 8,
                    graph_id: 2
                },
            ]
        );
        assert_eq!(plan.to_string(), s);
        assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        assert!("panic-update".parse::<FaultPlan>().is_err());
        assert!("panic-update@x".parse::<FaultPlan>().is_err());
        assert!("delay-query@3".parse::<FaultPlan>().is_err());
        assert!("corrupt@1".parse::<FaultPlan>().is_err());
        assert!("warp-core-breach@1".parse::<FaultPlan>().is_err());
        // empty segments are tolerated
        assert_eq!(
            "panic-query@1;;".parse::<FaultPlan>().unwrap().faults.len(),
            1
        );
        assert!("".parse::<FaultPlan>().unwrap().faults.is_empty());
    }

    #[test]
    fn malformed_ordinals_are_rejected() {
        // ordinals are 1-based: 0 would never fire, so it is a plan bug
        for plan in [
            "panic-update@0",
            "panic-query@0",
            "delay-query@0:50",
            "corrupt@0:1",
            "drop-conn@0",
            "delay-conn@0:10",
            "stall-shard@0",
        ] {
            assert!(
                plan.parse::<FaultPlan>().is_err(),
                "{plan} must be rejected"
            );
        }
        // negative / non-numeric / overflowing ordinals
        assert!("panic-query@-3".parse::<FaultPlan>().is_err());
        assert!("drop-conn@1.5".parse::<FaultPlan>().is_err());
        assert!("delay-conn@99999999999999999999:1"
            .parse::<FaultPlan>()
            .is_err());
        // corrupt's graph id is 0-based and may legitimately be 0
        assert!("corrupt@3:0".parse::<FaultPlan>().is_ok());
    }

    #[test]
    fn network_faults_parse_and_round_trip() {
        let s = "drop-conn@3;delay-conn@7:40;stall-shard@9";
        let plan: FaultPlan = s.parse().unwrap();
        assert_eq!(
            plan.faults,
            vec![
                Fault::DropConn { nth: 3 },
                Fault::DelayConn { nth: 7, millis: 40 },
                Fault::StallShard { nth: 9 },
            ]
        );
        assert_eq!(plan.to_string(), s);
        assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan);
        // malformed network faults
        assert!("drop-conn".parse::<FaultPlan>().is_err());
        assert!("delay-conn@3".parse::<FaultPlan>().is_err());
        assert!("stall-shard@x".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn duplicate_entries_are_rejected() {
        assert!("panic-query@1;panic-query@1".parse::<FaultPlan>().is_err());
        assert!("drop-conn@2;delay-conn@3:10;drop-conn@2"
            .parse::<FaultPlan>()
            .is_err());
        // same kind at different ordinals is fine
        assert!("panic-query@1;panic-query@2".parse::<FaultPlan>().is_ok());
        // same ordinal across different kinds is fine
        assert!("drop-conn@2;delay-conn@2:10".parse::<FaultPlan>().is_ok());
    }

    #[test]
    fn full_plan_round_trips_through_display() {
        let s = "panic-update@5;panic-query@12;delay-query@3:50;corrupt@8:2;\
                 drop-conn@1;delay-conn@4:25;stall-shard@6";
        let plan: FaultPlan = s.parse().unwrap();
        assert_eq!(plan.faults.len(), 7);
        let shown = plan.to_string();
        assert_eq!(shown.parse::<FaultPlan>().unwrap(), plan);
    }

    #[test]
    fn request_directives_fire_on_exact_ordinals() {
        let plan: FaultPlan = "drop-conn@2;delay-conn@3:15;stall-shard@3".parse().unwrap();
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.before_request(), RequestDirective::default());
        assert!(inj.before_request().drop_conn);
        let d = inj.before_request();
        assert_eq!(d.delay, Some(Duration::from_millis(15)));
        assert!(d.stall_shard);
        assert!(!d.drop_conn);
        assert_eq!(inj.before_request(), RequestDirective::default());
        assert_eq!(inj.requests_seen(), 4);
        // the request counter is independent of the query/update counters
        assert_eq!(inj.queries_seen(), 0);
        assert_eq!(inj.updates_seen(), 0);
    }

    #[test]
    fn injector_fires_on_exact_ordinals() {
        let plan: FaultPlan = "panic-update@2".parse().unwrap();
        let inj = FaultInjector::new(plan);
        inj.before_update(); // 1st: fine
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.before_update() // 2nd: boom
        }));
        assert!(caught.is_err());
        inj.before_update(); // 3rd: fine again
        assert_eq!(inj.updates_seen(), 3);
    }

    #[test]
    fn corruption_directive_surfaces_once() {
        let plan: FaultPlan = "corrupt@2:7".parse().unwrap();
        let inj = FaultInjector::new(plan);
        inj.before_update();
        assert_eq!(inj.after_update(), None);
        inj.before_update();
        assert_eq!(inj.after_update(), Some(7));
        inj.before_update();
        assert_eq!(inj.after_update(), None);
    }

    #[test]
    fn query_delay_and_panic() {
        let plan: FaultPlan = "delay-query@1:1;panic-query@2".parse().unwrap();
        let inj = FaultInjector::new(plan);
        let t = Instant::now();
        inj.before_query();
        assert!(t.elapsed() >= Duration::from_millis(1));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.before_query()));
        assert!(caught.is_err());
        assert_eq!(inj.queries_seen(), 2);
    }

    #[test]
    fn health_counters_accumulate() {
        let h = RuntimeHealth::default();
        h.add_panics_recovered(2);
        h.add_quarantined(3);
        h.add_degraded_query();
        h.add_audit_repairs(1);
        h.add_audit_evictions(4);
        h.add_load_shed();
        h.add_load_shed();
        h.add_shard_failover();
        h.add_baseline_served(5);
        h.add_repairs_applied(6);
        h.add_invalidations_avoided(7);
        h.add_repair_fallbacks(8);
        let s = h.snapshot();
        assert_eq!(s.panics_recovered, 2);
        assert_eq!(s.quarantined_entries, 3);
        assert_eq!(s.degraded_queries, 1);
        assert_eq!(s.audit_repairs, 1);
        assert_eq!(s.audit_evictions, 4);
        assert_eq!(s.load_shed, 2);
        assert_eq!(s.shard_failovers, 1);
        assert_eq!(s.baseline_served, 5);
        assert_eq!(s.repairs_applied, 6);
        assert_eq!(s.invalidations_avoided, 7);
        assert_eq!(s.repair_fallbacks, 8);
    }

    #[test]
    fn snapshots_merge_fieldwise() {
        let a = RuntimeHealth::default();
        a.add_panics_recovered(1);
        a.add_load_shed();
        let b = RuntimeHealth::default();
        b.add_panics_recovered(2);
        b.add_shard_failover();
        b.add_baseline_served(3);
        b.add_repairs_applied(4);
        b.add_invalidations_avoided(9);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.panics_recovered, 3);
        assert_eq!(s.load_shed, 1);
        assert_eq!(s.shard_failovers, 1);
        assert_eq!(s.baseline_served, 3);
        assert_eq!(s.degraded_queries, 0);
        assert_eq!(s.repairs_applied, 4);
        assert_eq!(s.invalidations_avoided, 9);
        assert_eq!(s.repair_fallbacks, 0);
    }
}
