//! A thread-safe wrapper around [`GraphCachePlus`].
//!
//! The paper's runtime performs cache admission "concurrently with the
//! Query Processing Runtime subsystem executing subsequent queries" on a
//! 60-core server. The core pipeline here is deliberately synchronous
//! (deterministic tests, exact Figure 5 counts); this wrapper provides the
//! shared-access deployment shape: multiple client threads issuing queries
//! and dataset changes against one cache. Method-M-internal parallelism is
//! available orthogonally via [`gc_subiso::MethodM::parallel`].

use std::sync::{Arc, Mutex};

use gc_dataset::{ChangeOp, DatasetError, GraphId};
use gc_graph::LabeledGraph;
use gc_subiso::QueryKind;

use crate::config::GcConfig;
use crate::metrics::AggregateMetrics;
use crate::system::{GraphCachePlus, QueryOutcome};

/// Cheaply clonable, thread-safe GC+ handle.
#[derive(Clone)]
pub struct ConcurrentGraphCache {
    inner: Arc<Mutex<GraphCachePlus>>,
}

impl ConcurrentGraphCache {
    /// Builds a shared GC+ instance.
    pub fn new(config: GcConfig, initial: Vec<LabeledGraph>) -> Self {
        ConcurrentGraphCache {
            inner: Arc::new(Mutex::new(GraphCachePlus::new(config, initial))),
        }
    }

    /// Executes a query (serialized against other callers).
    pub fn execute(&self, query: &LabeledGraph, kind: QueryKind) -> QueryOutcome {
        self.lock().execute(query, kind)
    }

    /// Executes a query behind the panic boundary
    /// ([`GraphCachePlus::execute_isolated`]); combined with the poisoned-
    /// lock recovery below, one panicking client cannot wedge the others.
    pub fn execute_isolated(&self, query: &LabeledGraph, kind: QueryKind) -> QueryOutcome {
        self.lock().execute_isolated(query, kind)
    }

    /// Applies a dataset change.
    pub fn apply(&self, op: ChangeOp) -> Result<GraphId, DatasetError> {
        self.lock().apply(op)
    }

    /// Applies a dataset change behind the panic boundary
    /// ([`GraphCachePlus::apply_isolated`]).
    pub fn apply_isolated(&self, op: ChangeOp) -> Result<GraphId, DatasetError> {
        self.lock().apply_isolated(op)
    }

    /// Runs the consistency auditor (repair mode).
    pub fn audit(&self, sample_rate: f64, seed: u64) -> crate::system::AuditReport {
        self.lock().audit(sample_rate, seed)
    }

    /// Snapshot of the fault-tolerance counters.
    pub fn health_snapshot(&self) -> crate::fault::HealthSnapshot {
        self.lock().health_snapshot()
    }

    /// Snapshot of the aggregate metrics.
    pub fn aggregate_metrics(&self) -> AggregateMetrics {
        self.lock().aggregate_metrics().clone()
    }

    /// Cache/window occupancy snapshot.
    pub fn occupancy(&self) -> (usize, usize) {
        self.lock().occupancy()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GraphCachePlus> {
        // a poisoned lock means a panicking query died mid-pipeline; the
        // cache state is still structurally sound (no partial bit writes
        // survive a panic boundary), so recover rather than cascade
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    #[test]
    fn concurrent_clients_share_one_cache() {
        let dataset = vec![
            g(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(vec![0, 0], &[(0, 1)]),
            g(vec![1, 1], &[(0, 1)]),
        ];
        let shared = ConcurrentGraphCache::new(GcConfig::default(), dataset);

        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = shared.clone();
            handles.push(std::thread::spawn(move || {
                let q = if t % 2 == 0 {
                    g(vec![0, 0], &[(0, 1)])
                } else {
                    g(vec![1, 1], &[(0, 1)])
                };
                let mut answers = Vec::new();
                for _ in 0..10 {
                    answers.push(cache.execute(&q, QueryKind::Subgraph).answer);
                }
                // all runs of the same query agree
                assert!(answers.windows(2).all(|w| w[0] == w[1]));
                answers.pop().expect("ran 10 queries")
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results[0].iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(results[1].iter_ones().collect::<Vec<_>>(), vec![2]);
        assert_eq!(shared.aggregate_metrics().queries, 40);
        // 40 executions of 2 distinct queries → exact matches dominate
        assert!(shared.aggregate_metrics().exact_shortcuts >= 36);
    }

    #[test]
    fn changes_interleave_with_queries() {
        let dataset = vec![g(vec![0, 0], &[(0, 1)])];
        let shared = ConcurrentGraphCache::new(GcConfig::default(), dataset);
        let q = g(vec![0, 0], &[(0, 1)]);
        assert_eq!(
            shared.execute(&q, QueryKind::Subgraph).answer.count_ones(),
            1
        );
        shared
            .apply(ChangeOp::Add(g(vec![0, 0, 0], &[(0, 1), (1, 2)])))
            .unwrap();
        assert_eq!(
            shared.execute(&q, QueryKind::Subgraph).answer.count_ones(),
            2
        );
        assert_eq!(shared.occupancy().0 + shared.occupancy().1, 1);
    }
}
