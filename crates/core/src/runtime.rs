//! Query Processing Runtime helpers: the cache-less baseline runner and
//! the per-query result type.
//!
//! The baseline runner is "Method M without GC+" — the denominator of
//! every speedup the paper reports. It scans the live dataset with the
//! configured SI algorithm, timing the scan and counting one sub-iso test
//! per live graph.

use std::time::Instant;

use gc_dataset::GraphStore;
use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::{MethodM, QueryKind};

use crate::metrics::QueryMetrics;

/// Answer plus measurements for one executed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The answer set (bit per dataset-graph id). Exactly equal to the
    /// cache-less Method M answer — Theorems 3/6.
    pub answer: BitSet,
    /// Per-query measurements.
    pub metrics: QueryMetrics,
}

/// Runs plain Method M (no cache) against the live dataset — the paper's
/// baseline configuration.
pub fn baseline_execute(
    store: &GraphStore,
    method: &MethodM,
    query: &LabeledGraph,
    kind: QueryKind,
) -> QueryOutcome {
    let started = Instant::now();
    let csm = store.live_bitset();
    let candidate_size = csm.count_ones() as u64;
    let result = method.run(query, kind, store, &csm);
    let query_time = started.elapsed();
    QueryOutcome {
        answer: result.answer,
        metrics: QueryMetrics {
            query_time,
            subiso_tests: result.tests,
            prefilter_skips: result.prefilter_skips,
            tests_saved: 0,
            candidate_size,
            ..QueryMetrics::default()
        },
    }
}

/// Runs an FTV-style baseline (no cache): the postings-bitset index
/// produces `CS_M`, then Method M verifies it with its own per-candidate
/// pre-filter off — the index already applied the full signature check
/// (the folded pre-filter), so verification is a single pass. The index
/// is synced from the log first and must be built **once** per run and
/// shared across a churning workload; rebuilding it per query throws away
/// the incremental maintenance this architecture exists for.
pub fn ftv_baseline_execute(
    store: &GraphStore,
    log: &gc_dataset::ChangeLog,
    index: &mut gc_dataset::LabelIndex,
    method: &MethodM,
    query: &LabeledGraph,
    kind: QueryKind,
) -> QueryOutcome {
    let started = Instant::now();
    index.sync(store, log);
    let csm = match kind {
        QueryKind::Subgraph => index.subgraph_candidates(query),
        QueryKind::Supergraph => index.supergraph_candidates(query),
    };
    let candidate_size = csm.count_ones() as u64;
    let result = method.with_prefilter(false).run(query, kind, store, &csm);
    let query_time = started.elapsed();
    QueryOutcome {
        answer: result.answer,
        metrics: QueryMetrics {
            query_time,
            subiso_tests: result.tests,
            prefilter_skips: result.prefilter_skips,
            tests_saved: store.live_count() as u64 - result.tests.min(store.live_count() as u64),
            candidate_size,
            ..QueryMetrics::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_subiso::Algorithm;

    #[test]
    fn ftv_baseline_filters_before_verifying() {
        let triangle = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let alien = LabeledGraph::from_parts(vec![5, 5], &[(0, 1)]).unwrap();
        let edge = LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap();
        let store = GraphStore::from_graphs(vec![triangle, alien, edge.clone()]);
        let log = gc_dataset::ChangeLog::new();
        let mut index = gc_dataset::LabelIndex::build(&store, &log);
        let m = MethodM::new(Algorithm::Vf2);

        let out = ftv_baseline_execute(&store, &log, &mut index, &m, &edge, QueryKind::Subgraph);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(
            out.metrics.subiso_tests, 2,
            "label filter skipped the alien graph"
        );
        assert_eq!(out.metrics.tests_saved, 1);
        // agreement with the unfiltered baseline
        let plain = baseline_execute(&store, &m, &edge, QueryKind::Subgraph);
        assert_eq!(out.answer, plain.answer);
    }

    #[test]
    fn baseline_scans_whole_live_dataset() {
        let triangle = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let edge = LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap();
        let mut store = GraphStore::from_graphs(vec![triangle, edge.clone()]);
        store.delete(1).unwrap();

        let m = MethodM::new(Algorithm::Vf2);
        let out = baseline_execute(&store, &m, &edge, QueryKind::Subgraph);
        assert_eq!(out.metrics.subiso_tests, 1, "deleted graph is not tested");
        assert_eq!(out.metrics.candidate_size, 1);
        assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0]);
        assert_eq!(out.metrics.tests_saved, 0);
    }
}
