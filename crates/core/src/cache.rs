//! The cache store: a bounded set of [`CachedQuery`] entries under a
//! replacement policy.
//!
//! Window batches are merged in via [`CacheManager::admit_batch`]; when
//! the merged population exceeds capacity the policy's lowest scorers are
//! evicted (new arrivals compete with incumbents using the statistics they
//! accumulated during their window residency — GC's admission-control
//! rationale).

use crate::config::Policy;
use crate::entry::CachedQuery;
use crate::policy::select_evictions;

/// Bounded, policy-managed cache store.
#[derive(Debug)]
pub struct CacheManager {
    entries: Vec<CachedQuery>,
    capacity: usize,
    policy: Policy,
    evictions: u64,
}

impl CacheManager {
    /// Creates an empty cache with the given capacity and policy.
    pub fn new(capacity: usize, policy: Policy) -> Self {
        CacheManager {
            entries: Vec::with_capacity(capacity.min(1024)),
            capacity,
            policy,
            evictions: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total evictions performed (reported by the experiment harness).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Shared iteration for hit discovery.
    pub fn iter(&self) -> impl Iterator<Item = &CachedQuery> {
        self.entries.iter()
    }

    /// Mutable iteration for validation.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut CachedQuery> {
        self.entries.iter_mut()
    }

    /// Indexed mutable access (hit lists carry indices).
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut CachedQuery> {
        self.entries.get_mut(idx)
    }

    /// EVI purge.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of entries currently under quarantine.
    pub fn quarantined_count(&self) -> usize {
        self.entries.iter().filter(|e| e.quarantined).count()
    }

    /// Drops every entry matching `pred` (order-preserving) and returns
    /// how many were removed — the auditor's eviction primitive. Removals
    /// count as evictions for the experiment harness.
    pub fn evict_where(&mut self, mut pred: impl FnMut(&CachedQuery) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !pred(e));
        let removed = before - self.entries.len();
        self.evictions += removed as u64;
        removed
    }

    /// Merges a window batch, evicting down to capacity afterwards.
    /// Returns the number of entries evicted.
    pub fn admit_batch(&mut self, batch: Vec<CachedQuery>) -> usize {
        if self.capacity == 0 {
            return batch.len();
        }
        self.entries.extend(batch);
        let evict = select_evictions(self.policy, &self.entries, self.capacity);
        let count = evict.len();
        if count > 0 {
            // remove indices in descending order so positions stay valid
            let mut sorted = evict;
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            for i in sorted {
                self.entries.swap_remove(i);
            }
            self.evictions += count as u64;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{BitSet, LabeledGraph};
    use gc_subiso::QueryKind;

    fn entry(tests_saved: u64) -> CachedQuery {
        let mut e = CachedQuery::new(
            LabeledGraph::from_parts(vec![0], &[]).unwrap(),
            QueryKind::Subgraph,
            BitSet::new(),
            0,
            0,
        );
        e.stats.tests_saved = tests_saved;
        e
    }

    #[test]
    fn admits_until_capacity() {
        let mut c = CacheManager::new(3, Policy::Pin);
        assert_eq!(c.admit_batch(vec![entry(1), entry(2)]), 0);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.capacity(), 3);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn evicts_lowest_scorers_on_overflow() {
        let mut c = CacheManager::new(3, Policy::Pin);
        c.admit_batch(vec![entry(10), entry(1), entry(7)]);
        let evicted = c.admit_batch(vec![entry(5), entry(2)]);
        assert_eq!(evicted, 2);
        assert_eq!(c.len(), 3);
        let mut kept: Vec<u64> = c.iter().map(|e| e.stats.tests_saved).collect();
        kept.sort_unstable();
        assert_eq!(kept, vec![5, 7, 10]);
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut c = CacheManager::new(0, Policy::Lru);
        assert_eq!(c.admit_batch(vec![entry(1)]), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_supports_evi() {
        let mut c = CacheManager::new(5, Policy::Hybrid);
        c.admit_batch(vec![entry(1), entry(2)]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn quarantine_bookkeeping_and_targeted_eviction() {
        let mut c = CacheManager::new(5, Policy::Pin);
        c.admit_batch(vec![entry(1), entry(2), entry(3)]);
        assert_eq!(c.quarantined_count(), 0);
        c.get_mut(1).unwrap().quarantined = true;
        assert_eq!(c.quarantined_count(), 1);
        let removed = c.evict_where(|e| e.quarantined);
        assert_eq!(removed, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.quarantined_count(), 0);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn indexed_access() {
        let mut c = CacheManager::new(5, Policy::Pin);
        c.admit_batch(vec![entry(1)]);
        c.get_mut(0).unwrap().credit(4, 1.0, 3);
        assert_eq!(c.iter().next().unwrap().stats.tests_saved, 5);
        assert!(c.get_mut(9).is_none());
        assert_eq!(c.iter_mut().count(), 1);
    }
}
