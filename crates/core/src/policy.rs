//! Cache replacement scoring.
//!
//! Eviction keeps the `capacity` highest-scoring entries. Scores:
//!
//! * **LRU** — recency (`last_used`);
//! * **LFU** — hit count;
//! * **PIN** — `R`, total sub-iso tests alleviated (GC's ranking);
//! * **PINC** — `C`, the cost-weighted variant (estimated query time
//!   saved; heuristic cost per test from the paper's ref \[25\]);
//! * **HD** — hybrid (§7.1): compute the squared CoV of the cache's `R`
//!   distribution; high variability (CoV² > 1) means `R` alone is
//!   discriminative → PIN, otherwise fold in the cost estimate → PINC.

use crate::config::Policy;
use crate::entry::CachedQuery;
use crate::stats::squared_cov;

/// The concrete scoring scheme HD resolved to (also used in tests and the
/// policy ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedPolicy {
    /// Recency.
    Lru,
    /// Frequency.
    Lfu,
    /// R-based.
    Pin,
    /// Cost-based.
    Pinc,
}

/// Resolves a configured policy against the current cache contents
/// (HD inspects the R distribution; everything else is static).
pub fn resolve(policy: Policy, entries: &[CachedQuery]) -> ResolvedPolicy {
    match policy {
        Policy::Lru => ResolvedPolicy::Lru,
        Policy::Lfu => ResolvedPolicy::Lfu,
        Policy::Pin => ResolvedPolicy::Pin,
        Policy::Pinc => ResolvedPolicy::Pinc,
        Policy::Hybrid => {
            let r: Vec<f64> = entries.iter().map(|e| e.stats.tests_saved as f64).collect();
            if squared_cov(&r) > 1.0 {
                ResolvedPolicy::Pin
            } else {
                ResolvedPolicy::Pinc
            }
        }
    }
}

/// The score of one entry under a resolved policy; higher = keep.
pub fn score(resolved: ResolvedPolicy, entry: &CachedQuery) -> f64 {
    match resolved {
        ResolvedPolicy::Lru => entry.stats.last_used as f64,
        ResolvedPolicy::Lfu => entry.stats.hit_count as f64,
        ResolvedPolicy::Pin => entry.stats.tests_saved as f64,
        ResolvedPolicy::Pinc => entry.stats.cost_saved,
    }
}

/// TTL trigger: `true` iff the entry's last contribution — admission or
/// the most recent credited hit, whichever is later — is more than `ttl`
/// logical query ticks behind `now`. A `ttl` of 0 disables expiry
/// (the [`GcConfig::entry_ttl`](crate::config::GcConfig::entry_ttl)
/// default), keeping the capacity trigger the only eviction source.
pub fn expired(entry: &CachedQuery, now: u64, ttl: u64) -> bool {
    if ttl == 0 {
        return false;
    }
    let last_alive = entry.stats.last_used.max(entry.stats.inserted_at);
    now.saturating_sub(last_alive) > ttl
}

/// Selects which entries to keep when `entries` exceeds `capacity`:
/// returns the indices of the entries to **evict**, lowest score first
/// (ties: older insertion evicted first, then lower index, keeping the
/// result deterministic).
pub fn select_evictions(policy: Policy, entries: &[CachedQuery], capacity: usize) -> Vec<usize> {
    if entries.len() <= capacity {
        return Vec::new();
    }
    let resolved = resolve(policy, entries);
    let mut ranked: Vec<(usize, f64)> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| (i, score(resolved, e)))
        .collect();
    ranked.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                entries[a.0]
                    .stats
                    .inserted_at
                    .cmp(&entries[b.0].stats.inserted_at)
            })
            .then_with(|| a.0.cmp(&b.0))
    });
    ranked
        .into_iter()
        .take(entries.len() - capacity)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{BitSet, LabeledGraph};
    use gc_subiso::QueryKind;

    fn entry(tests_saved: u64, cost_saved: f64, hits: u64, last_used: u64) -> CachedQuery {
        let mut e = CachedQuery::new(
            LabeledGraph::from_parts(vec![0], &[]).unwrap(),
            QueryKind::Subgraph,
            BitSet::new(),
            0,
            0,
        );
        e.stats.tests_saved = tests_saved;
        e.stats.cost_saved = cost_saved;
        e.stats.hit_count = hits;
        e.stats.last_used = last_used;
        e
    }

    #[test]
    fn static_policies_resolve_to_themselves() {
        let es = vec![entry(1, 1.0, 1, 1)];
        assert_eq!(resolve(Policy::Lru, &es), ResolvedPolicy::Lru);
        assert_eq!(resolve(Policy::Lfu, &es), ResolvedPolicy::Lfu);
        assert_eq!(resolve(Policy::Pin, &es), ResolvedPolicy::Pin);
        assert_eq!(resolve(Policy::Pinc, &es), ResolvedPolicy::Pinc);
    }

    #[test]
    fn hybrid_switches_on_r_variability() {
        // low variability → PINC
        let low: Vec<CachedQuery> = (0..5).map(|i| entry(10 + i, 1.0, 1, 1)).collect();
        assert_eq!(resolve(Policy::Hybrid, &low), ResolvedPolicy::Pinc);
        // heavy-tailed R → PIN
        let mut high: Vec<CachedQuery> = (0..5).map(|_| entry(1, 1.0, 1, 1)).collect();
        high.push(entry(500, 1.0, 1, 1));
        assert_eq!(resolve(Policy::Hybrid, &high), ResolvedPolicy::Pin);
        // cold cache (all R = 0) → PINC
        let cold: Vec<CachedQuery> = (0..3).map(|_| entry(0, 0.0, 0, 0)).collect();
        assert_eq!(resolve(Policy::Hybrid, &cold), ResolvedPolicy::Pinc);
    }

    #[test]
    fn eviction_keeps_top_scorers() {
        let entries = vec![
            entry(5, 0.0, 0, 0), // PIN score 5
            entry(1, 0.0, 0, 0), // 1 — evicted
            entry(9, 0.0, 0, 0), // 9
            entry(2, 0.0, 0, 0), // 2 — evicted
        ];
        let evict = select_evictions(Policy::Pin, &entries, 2);
        assert_eq!(evict, vec![1, 3]);
    }

    #[test]
    fn eviction_noop_under_capacity() {
        let entries = vec![entry(1, 1.0, 1, 1)];
        assert!(select_evictions(Policy::Pin, &entries, 2).is_empty());
        assert!(select_evictions(Policy::Pin, &entries, 1).is_empty());
    }

    #[test]
    fn lru_lfu_scores() {
        let e = entry(7, 3.0, 4, 99);
        assert_eq!(score(ResolvedPolicy::Lru, &e), 99.0);
        assert_eq!(score(ResolvedPolicy::Lfu, &e), 4.0);
        assert_eq!(score(ResolvedPolicy::Pin, &e), 7.0);
        assert_eq!(score(ResolvedPolicy::Pinc, &e), 3.0);
    }

    #[test]
    fn ttl_expiry_tracks_last_contribution() {
        let mut e = entry(1, 1.0, 1, 10);
        e.stats.inserted_at = 4;
        assert!(!expired(&e, 12, 5), "used at tick 10, 2 ticks ago");
        assert!(expired(&e, 16, 5), "6 ticks idle > ttl 5");
        assert!(!expired(&e, 16, 0), "ttl 0 disables expiry");
        // a fresh admission counts as a contribution even with no hits
        let mut fresh = entry(0, 0.0, 0, 0);
        fresh.stats.inserted_at = 14;
        assert!(!expired(&fresh, 16, 5));
    }

    #[test]
    fn ties_evict_older_insertions_first() {
        let mut a = entry(1, 1.0, 1, 1);
        a.stats.inserted_at = 5;
        let mut b = entry(1, 1.0, 1, 1);
        b.stats.inserted_at = 2; // older
        let entries = vec![a, b];
        let evict = select_evictions(Policy::Pin, &entries, 1);
        assert_eq!(evict, vec![1], "older entry evicted on tie");
    }
}
