//! CON-R (retrospective validation) — correctness and dominance.
//!
//! Two properties:
//!
//! 1. **Exactness** (Theorems 3/6 extended): GC+ under CON-R returns
//!    exactly the cache-less Method M answers under arbitrary churn;
//! 2. **Dominance**: CON-R preserves a superset of the validity bits CON
//!    preserves — it never invalidates knowledge that plain Algorithm 2
//!    would keep (and keeps strictly more when changes oscillate).

use gc_core::entry::CachedQuery;
use gc_core::validator::{refresh_entry, refresh_entry_retro};
use gc_core::{baseline_execute, CacheModel, GcConfig, GraphCachePlus, MaintenanceMode};
use gc_dataset::{ChangeOp, ChangeRecord, LogAnalyzer, OpType, RetroAnalyzer};
use gc_graph::generate::random_connected_graph;
use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::{Algorithm, MethodM, QueryKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_records(seed: u64, n: usize, span: usize) -> Vec<ChangeRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let id = rng.random_range(0..span);
            match rng.random_range(0..6) {
                0 => ChangeRecord::structural(id, OpType::Add),
                1 => ChangeRecord::structural(id, OpType::Del),
                k => {
                    // few distinct edges → oscillation is common
                    let u = rng.random_range(0..3u32);
                    let v = rng.random_range(3..6u32);
                    let op = if k % 2 == 0 { OpType::Ua } else { OpType::Ur };
                    ChangeRecord::edge(id, op, u, v)
                }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Validity dominance: every bit CON keeps, CON-R keeps.
    #[test]
    fn retro_dominates_plain_validation(seed in 0u64..10_000) {
        let span = 12usize;
        let records = random_records(seed, 10, span);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let kind = if seed % 2 == 0 { QueryKind::Subgraph } else { QueryKind::Supergraph };
        let answer = BitSet::from_indices((0..span).filter(|_| rng.random::<bool>()));
        let graph = LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).unwrap();

        let mut plain = CachedQuery::new(graph.clone(), kind, answer.clone(), span, 0);
        let mut retro = CachedQuery::new(graph, kind, answer, span, 0);
        refresh_entry(&mut plain, &LogAnalyzer::analyze(&records), span);
        refresh_entry_retro(&mut retro, &RetroAnalyzer::analyze(&records), span);

        prop_assert!(
            plain.cg_valid.is_subset_of(&retro.cg_valid),
            "CON kept {:?} but CON-R only kept {:?} (seed {})",
            plain.cg_valid, retro.cg_valid, seed
        );
    }
}

/// End-to-end exactness of CON-R under oscillating churn, checked against
/// ground truth on every query.
#[test]
fn con_retro_is_exact_under_oscillating_churn() {
    let mut rng = StdRng::seed_from_u64(31);
    let initial: Vec<LabeledGraph> = (0..20)
        .map(|_| {
            let n = rng.random_range(5..12usize);
            random_connected_graph(&mut rng, n, 2, |r| r.random_range(0..3u16))
        })
        .collect();
    let config = GcConfig {
        model: CacheModel::ConRetro,
        cache_capacity: 10,
        window_capacity: 3,
        method: MethodM::new(Algorithm::Vf2Plus),
        ..GcConfig::default()
    };
    let mut gc = GraphCachePlus::new(config, initial.clone());
    let oracle = MethodM::new(Algorithm::Vf2);

    for i in 0..150 {
        // oscillating churn: flip an edge back and forth on a random graph
        if i % 3 == 0 {
            let live: Vec<usize> = gc.store().iter_live().map(|(id, _)| id).collect();
            let id = live[rng.random_range(0..live.len())];
            let g = gc.store().get(id).expect("live").clone();
            let first_edge = g.edges().next();
            if let Some((u, v)) = first_edge {
                gc.apply(ChangeOp::Ur { id, u, v }).unwrap();
                if i % 6 == 0 {
                    // half the time the change nets out before the query
                    gc.apply(ChangeOp::Ua { id, u, v }).unwrap();
                }
            }
        }
        let q = {
            let live: Vec<usize> = gc.store().iter_live().map(|(id, _)| id).collect();
            let src = gc
                .store()
                .get(live[rng.random_range(0..live.len())])
                .expect("live");
            match gc_graph::generate::bfs_extract(&mut rng, src, 0, src.edge_count().clamp(1, 4)) {
                Some(q) => q,
                None => continue,
            }
        };
        let got = gc.execute(&q, QueryKind::Subgraph);
        let truth = baseline_execute(gc.store(), &oracle, &q, QueryKind::Subgraph);
        assert_eq!(got.answer, truth.answer, "CON-R diverged at step {i}");
    }
}

/// CON-R saves at least as many tests as CON on a workload whose churn
/// oscillates (the scenario the extension targets).
#[test]
fn con_retro_saves_more_tests_on_oscillating_workload() {
    let mut rng = StdRng::seed_from_u64(41);
    let initial: Vec<LabeledGraph> = (0..30)
        .map(|_| random_connected_graph(&mut rng, 10, 3, |r| r.random_range(0..3u16)))
        .collect();
    // one fixed query pool replayed with oscillating edge churn
    let pool: Vec<LabeledGraph> = (0..6)
        .map(|i| gc_graph::generate::bfs_extract(&mut rng, &initial[i], 0, 4).expect("extractable"))
        .collect();

    let run = |model: CacheModel| {
        // Pin invalidate-mode maintenance: this test compares how much
        // knowledge each *validation model* discards, a distinction delta
        // repair erases by restoring every touched bit to ground truth.
        let mut gc = GraphCachePlus::new(
            GcConfig {
                model,
                method: MethodM::new(Algorithm::Vf2Plus),
                maintenance: MaintenanceMode::Invalidate,
                ..GcConfig::default()
            },
            initial.clone(),
        );
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..200 {
            if step % 4 == 3 {
                // UA+UR of the same edge: net neutral
                let id = rng.random_range(0..30);
                let g = gc.store().get(id).expect("live").clone();
                let first_edge = g.edges().next();
                if let Some((u, v)) = first_edge {
                    gc.apply(ChangeOp::Ur { id, u, v }).unwrap();
                    gc.apply(ChangeOp::Ua { id, u, v }).unwrap();
                }
            }
            let q = &pool[rng.random_range(0..pool.len())];
            gc.execute(q, QueryKind::Subgraph);
        }
        gc.aggregate_metrics().total_tests
    };

    let con = run(CacheModel::Con);
    let retro = run(CacheModel::ConRetro);
    assert!(
        retro < con,
        "CON-R ({retro} tests) should beat CON ({con} tests) under oscillation"
    );
}
