//! Property tests for the failure model: under random change sequences
//! interleaved with *injected worker panics*, *silent corruption* and
//! *mid-stream budget cancellations*, every answer GC+ returns is either
//! exactly the cache-less oracle answer or an explicitly degraded sound
//! subset of it — and the auditor always drains the quarantine.

use std::sync::Arc;

use gc_core::{baseline_execute, FaultInjector, FaultPlan, GcConfig, GraphCachePlus, QueryBudget};
use gc_dataset::ChangeOp;
use gc_graph::generate::{bfs_extract, random_connected_graph};
use gc_graph::LabeledGraph;
use gc_subiso::{Algorithm, MethodM, QueryKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Suppresses the default panic banner for injected faults only; genuine
/// panics still print. Installed once per test binary.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Draws one applicable change op against the live store (UA/UR-heavy, as
/// edge updates are the operations the validity machinery sweats over).
fn random_change_op(rng: &mut StdRng, gc: &GraphCachePlus) -> Option<ChangeOp> {
    let store = gc.store();
    let live: Vec<usize> = store.iter_live().map(|(i, _)| i).collect();
    match rng.random_range(0..6u8) {
        0 => {
            let n = rng.random_range(3..8usize);
            Some(ChangeOp::Add(random_connected_graph(rng, n, 1, |r| {
                r.random_range(0..3u16)
            })))
        }
        1 => {
            if live.is_empty() {
                None
            } else {
                Some(ChangeOp::Del(live[rng.random_range(0..live.len())]))
            }
        }
        2 | 3 => {
            // UA: add an absent edge to a live graph
            for _ in 0..8 {
                if live.is_empty() {
                    return None;
                }
                let id = live[rng.random_range(0..live.len())];
                let g = store.get(id).expect("live");
                let n = g.vertex_count() as u32;
                if n < 2 {
                    continue;
                }
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v && !g.has_edge(u, v) {
                    return Some(ChangeOp::Ua { id, u, v });
                }
            }
            None
        }
        _ => {
            // UR: remove a present edge from a live graph
            for _ in 0..8 {
                if live.is_empty() {
                    return None;
                }
                let id = live[rng.random_range(0..live.len())];
                let g = store.get(id).expect("live");
                let edges: Vec<_> = g.edges().collect();
                if edges.is_empty() {
                    continue;
                }
                let (u, v) = edges[rng.random_range(0..edges.len())];
                return Some(ChangeOp::Ur { id, u, v });
            }
            None
        }
    }
}

/// Draws a query: usually extracted from a live graph, sometimes random.
fn random_query(rng: &mut StdRng, gc: &GraphCachePlus) -> LabeledGraph {
    let store = gc.store();
    let live: Vec<usize> = store.iter_live().map(|(i, _)| i).collect();
    if !live.is_empty() && rng.random::<f64>() < 0.6 {
        let id = live[rng.random_range(0..live.len())];
        let g = store.get(id).expect("live");
        if g.edge_count() > 0 {
            let start = rng.random_range(0..g.vertex_count() as u32);
            let want = rng.random_range(1..=g.edge_count().min(5));
            if let Some(q) = bfs_extract(rng, g, start, want) {
                return q;
            }
        }
    }
    let n = rng.random_range(2..5usize);
    random_connected_graph(rng, n, 1, |r| r.random_range(0..3u16))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The chaos soundness property: with panics injected into the update
    /// and query paths, answer-set corruption injected behind the cache's
    /// back, and (on half the runs) a test cap that cancels Method M
    /// mid-stream, GC+ never returns a silently wrong answer, and the
    /// post-run audit leaves zero quarantined entries.
    #[test]
    fn answers_stay_sound_under_panics_and_cancellation(seed in 0u64..2_000) {
        silence_injected_panics();
        let mut rng = StdRng::seed_from_u64(seed);
        let kind = if seed % 2 == 0 { QueryKind::Subgraph } else { QueryKind::Supergraph };

        let initial: Vec<LabeledGraph> = (0..10)
            .map(|_| {
                let n = rng.random_range(4..10usize);
                random_connected_graph(&mut rng, n, 2, |r| r.random_range(0..3u16))
            })
            .collect();

        // half the runs cancel mid-stream via a tight test cap
        let budget = if seed % 2 == 0 {
            QueryBudget { deadline: None, max_tests: Some(rng.random_range(1..5u64)) }
        } else {
            QueryBudget::UNLIMITED
        };
        let config = GcConfig {
            cache_capacity: 6,
            window_capacity: 2,
            budget,
            ..GcConfig::default()
        };
        let mut gc = GraphCachePlus::new(config, initial);

        // a fresh fault plan per case: one update panic, one query panic,
        // one silent corruption, all within the run's horizon
        let plan: FaultPlan = format!(
            "panic-update@{};panic-query@{};corrupt@{}:{}",
            rng.random_range(1..12u64),
            rng.random_range(1..20u64),
            rng.random_range(1..12u64),
            rng.random_range(0..14usize),
        )
        .parse()
        .expect("generated plan parses");
        gc.set_fault_injector(Arc::new(FaultInjector::new(plan)));

        let oracle = MethodM::new(Algorithm::Vf2);
        for step in 0..25 {
            let changes = rng.random_range(0..3usize);
            let mut changed = false;
            for _ in 0..changes {
                if let Some(op) = random_change_op(&mut rng, &gc) {
                    gc.apply_isolated(op).expect("op drawn applicable");
                    changed = true;
                }
            }
            // corruption lands on the update path; audit before querying
            // so only *tagged* degradation can reach a client
            if changed {
                gc.audit(1.0, seed + step);
            }

            let q = random_query(&mut rng, &gc);
            let out = gc.execute_isolated(&q, kind);
            let truth = baseline_execute(gc.store(), &oracle, &q, kind);
            if out.metrics.degraded.is_some() {
                // degraded ⇒ sound partial: verified positives only
                prop_assert!(
                    out.answer.is_subset_of(&truth.answer),
                    "degraded answer invented a positive at step {} (seed {})",
                    step, seed
                );
            } else {
                prop_assert_eq!(
                    &out.answer, &truth.answer,
                    "silent divergence at step {} (seed {})",
                    step, seed
                );
            }
        }

        // the auditor must drain whatever quarantine the panics left
        gc.audit(1.0, seed);
        prop_assert_eq!(gc.quarantined_entries(), 0, "quarantine not drained (seed {})", seed);
    }

    /// Health accounting follows the plan: every injected panic is counted
    /// as recovered, and a tight test cap yields tagged (never silent)
    /// degradation.
    #[test]
    fn health_counters_match_injections(seed in 0u64..500) {
        silence_injected_panics();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let initial: Vec<LabeledGraph> = (0..6)
            .map(|_| random_connected_graph(&mut rng, 6, 2, |r| r.random_range(0..2u16)))
            .collect();
        let mut gc = GraphCachePlus::new(
            GcConfig {
                cache_capacity: 4,
                window_capacity: 2,
                budget: QueryBudget { deadline: None, max_tests: Some(1) },
                ..GcConfig::default()
            },
            initial,
        );
        let nth = rng.random_range(1..8u64);
        gc.set_fault_injector(Arc::new(FaultInjector::new(
            format!("panic-query@{nth}").parse().expect("parses"),
        )));

        let mut degraded_seen = 0u64;
        for _ in 0..8 {
            let q = random_query(&mut rng, &gc);
            let out = gc.execute_isolated(&q, QueryKind::Subgraph);
            if out.metrics.degraded.is_some() {
                degraded_seen += 1;
                let truth = baseline_execute(
                    gc.store(),
                    &MethodM::new(Algorithm::Vf2),
                    &q,
                    QueryKind::Subgraph,
                );
                prop_assert!(out.answer.is_subset_of(&truth.answer));
            }
        }
        let h = gc.health_snapshot();
        // the planned query panic fired exactly once and was contained
        // (ordinal 8 is unreachable only if a retry consumed it earlier,
        // which still counts one recovery)
        prop_assert_eq!(h.panics_recovered, 1, "seed {}", seed);
        prop_assert_eq!(h.degraded_queries, degraded_seen, "seed {}", seed);
    }
}
