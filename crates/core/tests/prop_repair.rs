//! Property tests for the delta-repair maintenance pipeline.
//!
//! The repair refresh only touches bits Algorithm 2 would invalidate, so
//! its contract splits in two:
//!
//! 1. **Splice correctness** — every bit the repair pass resolves (kept
//!    valid where plain validation would clear it) equals a from-scratch
//!    recomputation against the live dataset;
//! 2. **Mode equivalence** — a repair-mode cache and an invalidate-mode
//!    cache produce bit-identical answers over any shared workload: the
//!    repaired bits are ground truth, and the bits repair leaves alone
//!    are exactly the bits invalidation leaves alone.
//!
//! Both are exercised under randomized UA/UR splice sequences, with
//! degraded (partially-invalid) and quarantined entries in the mix.

use gc_core::entry::CachedQuery;
use gc_core::validator::{refresh_entry_repair, MaintenanceOutcome};
use gc_core::{baseline_execute, GcConfig, GraphCachePlus, MaintenanceMode};
use gc_dataset::{ChangeLog, ChangeOp, GraphStore, LogAnalyzer, LogCursor, OpType};
use gc_graph::generate::{bfs_extract, random_connected_graph};
use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::{Algorithm, QueryKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ground_truth_answer(query: &LabeledGraph, kind: QueryKind, store: &GraphStore) -> BitSet {
    let m = Algorithm::Vf2.matcher();
    let mut answer = BitSet::new();
    for (id, g) in store.iter_live() {
        let contained = match kind {
            QueryKind::Subgraph => m.contains(query, g),
            QueryKind::Supergraph => m.contains(g, query),
        };
        if contained {
            answer.set(id, true);
        }
    }
    answer
}

/// Applies one random UA or UR to a live graph, logging it. Splice-only
/// churn: the graph population is fixed, edges oscillate.
fn apply_random_splice(rng: &mut StdRng, store: &mut GraphStore, log: &mut ChangeLog) -> bool {
    let live: Vec<usize> = store.iter_live().map(|(i, _)| i).collect();
    if live.is_empty() {
        return false;
    }
    for _ in 0..8 {
        let id = live[rng.random_range(0..live.len())];
        let g = store.get(id).expect("live");
        if rng.random::<bool>() {
            let n = g.vertex_count() as u32;
            if n < 2 {
                continue;
            }
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v && !g.has_edge(u, v) {
                store.add_edge(id, u, v).expect("absent");
                log.append_edge(id, OpType::Ua, u, v);
                return true;
            }
        } else {
            let edges: Vec<_> = g.edges().collect();
            if edges.is_empty() {
                continue;
            }
            let (u, v) = edges[rng.random_range(0..edges.len())];
            store.remove_edge(id, u, v).expect("present");
            log.append_edge(id, OpType::Ur, u, v);
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After a repair refresh with ample budget, every valid bit on a
    /// live graph — repaired or kept — matches a recomputed ground truth,
    /// for both query polarities, across multiple splice rounds. Degraded
    /// entries (pre-cleared validity bits) never get bits resurrected,
    /// and quarantine survives the repair untouched.
    #[test]
    fn repaired_bits_match_recomputation(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kind = if seed % 2 == 0 { QueryKind::Subgraph } else { QueryKind::Supergraph };

        let graphs: Vec<LabeledGraph> = (0..8)
            .map(|_| {
                let n = rng.random_range(3..8usize);
                random_connected_graph(&mut rng, n, 1, |r| r.random_range(0..3u16))
            })
            .collect();
        let mut store = GraphStore::from_graphs(graphs);
        let mut log = ChangeLog::new();

        let qn = rng.random_range(2..5usize);
        let query = random_connected_graph(&mut rng, qn, 0, |r| r.random_range(0..3u16));
        let answer = ground_truth_answer(&query, kind, &store);
        let mut entry = CachedQuery::new(query.clone(), kind, answer, store.id_span(), 0);
        // degrade the entry: a few bits start invalid
        let degraded: Vec<usize> = (0..store.id_span())
            .filter(|_| rng.random::<f64>() < 0.25)
            .collect();
        for &i in &degraded {
            entry.cg_valid.set(i, false);
        }
        entry.quarantined = seed % 3 == 0;
        let was_quarantined = entry.quarantined;

        let mut cursor = LogCursor::default();
        let mut outcome = MaintenanceOutcome::default();
        for _round in 0..3 {
            let changes = rng.random_range(1..5usize);
            for _ in 0..changes {
                apply_random_splice(&mut rng, &mut store, &mut log);
            }
            let counters = LogAnalyzer::analyze(log.records_since(cursor));
            cursor = log.head();
            let mut budget = u64::MAX;
            refresh_entry_repair(
                &mut entry,
                &counters,
                &store,
                Algorithm::Vf2,
                &mut budget,
                &mut outcome,
            );

            let truth = ground_truth_answer(&query, kind, &store);
            for (id, _) in store.iter_live() {
                if entry.cg_valid.get(id) {
                    prop_assert_eq!(
                        entry.answer.get(id),
                        truth.get(id),
                        "untruthful bit after repair: graph {} kind {:?} (seed {})",
                        id, kind, seed
                    );
                }
            }
        }
        prop_assert_eq!(entry.quarantined, was_quarantined, "repair must not touch quarantine");
        for &i in &degraded {
            prop_assert!(!entry.cg_valid.get(i), "repair resurrected a pre-invalid bit");
        }
        prop_assert_eq!(outcome.repair_fallbacks, 0, "unlimited budget never falls back");
    }

    /// With a zero budget, repair degrades gracefully: no SI test runs,
    /// and every bit that stays valid is still truthful (signature
    /// disproofs are resolved for free; everything else is invalidated,
    /// exactly like plain Algorithm 2).
    #[test]
    fn zero_budget_repair_stays_sound(seed in 0u64..2_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0D6E7);
        let graphs: Vec<LabeledGraph> = (0..6)
            .map(|_| random_connected_graph(&mut rng, 5, 1, |r| r.random_range(0..2u16)))
            .collect();
        let mut store = GraphStore::from_graphs(graphs);
        let mut log = ChangeLog::new();
        let query = random_connected_graph(&mut rng, 3, 0, |r| r.random_range(0..2u16));
        let answer = ground_truth_answer(&query, QueryKind::Subgraph, &store);
        let mut entry =
            CachedQuery::new(query.clone(), QueryKind::Subgraph, answer, store.id_span(), 0);

        for _ in 0..4 {
            apply_random_splice(&mut rng, &mut store, &mut log);
        }
        let counters = LogAnalyzer::analyze(log.records_since(LogCursor::default()));
        let mut budget = 0u64;
        let mut outcome = MaintenanceOutcome::default();
        refresh_entry_repair(
            &mut entry,
            &counters,
            &store,
            Algorithm::Vf2,
            &mut budget,
            &mut outcome,
        );
        prop_assert_eq!(outcome.repair_tests, 0, "zero budget runs zero SI tests");

        let truth = ground_truth_answer(&query, QueryKind::Subgraph, &store);
        for (id, _) in store.iter_live() {
            if entry.cg_valid.get(id) {
                prop_assert_eq!(entry.answer.get(id), truth.get(id), "graph {}", id);
            }
        }
    }

    /// End-to-end mode equivalence: a repair-mode cache and an
    /// invalidate-mode cache replay the same workload — splice churn plus
    /// ADD/DEL to exercise the always-invalidate legs — and every query's
    /// answer is bit-identical, and exact against a cache-less oracle.
    #[test]
    fn repair_and_invalidate_answers_are_identical(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let initial: Vec<LabeledGraph> = (0..10)
            .map(|_| {
                let n = rng.random_range(4..9usize);
                random_connected_graph(&mut rng, n, 2, |r| r.random_range(0..3u16))
            })
            .collect();
        let mk = |maintenance| {
            GraphCachePlus::new(
                GcConfig {
                    maintenance,
                    cache_capacity: 16,
                    window_capacity: 2,
                    ..GcConfig::default()
                },
                initial.clone(),
            )
        };
        let mut repair = mk(MaintenanceMode::Repair);
        let mut invalidate = mk(MaintenanceMode::Invalidate);
        let oracle = gc_subiso::MethodM::new(Algorithm::Vf2);

        let mut wrng = StdRng::seed_from_u64(seed ^ 0xCAFE);
        for step in 0..20 {
            if step % 3 == 1 {
                // the same change applied to both instances
                let live: Vec<usize> = repair.store().iter_live().map(|(i, _)| i).collect();
                let id = live[wrng.random_range(0..live.len())];
                let g = repair.store().get(id).expect("live").clone();
                let op = match wrng.random_range(0..4u8) {
                    0 => ChangeOp::Add(random_connected_graph(&mut wrng, 4, 1, |r| {
                        r.random_range(0..3u16)
                    })),
                    1 if live.len() > 2 => ChangeOp::Del(id),
                    _ => match g.edges().next() {
                        Some((u, v)) => ChangeOp::Ur { id, u, v },
                        None => continue,
                    },
                };
                repair.apply(op.clone()).unwrap();
                invalidate.apply(op).unwrap();
            }
            let q = {
                let live: Vec<usize> = repair.store().iter_live().map(|(i, _)| i).collect();
                let src = repair
                    .store()
                    .get(live[wrng.random_range(0..live.len())])
                    .expect("live");
                match bfs_extract(&mut wrng, src, 0, src.edge_count().clamp(1, 4)) {
                    Some(q) => q,
                    None => continue,
                }
            };
            let kind = if step % 4 == 0 { QueryKind::Supergraph } else { QueryKind::Subgraph };
            let a = repair.execute(&q, kind);
            let b = invalidate.execute(&q, kind);
            prop_assert_eq!(&a.answer, &b.answer, "modes diverged at step {} (seed {})", step, seed);
            let truth = baseline_execute(repair.store(), &oracle, &q, kind);
            prop_assert_eq!(&a.answer, &truth.answer, "repair inexact at step {} (seed {})", step, seed);
        }
    }
}
