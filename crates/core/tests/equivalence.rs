//! Theorems 3 & 6, enforced empirically: for ANY interleaving of queries
//! and dataset changes, under either cache model, any replacement policy
//! and any Method M, GC+ returns exactly the answer set that cache-less
//! Method M computes on the live dataset — no false positives, no false
//! negatives.
//!
//! These tests drive a miniature GC+ deployment through randomized
//! workloads with aggressive churn (far more changes per query than the
//! paper's plan) to stress the validity machinery, comparing every single
//! answer to a freshly computed ground truth.

use gc_core::{baseline_execute, CacheModel, CandidateSource, GcConfig, GraphCachePlus, Policy};
use gc_dataset::{ChangeOp, OpType};
use gc_graph::generate::{bfs_extract, random_connected_graph};
use gc_graph::LabeledGraph;
use gc_subiso::{Algorithm, MethodM, QueryKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_dataset(rng: &mut StdRng, count: usize) -> Vec<LabeledGraph> {
    (0..count)
        .map(|_| {
            let n = rng.random_range(4..14usize);
            let extra = rng.random_range(0..4usize);
            random_connected_graph(rng, n, extra, |r| r.random_range(0..3u16))
        })
        .collect()
}

/// Draws a query: usually extracted from a random live graph (guaranteed
/// hits), sometimes random (often empty answers).
fn random_query(rng: &mut StdRng, gc: &GraphCachePlus) -> LabeledGraph {
    let store = gc.store();
    let live: Vec<usize> = store.iter_live().map(|(i, _)| i).collect();
    if !live.is_empty() && rng.random::<f64>() < 0.7 {
        let id = live[rng.random_range(0..live.len())];
        let g = store.get(id).expect("live");
        if g.edge_count() > 0 {
            let start = rng.random_range(0..g.vertex_count() as u32);
            let want = rng.random_range(1..=g.edge_count().min(6));
            if let Some(q) = bfs_extract(rng, g, start, want) {
                return q;
            }
        }
    }
    let n = rng.random_range(2..6usize);
    random_connected_graph(rng, n, 1, |r| r.random_range(0..3u16))
}

/// Applies a random dataset change through the GC+ facade.
fn random_change(rng: &mut StdRng, gc: &mut GraphCachePlus, initial: &[LabeledGraph]) {
    let op = OpType::ALL[rng.random_range(0..4usize)];
    let live: Vec<usize> = gc.store().iter_live().map(|(i, _)| i).collect();
    match op {
        OpType::Add => {
            let g = initial[rng.random_range(0..initial.len())].clone();
            gc.apply(ChangeOp::Add(g)).expect("add never fails");
        }
        OpType::Del if !live.is_empty() => {
            let id = live[rng.random_range(0..live.len())];
            gc.apply(ChangeOp::Del(id)).expect("picked live id");
        }
        OpType::Ua if !live.is_empty() => {
            let id = live[rng.random_range(0..live.len())];
            let g = gc.store().get(id).expect("live");
            let n = g.vertex_count() as u32;
            if n >= 2 {
                for _ in 0..16 {
                    let u = rng.random_range(0..n);
                    let v = rng.random_range(0..n);
                    if u != v && !g.has_edge(u, v) {
                        gc.apply(ChangeOp::Ua { id, u, v }).expect("edge absent");
                        return;
                    }
                }
            }
        }
        OpType::Ur if !live.is_empty() => {
            let id = live[rng.random_range(0..live.len())];
            let g = gc.store().get(id).expect("live");
            let edges: Vec<_> = g.edges().collect();
            if !edges.is_empty() {
                let (u, v) = edges[rng.random_range(0..edges.len())];
                gc.apply(ChangeOp::Ur { id, u, v }).expect("edge present");
            }
        }
        _ => {}
    }
}

/// Runs `queries` interleaved with aggressive churn, checking every answer
/// against cache-less ground truth.
fn run_equivalence(
    seed: u64,
    model: CacheModel,
    policy: Policy,
    algorithm: Algorithm,
    kind: QueryKind,
    queries: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = random_dataset(&mut rng, 25);
    let config = GcConfig {
        cache_capacity: 8,
        window_capacity: 3,
        model,
        policy,
        method: MethodM::new(algorithm),
        internal_matcher: Algorithm::Vf2Plus,
        // half the runs exercise the index-backed CS_M path, half the
        // paper's full live scan
        candidate_source: if seed.is_multiple_of(2) {
            CandidateSource::LabelIndex
        } else {
            CandidateSource::LiveScan
        },
        // a third of the runs exercise the parallel probe path
        probe_parallelism: if seed.is_multiple_of(3) { 4 } else { 1 },
        ..GcConfig::default()
    };
    let mut gc = GraphCachePlus::new(config, initial.clone());
    let oracle_method = MethodM::new(Algorithm::Vf2);

    for i in 0..queries {
        // heavy churn: ~1.2 ops per query on a 25-graph dataset
        let ops = rng.random_range(0..3);
        for _ in 0..ops {
            random_change(&mut rng, &mut gc, &initial);
        }
        let q = random_query(&mut rng, &gc);
        let got = gc.execute(&q, kind);
        let expected = baseline_execute(gc.store(), &oracle_method, &q, kind);
        assert_eq!(
            got.answer, expected.answer,
            "answer divergence at query {i} (seed {seed}, {model}, {policy:?}, {algorithm}, {kind:?})\nquery: {q:?}"
        );
    }
}

#[test]
fn con_model_is_exact_subgraph() {
    run_equivalence(
        1,
        CacheModel::Con,
        Policy::Hybrid,
        Algorithm::Vf2,
        QueryKind::Subgraph,
        120,
    );
}

#[test]
fn evi_model_is_exact_subgraph() {
    run_equivalence(
        2,
        CacheModel::Evi,
        Policy::Hybrid,
        Algorithm::Vf2,
        QueryKind::Subgraph,
        120,
    );
}

#[test]
fn con_model_is_exact_supergraph() {
    run_equivalence(
        3,
        CacheModel::Con,
        Policy::Hybrid,
        Algorithm::Vf2Plus,
        QueryKind::Supergraph,
        120,
    );
}

#[test]
fn evi_model_is_exact_supergraph() {
    run_equivalence(
        4,
        CacheModel::Evi,
        Policy::Pin,
        Algorithm::GraphQl,
        QueryKind::Supergraph,
        80,
    );
}

#[test]
fn all_policies_preserve_correctness() {
    for (i, policy) in [
        Policy::Lru,
        Policy::Lfu,
        Policy::Pin,
        Policy::Pinc,
        Policy::Hybrid,
    ]
    .into_iter()
    .enumerate()
    {
        run_equivalence(
            10 + i as u64,
            CacheModel::Con,
            policy,
            Algorithm::Vf2Plus,
            QueryKind::Subgraph,
            60,
        );
    }
}

#[test]
fn all_methods_produce_identical_answers_and_test_counts() {
    // Figure 5's premise: the pruned candidate set — hence the test count —
    // is identical whatever SI algorithm Method M uses.
    let mut rng = StdRng::seed_from_u64(77);
    let initial = random_dataset(&mut rng, 20);
    let mk = |algo| {
        GraphCachePlus::new(
            GcConfig {
                cache_capacity: 8,
                window_capacity: 3,
                method: MethodM::new(algo),
                ..GcConfig::default()
            },
            initial.clone(),
        )
    };
    let mut systems: Vec<GraphCachePlus> = Algorithm::ALL.into_iter().map(mk).collect();

    // Each system replays the SAME seeded stream of changes and queries;
    // state evolution is identical, so answers and pruned-candidate sizes
    // must coincide exactly across SI algorithms.
    let mut counts: Vec<Vec<(Vec<usize>, u64)>> = vec![Vec::new(); systems.len()];
    for (si, gc) in systems.iter_mut().enumerate() {
        let mut rng = StdRng::seed_from_u64(555);
        for _ in 0..60 {
            if rng.random::<f64>() < 0.3 {
                random_change(&mut rng, gc, &initial);
            }
            let q = random_query(&mut rng, gc);
            let out = gc.execute(&q, QueryKind::Subgraph);
            counts[si].push((
                out.answer.iter_ones().collect::<Vec<_>>(),
                out.metrics.subiso_tests,
            ));
        }
    }
    assert_eq!(counts[0], counts[1], "VF2 vs VF2+ diverged");
    assert_eq!(counts[1], counts[2], "VF2+ vs GQL diverged");
}

#[test]
fn zero_capacity_cache_degenerates_to_baseline() {
    let mut rng = StdRng::seed_from_u64(99);
    let initial = random_dataset(&mut rng, 15);
    let config = GcConfig {
        cache_capacity: 0,
        window_capacity: 0,
        ..GcConfig::default()
    };
    let mut gc = GraphCachePlus::new(config, initial.clone());
    for _ in 0..30 {
        let q = random_query(&mut rng, &gc);
        let out = gc.execute(&q, QueryKind::Subgraph);
        assert_eq!(out.metrics.tests_saved, 0, "nothing cached, nothing saved");
        let truth = baseline_execute(
            gc.store(),
            &MethodM::new(Algorithm::Vf2),
            &q,
            QueryKind::Subgraph,
        );
        assert_eq!(out.answer, truth.answer);
    }
}
