//! Differential harness, system layer: every workload cell runs the
//! index-backed pipeline (the default `CandidateSource::LabelIndex`) and
//! the paper-faithful scan-backed pipeline (`CandidateSource::LiveScan`)
//! **side by side** — same dataset, same query stream, same churn — and
//! asserts, per query:
//!
//! * **bit-identical answers** (Theorems 3/6 hold for either candidate
//!   source);
//! * **metrics-compatible candidate counts** — the index-backed
//!   `candidate_size` equals an independently recomputed brute-force
//!   signature sweep of the live store, never exceeds the scan-backed
//!   count, and every cold-cache query tests exactly its candidates;
//! * **identical audit verdicts** after injected corruption.
//!
//! The cells cover the six paper workloads (ZZ/ZU/UU and 0/20/50%),
//! random UA/UR interleavings, injected panics, and budget cancellation.

use gc_core::{
    baseline_execute, CandidateSource, FaultInjector, GcConfig, GraphCachePlus, QueryBudget,
    QueryOutcome,
};
use gc_dataset::aids::{synthetic_aids, AidsConfig};
use gc_dataset::ChangeOp;
use gc_graph::LabeledGraph;
use gc_subiso::{Algorithm, MethodM, QueryKind};
use gc_workload::{generate_type_a, generate_type_b, TypeAConfig, TypeBConfig, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn config(source: CandidateSource) -> GcConfig {
    GcConfig {
        cache_capacity: 64,
        window_capacity: 8,
        method: MethodM::new(Algorithm::Vf2Plus),
        candidate_source: source,
        ..GcConfig::default()
    }
}

fn pair(dataset: &[LabeledGraph]) -> (GraphCachePlus, GraphCachePlus) {
    (
        GraphCachePlus::new(config(CandidateSource::LabelIndex), dataset.to_vec()),
        GraphCachePlus::new(config(CandidateSource::LiveScan), dataset.to_vec()),
    )
}

/// Brute-force recount of the index's candidate set: live graphs whose
/// maintained signature passes full domination for this query — computed
/// straight off the store, independent of the postings machinery.
fn bruteforce_candidates(gc: &GraphCachePlus, q: &LabeledGraph, kind: QueryKind) -> u64 {
    let qsig = q.signature();
    gc.store()
        .iter_live()
        .filter(|(_, g)| match kind {
            QueryKind::Subgraph => g.signature().dominates(qsig),
            QueryKind::Supergraph => qsig.dominates(g.signature()),
        })
        .count() as u64
}

/// One differential step: run the same query through both pipelines and
/// check answers and candidate accounting.
fn step(
    indexed: &mut GraphCachePlus,
    scanned: &mut GraphCachePlus,
    q: &LabeledGraph,
    kind: QueryKind,
    ctx: &str,
) -> (QueryOutcome, QueryOutcome) {
    let expect_cands = bruteforce_candidates(indexed, q, kind);
    let a = indexed.execute(q, kind);
    let b = scanned.execute(q, kind);
    assert_eq!(a.answer, b.answer, "answer divergence: {ctx}");
    assert_eq!(
        a.metrics.candidate_size, expect_cands,
        "index candidates must equal the brute-force signature sweep: {ctx}"
    );
    assert!(
        a.metrics.candidate_size <= b.metrics.candidate_size,
        "the index can only shrink CS_M: {ctx}"
    );
    (a, b)
}

/// Applies the same random UA/UR-heavy churn to both instances.
fn churn(rng: &mut StdRng, indexed: &mut GraphCachePlus, scanned: &mut GraphCachePlus) {
    let live: Vec<usize> = indexed.store().iter_live().map(|(id, _)| id).collect();
    if live.is_empty() {
        return;
    }
    let id = live[rng.random_range(0..live.len())];
    let op = match rng.random_range(0..8u32) {
        0 => ChangeOp::Add(indexed.store().get(id).unwrap().clone()),
        1 => ChangeOp::Del(id),
        n => {
            let g = indexed.store().get(id).unwrap();
            let edges: Vec<(u32, u32)> = g.edges().collect();
            if n.is_multiple_of(2) && !edges.is_empty() {
                let (u, v) = edges[rng.random_range(0..edges.len())];
                ChangeOp::Ur { id, u, v }
            } else {
                let vcount = g.vertex_count() as u32;
                let missing = (0..vcount)
                    .flat_map(|u| (u + 1..vcount).map(move |v| (u, v)))
                    .find(|&(u, v)| !g.has_edge(u, v));
                match missing {
                    Some((u, v)) => ChangeOp::Ua { id, u, v },
                    None => return,
                }
            }
        }
    };
    indexed.apply(op.clone()).unwrap();
    scanned.apply(op).unwrap();
}

fn six_workloads(dataset: &[LabeledGraph]) -> Vec<Workload> {
    let mut cells = vec![
        generate_type_a(dataset, &TypeAConfig::zz(60, 21)),
        generate_type_a(dataset, &TypeAConfig::zu(60, 22)),
        generate_type_a(dataset, &TypeAConfig::uu(60, 23)),
    ];
    for (i, p) in [0.0, 0.2, 0.5].into_iter().enumerate() {
        cells.push(generate_type_b(
            dataset,
            &TypeBConfig::scaled(60, 12, 4, p, 31 + i as u64),
        ));
    }
    cells
}

#[test]
fn all_six_workloads_agree_under_churn() {
    let dataset = synthetic_aids(&AidsConfig::scaled(70, 5));
    for (w_i, w) in six_workloads(&dataset).iter().enumerate() {
        let (mut indexed, mut scanned) = pair(&dataset);
        let mut rng = StdRng::seed_from_u64(0xD1FF ^ w_i as u64);
        for (i, q) in w.queries.iter().enumerate() {
            // random UA/UR interleavings: ~0.7 ops per query
            if rng.random_range(0..10u32) < 7 {
                churn(&mut rng, &mut indexed, &mut scanned);
            }
            let ctx = format!("workload {} ({}), query {i}", w.name, w_i);
            step(&mut indexed, &mut scanned, q, w.kind, &ctx);
        }
        // the index absorbed every logged op incrementally — no rebuilds
        let idx = indexed.label_index().expect("index-backed pipeline");
        assert_eq!(
            idx.records_replayed(),
            indexed.log_len() as u64,
            "workload {}: replay count must cover the whole log",
            w.name
        );
        // and converged to exactly what a fresh build would produce
        let fresh = indexed.with_dataset(|store, log| gc_dataset::LabelIndex::build(store, log));
        assert!(
            indexed
                .label_index()
                .expect("index-backed pipeline")
                .same_structure(&fresh),
            "workload {}: index diverged structurally from a fresh build",
            w.name
        );
    }
}

#[test]
fn audit_verdicts_are_identical_after_injected_corruption() {
    let dataset = synthetic_aids(&AidsConfig::scaled(50, 9));
    let w = generate_type_a(&dataset, &TypeAConfig::zu(20, 5));
    let (mut indexed, mut scanned) = pair(&dataset);
    for q in &w.queries {
        step(&mut indexed, &mut scanned, q, w.kind, "audit warmup");
    }
    // identical corruption against both caches: flip graph 0's answer bit
    // in the first resident entry right after the next update commits
    for gc in [&mut indexed, &mut scanned] {
        gc.set_fault_injector(Arc::new(FaultInjector::new("corrupt@1:0".parse().unwrap())));
        gc.apply(ChangeOp::Add(dataset[1].clone())).unwrap();
    }
    let ra = indexed.audit(1.0, 77);
    let rb = scanned.audit(1.0, 77);
    assert_eq!(ra.sampled, rb.sampled, "same entries under audit");
    assert_eq!(ra.repaired, rb.repaired, "same corruption found and fixed");
    assert_eq!(ra.clean, rb.clean);
    assert_eq!(ra.evicted, rb.evicted);
    assert!(ra.repaired >= 1, "the injected corruption was caught");
    assert_eq!(indexed.quarantined_entries(), 0);
    assert_eq!(scanned.quarantined_entries(), 0);
    // post-audit both serve the oracle answer again
    for q in w.queries.iter().take(5) {
        step(&mut indexed, &mut scanned, q, w.kind, "post-audit");
    }
}

#[test]
fn injected_panics_recover_identically() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let dataset = synthetic_aids(&AidsConfig::scaled(40, 13));
    let w = generate_type_a(&dataset, &TypeAConfig::uu(15, 6));
    let (mut indexed, mut scanned) = pair(&dataset);
    let plan = "panic-query@2;panic-query@7;panic-query@11";
    indexed.set_fault_injector(Arc::new(FaultInjector::new(plan.parse().unwrap())));
    scanned.set_fault_injector(Arc::new(FaultInjector::new(plan.parse().unwrap())));
    let oracle_method = MethodM::new(Algorithm::Vf2);
    for (i, q) in w.queries.iter().enumerate() {
        let a = indexed.execute_isolated(q, w.kind);
        let b = scanned.execute_isolated(q, w.kind);
        assert_eq!(a.answer, b.answer, "query {i} under panic plan");
        let truth = baseline_execute(indexed.store(), &oracle_method, q, w.kind);
        assert_eq!(a.answer, truth.answer, "query {i} still exact");
    }
    std::panic::set_hook(prev);
    assert_eq!(
        indexed.health_snapshot().panics_recovered,
        scanned.health_snapshot().panics_recovered,
        "both pipelines contained the same number of panics"
    );
    assert!(indexed.health_snapshot().panics_recovered >= 1);
}

#[test]
fn budget_cancellation_degrades_identically_soundly() {
    let dataset = synthetic_aids(&AidsConfig::scaled(60, 17));
    let w = generate_type_a(&dataset, &TypeAConfig::zz(20, 7));
    // zero-capacity caches: no probes charge the budget and no admissions
    // diverge, so the two pipelines differ *only* in their candidate source
    let zero = |source| GcConfig {
        cache_capacity: 0,
        window_capacity: 0,
        ..config(source)
    };
    let mut indexed = GraphCachePlus::new(zero(CandidateSource::LabelIndex), dataset.clone());
    let mut scanned = GraphCachePlus::new(zero(CandidateSource::LiveScan), dataset.clone());
    let tight = QueryBudget {
        deadline: None,
        max_tests: Some(3),
    };
    let oracle_method = MethodM::new(Algorithm::Vf2);
    for (i, q) in w.queries.iter().enumerate() {
        let a = indexed.execute_budgeted(q, w.kind, tight);
        let b = scanned.execute_budgeted(q, w.kind, tight);
        let truth = baseline_execute(indexed.store(), &oracle_method, q, w.kind);
        // partial answers are sound on both sides
        assert!(a.answer.is_subset_of(&truth.answer), "query {i} indexed");
        assert!(b.answer.is_subset_of(&truth.answer), "query {i} scanned");
        // when neither side degraded, they must agree exactly
        if a.metrics.degraded.is_none() && b.metrics.degraded.is_none() {
            assert_eq!(a.answer, b.answer, "query {i} undegraded divergence");
            assert_eq!(a.answer, truth.answer);
        }
        // the index can only make a budget *easier* to satisfy: if the
        // scan-backed side finished, the index-backed side (fewer or
        // equal candidates) must have finished too
        if b.metrics.degraded.is_none() {
            assert!(
                a.metrics.degraded.is_none(),
                "query {i}: index-backed degraded where scan-backed did not"
            );
        }
    }
    assert!(
        indexed.aggregate_metrics().degraded_queries
            <= scanned.aggregate_metrics().degraded_queries,
        "index-backed pipeline degrades at most as often as scan-backed"
    );
}
