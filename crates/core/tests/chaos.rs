//! Failure injection and degenerate-configuration tests: GC+ must stay
//! exact (or fail loudly) when the deployment is hostile — empty datasets,
//! single-slot caches, dataset wiped mid-stream, bulk mutations bypassing
//! the facade, graphs shrunk to the empty edge set, and every combination
//! of degenerate window/cache capacities.

use gc_core::{baseline_execute, CacheModel, GcConfig, GraphCachePlus};
use gc_dataset::ChangeOp;
use gc_graph::LabeledGraph;
use gc_subiso::{Algorithm, MethodM, QueryKind};

fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
    LabeledGraph::from_parts(labels, edges).unwrap()
}

fn check_exact(gc: &mut GraphCachePlus, q: &LabeledGraph, kind: QueryKind, what: &str) {
    let got = gc.execute(q, kind);
    let truth = baseline_execute(gc.store(), &MethodM::new(Algorithm::Vf2), q, kind);
    assert_eq!(got.answer, truth.answer, "{what}");
}

#[test]
fn empty_dataset_everything_is_empty() {
    let mut gc = GraphCachePlus::new(GcConfig::default(), Vec::new());
    let q = g(vec![0], &[]);
    for kind in [QueryKind::Subgraph, QueryKind::Supergraph] {
        let out = gc.execute(&q, kind);
        assert!(out.answer.is_empty());
        assert_eq!(out.metrics.subiso_tests, 0);
    }
    // adding the first graph wakes everything up
    gc.apply(ChangeOp::Add(g(vec![0, 0], &[(0, 1)]))).unwrap();
    let out = gc.execute(&q, QueryKind::Subgraph);
    assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![0]);
}

#[test]
fn dataset_wiped_mid_stream() {
    let initial = vec![
        g(vec![0, 0], &[(0, 1)]),
        g(vec![0, 0, 0], &[(0, 1), (1, 2)]),
        g(vec![1, 1], &[(0, 1)]),
    ];
    let mut gc = GraphCachePlus::new(GcConfig::default(), initial);
    let q = g(vec![0, 0], &[(0, 1)]);
    check_exact(&mut gc, &q, QueryKind::Subgraph, "before wipe");

    for id in 0..3 {
        gc.apply(ChangeOp::Del(id)).unwrap();
    }
    let out = gc.execute(&q, QueryKind::Subgraph);
    assert!(out.answer.is_empty(), "all graphs deleted");
    assert_eq!(out.metrics.subiso_tests, 0);

    // repopulate; ids continue from 3
    let id = gc.apply(ChangeOp::Add(g(vec![0, 0], &[(0, 1)]))).unwrap();
    assert_eq!(id, 3);
    let out2 = gc.execute(&q, QueryKind::Subgraph);
    assert_eq!(out2.answer.iter_ones().collect::<Vec<_>>(), vec![3]);
}

#[test]
fn graph_stripped_to_no_edges() {
    let initial = vec![g(vec![0, 0, 0], &[(0, 1), (1, 2)])];
    let mut gc = GraphCachePlus::new(GcConfig::default(), initial);
    let edge_q = g(vec![0, 0], &[(0, 1)]);
    check_exact(&mut gc, &edge_q, QueryKind::Subgraph, "full graph");

    gc.apply(ChangeOp::Ur { id: 0, u: 0, v: 1 }).unwrap();
    gc.apply(ChangeOp::Ur { id: 0, u: 1, v: 2 }).unwrap();
    let out = gc.execute(&edge_q, QueryKind::Subgraph);
    assert!(out.answer.is_empty(), "edgeless graph contains no edge");
    // a single labeled vertex still matches
    let dot_q = g(vec![0], &[]);
    check_exact(
        &mut gc,
        &dot_q,
        QueryKind::Subgraph,
        "dot query on edgeless graph",
    );

    // rebuild the edges — positive answers must come back
    gc.apply(ChangeOp::Ua { id: 0, u: 0, v: 1 }).unwrap();
    check_exact(&mut gc, &edge_q, QueryKind::Subgraph, "edge restored");
}

#[test]
fn degenerate_capacities() {
    let initial = vec![
        g(vec![0, 0], &[(0, 1)]),
        g(vec![0, 0, 0], &[(0, 1), (1, 2)]),
    ];
    let q = g(vec![0, 0], &[(0, 1)]);
    for (cache, window) in [(0usize, 0usize), (0, 5), (1, 1), (1, 0), (100, 1)] {
        for model in [CacheModel::Evi, CacheModel::Con, CacheModel::ConRetro] {
            let mut gc = GraphCachePlus::new(
                GcConfig {
                    cache_capacity: cache,
                    window_capacity: window,
                    model,
                    ..GcConfig::default()
                },
                initial.clone(),
            );
            for i in 0..10 {
                if i == 5 {
                    gc.apply(ChangeOp::Ua { id: 1, u: 0, v: 2 }).unwrap();
                }
                check_exact(
                    &mut gc,
                    &q,
                    QueryKind::Subgraph,
                    &format!("cache={cache} window={window} model={model} step={i}"),
                );
            }
            let (c, w) = gc.occupancy();
            assert!(c <= cache && w <= window.max(1), "capacity respected");
        }
    }
}

#[test]
fn bulk_mutation_bypassing_apply_is_still_seen() {
    // with_dataset gives raw access; as long as the caller logs, the
    // validators and the postings index must pick the changes up lazily
    // (the index-backed candidate source is the default)
    let initial = vec![g(vec![0, 0], &[(0, 1)]), g(vec![1, 1], &[(0, 1)])];
    let mut gc = GraphCachePlus::new(GcConfig::default(), initial);
    let q = g(vec![2, 2], &[(0, 1)]);
    assert!(gc.execute(&q, QueryKind::Subgraph).answer.is_empty());

    // bulk-add a matching graph through the raw interface
    gc.with_dataset(|store, log| {
        let id =
            store.add_graph(LabeledGraph::from_parts(vec![2, 2, 2], &[(0, 1), (1, 2)]).unwrap());
        log.append(id, gc_dataset::OpType::Add);
    });
    let out = gc.execute(&q, QueryKind::Subgraph);
    assert_eq!(out.answer.iter_ones().collect::<Vec<_>>(), vec![2]);
}

#[test]
fn unlogged_mutation_is_a_documented_hazard() {
    // The contract of with_dataset says: log every mutation or the cache
    // will not see it. This test documents the failure mode: an unlogged
    // change can leave stale validity behind. (EVI/CON equally affected —
    // consistency machinery keys off the log, exactly like the paper's
    // Log Analyzer.)
    let initial = vec![g(vec![0, 0, 0], &[(0, 1), (1, 2)])];
    let mut gc = GraphCachePlus::new(GcConfig::default(), initial);
    let q = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
    let first = gc.execute(&q, QueryKind::Subgraph);
    assert_eq!(first.answer.count_ones(), 1);

    // silently remove an edge (no log record)
    gc.with_dataset(|store, _log| {
        store.remove_edge(0, 0, 1).unwrap();
    });
    let stale = gc.execute(&q, QueryKind::Subgraph);
    // the cached exact-match answer is now stale — and that is exactly the
    // behavior the change log exists to prevent
    assert_eq!(
        stale.answer.count_ones(),
        1,
        "unlogged change must go unnoticed (documents the contract)"
    );
    // logging a compensating record heals the cache on the next query
    gc.with_dataset(|_store, log| {
        log.append_edge(0, gc_dataset::OpType::Ur, 0, 1);
    });
    check_exact(&mut gc, &q, QueryKind::Subgraph, "after healing log record");
}

#[test]
fn rapid_alternation_of_queries_and_inverse_changes() {
    let initial = vec![
        g(vec![0, 0, 1], &[(0, 1), (1, 2)]),
        g(vec![0, 1], &[(0, 1)]),
    ];
    for model in [CacheModel::Con, CacheModel::ConRetro] {
        let mut gc = GraphCachePlus::new(
            GcConfig {
                model,
                ..GcConfig::default()
            },
            initial.clone(),
        );
        let q = g(vec![0, 0], &[(0, 1)]);
        for round in 0..20 {
            // flip the 0-0 edge of graph 0 every round
            if round % 2 == 0 {
                gc.apply(ChangeOp::Ur { id: 0, u: 0, v: 1 }).unwrap();
            } else {
                gc.apply(ChangeOp::Ua { id: 0, u: 0, v: 1 }).unwrap();
            }
            check_exact(
                &mut gc,
                &q,
                QueryKind::Subgraph,
                &format!("{model} round {round}"),
            );
        }
    }
}
