//! Property tests for the CON validity machinery.
//!
//! The key semantic invariant behind Algorithm 2 (and hence Theorems 3/6):
//! **whenever a `CGvalid` bit survives refreshing, the cached relation it
//! protects still holds against the live dataset.** We verify it directly:
//! build a cache entry with ground-truth answers, apply arbitrary change
//! sequences, refresh validity incrementally, and compare every surviving
//! bit against a recomputed ground truth.

use gc_core::entry::CachedQuery;
use gc_core::validator::refresh_entry;
use gc_dataset::{ChangeLog, GraphStore, LogAnalyzer, LogCursor, OpType};
use gc_graph::generate::random_connected_graph;
use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::{Algorithm, QueryKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ground_truth_answer(query: &LabeledGraph, kind: QueryKind, store: &GraphStore) -> BitSet {
    let m = Algorithm::Vf2.matcher();
    let mut answer = BitSet::new();
    for (id, g) in store.iter_live() {
        let contained = match kind {
            QueryKind::Subgraph => m.contains(query, g),
            QueryKind::Supergraph => m.contains(g, query),
        };
        if contained {
            answer.set(id, true);
        }
    }
    answer
}

/// Applies one random change, logging it. Returns false if nothing could
/// be applied.
fn apply_random_change(rng: &mut StdRng, store: &mut GraphStore, log: &mut ChangeLog) -> bool {
    let live: Vec<usize> = store.iter_live().map(|(i, _)| i).collect();
    match OpType::ALL[rng.random_range(0..4usize)] {
        OpType::Add => {
            let n = rng.random_range(2..8usize);
            let g = random_connected_graph(rng, n, 1, |r| r.random_range(0..3u16));
            let id = store.add_graph(g);
            log.append(id, OpType::Add);
            true
        }
        OpType::Del => match live.first() {
            Some(_) => {
                let id = live[rng.random_range(0..live.len())];
                store.delete(id).expect("live");
                log.append(id, OpType::Del);
                true
            }
            None => false,
        },
        OpType::Ua => {
            for _ in 0..8 {
                if live.is_empty() {
                    return false;
                }
                let id = live[rng.random_range(0..live.len())];
                let g = store.get(id).expect("live");
                let n = g.vertex_count() as u32;
                if n < 2 {
                    continue;
                }
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v && !g.has_edge(u, v) {
                    store.add_edge(id, u, v).expect("absent");
                    log.append_edge(id, OpType::Ua, u, v);
                    return true;
                }
            }
            false
        }
        OpType::Ur => {
            for _ in 0..8 {
                if live.is_empty() {
                    return false;
                }
                let id = live[rng.random_range(0..live.len())];
                let g = store.get(id).expect("live");
                let edges: Vec<_> = g.edges().collect();
                if edges.is_empty() {
                    continue;
                }
                let (u, v) = edges[rng.random_range(0..edges.len())];
                store.remove_edge(id, u, v).expect("present");
                log.append_edge(id, OpType::Ur, u, v);
                return true;
            }
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Surviving validity bits always tell the truth, for both entry
    /// polarities, across multi-round incremental refreshes.
    #[test]
    fn surviving_validity_bits_are_truthful(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kind = if seed % 2 == 0 { QueryKind::Subgraph } else { QueryKind::Supergraph };

        // dataset of 8 small graphs
        let graphs: Vec<LabeledGraph> = (0..8)
            .map(|_| {
                let n = rng.random_range(3..8usize);
                random_connected_graph(&mut rng, n, 1, |r| r.random_range(0..3u16))
            })
            .collect();
        let mut store = GraphStore::from_graphs(graphs);
        let mut log = ChangeLog::new();

        // the cached query: a small random pattern
        let qn = rng.random_range(2..5usize);
        let query = random_connected_graph(&mut rng, qn, 0, |r| r.random_range(0..3u16));
        let answer = ground_truth_answer(&query, kind, &store);
        let mut entry = CachedQuery::new(query.clone(), kind, answer, store.id_span(), 0);

        let mut cursor = LogCursor::default();
        // three rounds of changes + incremental refresh
        for _round in 0..3 {
            let changes = rng.random_range(1..5usize);
            for _ in 0..changes {
                apply_random_change(&mut rng, &mut store, &mut log);
            }
            let counters = LogAnalyzer::analyze(log.records_since(cursor));
            cursor = log.head();
            refresh_entry(&mut entry, &counters, store.id_span());

            // every surviving valid bit on a LIVE graph must match the
            // freshly recomputed truth
            let truth = ground_truth_answer(&query, kind, &store);
            for (id, _) in store.iter_live() {
                if entry.cg_valid.get(id) {
                    prop_assert_eq!(
                        entry.answer.get(id),
                        truth.get(id),
                        "stale bit survived: graph {} round {} kind {:?} (seed {})",
                        id, _round, kind, seed
                    );
                }
            }
        }
    }

    /// EVI-equivalent safety net: after refreshing, re-validating with an
    /// empty counter set changes nothing (idempotence of Algorithm 2 under
    /// an empty incremental log).
    #[test]
    fn refresh_with_empty_counters_is_identity(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graphs: Vec<LabeledGraph> = (0..5)
            .map(|_| random_connected_graph(&mut rng, 4, 1, |r| r.random_range(0..2u16)))
            .collect();
        let store = GraphStore::from_graphs(graphs);
        let query = random_connected_graph(&mut rng, 2, 0, |r| r.random_range(0..2u16));
        let answer = ground_truth_answer(&query, QueryKind::Subgraph, &store);
        let mut entry = CachedQuery::new(query, QueryKind::Subgraph, answer, store.id_span(), 0);
        let before = entry.cg_valid.clone();
        let counters = LogAnalyzer::analyze(&[]);
        refresh_entry(&mut entry, &counters, store.id_span());
        prop_assert_eq!(entry.cg_valid, before);
    }
}
