//! Experiment harness reproducing the GC+ paper's evaluation (§7).
//!
//! Every figure of the paper maps to a harness entry point:
//!
//! * **Figure 4** — query-time speedups of EVI/CON over {VF2, VF2+, GQL}
//!   across Type A (ZZ/ZU/UU) and Type B (0%/20%/50%) workloads →
//!   [`run_fig4`];
//! * **Figure 5** — speedups in number of sub-iso tests (Method-M
//!   independent) → [`run_fig5`];
//! * **Figure 6** — average query time and overhead per query for VF2 vs
//!   EVI vs CON, with the CON-specific validation share → [`run_fig6`];
//! * **§7.2 insights** — exact-match/zero-test/sub-super hit statistics
//!   for ZU vs UU → [`run_insights`].
//!
//! Scale is configurable: [`Scale::small`] for CI-speed smoke numbers,
//! [`Scale::medium`] (the default for EXPERIMENTS.md), and
//! [`Scale::paper`] (40,000 graphs × 10,000 queries × 2,000 change ops —
//! hours of compute, exactly the published setup). All randomness is
//! seeded; identical configurations replay identical experiments.

pub mod chaos;
pub mod netchaos;
pub mod report;
pub mod subiso_bench;

use gc_core::{baseline_execute, CacheModel, CandidateSource, GcConfig, GraphCachePlus};
use gc_dataset::aids::{synthetic_aids, AidsConfig};
use gc_dataset::{ChangePlan, ChangePlanConfig, PlanExecutor};
use gc_graph::LabeledGraph;
use gc_subiso::{Algorithm, MethodM};
use gc_workload::{generate_type_a, generate_type_b, TypeAConfig, TypeBConfig, Workload};

pub use chaos::{
    run_chaos, run_index_diff, run_repair_diff, ChaosCell, ChaosConfig, ChaosReport, IndexDiffCell,
    IndexDiffReport, RepairDiffCell, RepairDiffReport,
};
pub use netchaos::{run_net_chaos, NetChaosConfig, NetChaosReport, StormTally};
pub use report::Table;
pub use subiso_bench::{run_subiso_bench, SubisoBenchResult};

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Initial dataset size (paper: 40,000).
    pub dataset_graphs: usize,
    /// Queries per workload (paper: 10,000).
    pub num_queries: usize,
    /// Type B positive pool per query size (paper: 10,000).
    pub positive_pool: usize,
    /// Type B no-answer pool per query size (paper: 3,000).
    pub noanswer_pool: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Smoke scale — seconds end-to-end; shapes hold loosely.
    pub fn small() -> Scale {
        Scale {
            dataset_graphs: 150,
            num_queries: 150,
            positive_pool: 60,
            noanswer_pool: 20,
            seed: 0xAEDB,
        }
    }

    /// Default reporting scale — minutes end-to-end; shapes hold.
    pub fn medium() -> Scale {
        Scale {
            dataset_graphs: 1_000,
            num_queries: 800,
            positive_pool: 300,
            noanswer_pool: 100,
            seed: 0xAEDB,
        }
    }

    /// The published setup (hours of compute on a laptop).
    pub fn paper() -> Scale {
        Scale {
            dataset_graphs: 40_000,
            num_queries: 10_000,
            positive_pool: 10_000,
            noanswer_pool: 3_000,
            seed: 0xAEDB,
        }
    }

    /// Parses "small" / "medium" / "paper".
    pub fn parse(s: &str) -> Result<Scale, String> {
        match s {
            "small" => Ok(Scale::small()),
            "medium" => Ok(Scale::medium()),
            "paper" => Ok(Scale::paper()),
            other => Err(format!("unknown scale '{other}' (small|medium|paper)")),
        }
    }
}

/// Builds the synthetic AIDS dataset for a scale.
pub fn build_dataset(scale: &Scale) -> Vec<LabeledGraph> {
    synthetic_aids(&AidsConfig::scaled(scale.dataset_graphs, scale.seed))
}

/// The six paper workloads, in figure order: ZZ, ZU, UU, 0%, 20%, 50%.
pub fn build_all_workloads(dataset: &[LabeledGraph], scale: &Scale) -> Vec<Workload> {
    let mut out = build_type_a_workloads(dataset, scale);
    out.extend(build_type_b_workloads(dataset, scale));
    out
}

/// Type A workloads: ZZ, ZU, UU.
pub fn build_type_a_workloads(dataset: &[LabeledGraph], scale: &Scale) -> Vec<Workload> {
    let n = scale.num_queries;
    vec![
        generate_type_a(dataset, &TypeAConfig::zz(n, scale.seed + 1)),
        generate_type_a(dataset, &TypeAConfig::zu(n, scale.seed + 2)),
        generate_type_a(dataset, &TypeAConfig::uu(n, scale.seed + 3)),
    ]
}

/// Type B workloads: 0%, 20%, 50%.
pub fn build_type_b_workloads(dataset: &[LabeledGraph], scale: &Scale) -> Vec<Workload> {
    [0.0, 0.2, 0.5]
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            generate_type_b(
                dataset,
                &TypeBConfig::scaled(
                    scale.num_queries,
                    scale.positive_pool,
                    scale.noanswer_pool,
                    p,
                    scale.seed + 10 + i as u64,
                ),
            )
        })
        .collect()
}

/// The change plan used by every cell of a given scale (identical across
/// cells so comparisons are apples-to-apples).
pub fn build_plan(scale: &Scale) -> ChangePlan {
    if scale.num_queries >= 10_000 {
        ChangePlan::generate(&ChangePlanConfig::paper_aids())
    } else {
        ChangePlan::generate(&ChangePlanConfig::scaled(
            scale.num_queries,
            scale.seed + 99,
        ))
    }
}

/// Measured aggregates of one (workload × configuration) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Average query time, milliseconds.
    pub avg_query_ms: f64,
    /// Average cache-maintenance overhead per query, milliseconds.
    pub avg_overhead_ms: f64,
    /// CON-specific validation share of overhead (0 for EVI/baseline).
    pub validation_share: f64,
    /// Average sub-iso tests per query.
    pub avg_tests: f64,
    /// Full aggregate metrics (insight counters etc.).
    pub aggregate: gc_core::AggregateMetrics,
}

/// Runs one cell: the `workload` against the dataset under churn, either
/// through GC+ (`model = Some(..)`) or cache-less Method M (`None`).
///
/// Per the paper, one window's worth of queries (20) warms the system
/// before measurement starts.
pub fn run_cell(
    dataset: &[LabeledGraph],
    workload: &Workload,
    plan: &ChangePlan,
    algorithm: Algorithm,
    model: Option<CacheModel>,
) -> CellResult {
    let warmup = 20.min(workload.len() / 10);
    match model {
        Some(model) => {
            let config = GcConfig {
                model,
                method: MethodM::new(algorithm),
                ..GcConfig::default()
            };
            let mut gc = GraphCachePlus::new(config, dataset.to_vec());
            let mut exec = PlanExecutor::new(plan.clone(), dataset.to_vec(), 7);
            for (i, q) in workload.queries.iter().enumerate() {
                gc.with_dataset(|store, log| exec.apply_due(i, store, log));
                gc.execute(q, workload.kind);
                if i + 1 == warmup {
                    gc.reset_metrics();
                }
            }
            let agg = gc.aggregate_metrics().clone();
            CellResult {
                avg_query_ms: agg.avg_query_time_ms(),
                avg_overhead_ms: agg.avg_overhead_ms(),
                validation_share: agg.validation_share_of_overhead(),
                avg_tests: agg.avg_tests(),
                aggregate: agg,
            }
        }
        None => {
            let mut store = gc_dataset::GraphStore::from_graphs(dataset.to_vec());
            let mut log = gc_dataset::ChangeLog::new();
            let mut exec = PlanExecutor::new(plan.clone(), dataset.to_vec(), 7);
            let method = MethodM::new(algorithm);
            let mut agg = gc_core::AggregateMetrics::default();
            for (i, q) in workload.queries.iter().enumerate() {
                exec.apply_due(i, &mut store, &mut log);
                let out = baseline_execute(&store, &method, q, workload.kind);
                if i >= warmup {
                    agg.record(&out.metrics);
                }
            }
            CellResult {
                avg_query_ms: agg.avg_query_time_ms(),
                avg_overhead_ms: 0.0,
                validation_share: 0.0,
                avg_tests: agg.avg_tests(),
                aggregate: agg,
            }
        }
    }
}

/// One row of Figure 4: query-time speedups of EVI and CON over a base
/// method for one workload.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Method M name (VF2 / VF2+ / GQL).
    pub method: &'static str,
    /// Workload name (ZZ / ZU / UU / 0% / 20% / 50%).
    pub workload: String,
    /// Baseline average query time (ms).
    pub base_ms: f64,
    /// EVI speedup (×).
    pub evi_speedup: f64,
    /// CON speedup (×).
    pub con_speedup: f64,
}

/// Figure 4: runs every (method × workload) cell for the given workloads.
pub fn run_fig4(
    dataset: &[LabeledGraph],
    workloads: &[Workload],
    plan: &ChangePlan,
    methods: &[Algorithm],
) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for &method in methods {
        for w in workloads {
            let base = run_cell(dataset, w, plan, method, None);
            let evi = run_cell(dataset, w, plan, method, Some(CacheModel::Evi));
            let con = run_cell(dataset, w, plan, method, Some(CacheModel::Con));
            rows.push(Fig4Row {
                method: method.name(),
                workload: w.name.clone(),
                base_ms: base.avg_query_ms,
                evi_speedup: gc_core::metrics::speedup(base.avg_query_ms, evi.avg_query_ms),
                con_speedup: gc_core::metrics::speedup(base.avg_query_ms, con.avg_query_ms),
            });
        }
    }
    rows
}

/// One row of Figure 5: sub-iso-test-count speedups for one workload
/// (Method-M independent — computed with one canonical method).
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Workload name.
    pub workload: String,
    /// Baseline average tests per query.
    pub base_tests: f64,
    /// EVI speedup in tests (×).
    pub evi_speedup: f64,
    /// CON speedup in tests (×).
    pub con_speedup: f64,
}

/// Figure 5: test-count speedups per workload.
pub fn run_fig5(
    dataset: &[LabeledGraph],
    workloads: &[Workload],
    plan: &ChangePlan,
) -> Vec<Fig5Row> {
    // test counts are Method-M independent; VF2+ is the cheapest runner
    let method = Algorithm::Vf2Plus;
    workloads
        .iter()
        .map(|w| {
            let base = run_cell(dataset, w, plan, method, None);
            let evi = run_cell(dataset, w, plan, method, Some(CacheModel::Evi));
            let con = run_cell(dataset, w, plan, method, Some(CacheModel::Con));
            Fig5Row {
                workload: w.name.clone(),
                base_tests: base.avg_tests,
                evi_speedup: gc_core::metrics::speedup(base.avg_tests, evi.avg_tests),
                con_speedup: gc_core::metrics::speedup(base.avg_tests, con.avg_tests),
            }
        })
        .collect()
}

/// One row of Figure 6: per-query time breakdown for one workload under
/// the VF2 base method.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Workload name.
    pub workload: String,
    /// Baseline VF2 average query time (ms).
    pub vf2_ms: f64,
    /// EVI average query time (ms).
    pub evi_ms: f64,
    /// EVI average overhead (ms).
    pub evi_overhead_ms: f64,
    /// CON average query time (ms).
    pub con_ms: f64,
    /// CON average overhead (ms).
    pub con_overhead_ms: f64,
    /// CON-specific (Algorithms 1+2) share of CON overhead.
    pub con_validation_share: f64,
}

/// Figure 6: time/overhead breakdown per workload (VF2 as Method M, as in
/// the paper's figure).
pub fn run_fig6(
    dataset: &[LabeledGraph],
    workloads: &[Workload],
    plan: &ChangePlan,
) -> Vec<Fig6Row> {
    workloads
        .iter()
        .map(|w| {
            let base = run_cell(dataset, w, plan, Algorithm::Vf2, None);
            let evi = run_cell(dataset, w, plan, Algorithm::Vf2, Some(CacheModel::Evi));
            let con = run_cell(dataset, w, plan, Algorithm::Vf2, Some(CacheModel::Con));
            Fig6Row {
                workload: w.name.clone(),
                vf2_ms: base.avg_query_ms,
                evi_ms: evi.avg_query_ms,
                evi_overhead_ms: evi.avg_overhead_ms,
                con_ms: con.avg_query_ms,
                con_overhead_ms: con.avg_overhead_ms,
                con_validation_share: con.validation_share,
            }
        })
        .collect()
}

/// §7.2 insight counters for one workload under CON.
#[derive(Debug, Clone)]
pub struct InsightRow {
    /// Workload name.
    pub workload: String,
    /// Queries with an isomorphic cached twin.
    pub exact_match_queries: u64,
    /// Optimal-case-1 firings (exact match → zero tests).
    pub exact_shortcuts: u64,
    /// Optimal-case-2 firings (provably empty answer).
    pub empty_shortcuts: u64,
    /// Zero-sub-iso-test queries.
    pub zero_test_queries: u64,
    /// Direct (sub-style) hits used.
    pub direct_hits: u64,
    /// Exclusion (super-style) hits used.
    pub exclusion_hits: u64,
}

/// §7.2 insights: hit-type statistics under CON (paper compares ZU vs UU).
pub fn run_insights(
    dataset: &[LabeledGraph],
    workloads: &[Workload],
    plan: &ChangePlan,
) -> Vec<InsightRow> {
    workloads
        .iter()
        .map(|w| {
            let con = run_cell(dataset, w, plan, Algorithm::Vf2Plus, Some(CacheModel::Con));
            let a = &con.aggregate;
            InsightRow {
                workload: w.name.clone(),
                exact_match_queries: a.exact_match_queries,
                exact_shortcuts: a.exact_shortcuts,
                empty_shortcuts: a.empty_shortcuts,
                zero_test_queries: a.zero_test_queries,
                direct_hits: a.direct_hits,
                exclusion_hits: a.exclusion_hits,
            }
        })
        .collect()
}

/// One row of the model ablation: EVI vs CON vs CON-R (the §8
/// retrospective extension) under either the paper's change plan or an
/// *oscillating* churn pattern (edge flipped and restored — the scenario
/// CON-R targets).
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Cache model name.
    pub model: &'static str,
    /// Average sub-iso tests per query.
    pub avg_tests: f64,
    /// Average query time (ms).
    pub avg_query_ms: f64,
}

/// Runs the model ablation on one workload. With `oscillating = true`,
/// every 5th query is preceded by a UR+UA pair on the same edge (net
/// neutral); otherwise the provided change plan drives churn.
pub fn run_model_ablation(
    dataset: &[LabeledGraph],
    workload: &Workload,
    plan: &ChangePlan,
    oscillating: bool,
) -> Vec<AblationRow> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    [CacheModel::Evi, CacheModel::Con, CacheModel::ConRetro]
        .into_iter()
        .map(|model| {
            let config = GcConfig {
                model,
                method: MethodM::new(Algorithm::Vf2Plus),
                ..GcConfig::default()
            };
            let mut gc = GraphCachePlus::new(config, dataset.to_vec());
            let mut exec = PlanExecutor::new(plan.clone(), dataset.to_vec(), 7);
            let mut rng = StdRng::seed_from_u64(0xC0);
            for (i, q) in workload.queries.iter().enumerate() {
                if oscillating {
                    // every 5th query: a *batch* of net-neutral edge flips
                    // (UR+UA of the same edge on ~2.5% of the dataset) —
                    // Algorithm 2 sees mixed ops and invalidates them all;
                    // the retrospective analyzer proves them unchanged
                    if i % 5 == 4 {
                        let live: Vec<usize> = gc.store().iter_live().map(|(id, _)| id).collect();
                        for _ in 0..live.len() / 40 {
                            let id = live[rng.random_range(0..live.len())];
                            let g = match gc.store().get(id) {
                                Some(g) => g.clone(),
                                None => continue,
                            };
                            let first_edge = g.edges().next();
                            if let Some((u, v)) = first_edge {
                                gc.apply(gc_dataset::ChangeOp::Ur { id, u, v })
                                    .expect("edge");
                                gc.apply(gc_dataset::ChangeOp::Ua { id, u, v })
                                    .expect("slot");
                            }
                        }
                    }
                } else {
                    gc.with_dataset(|store, log| exec.apply_due(i, store, log));
                }
                gc.execute(q, workload.kind);
            }
            let agg = gc.aggregate_metrics();
            AblationRow {
                model: model.name(),
                avg_tests: agg.avg_tests(),
                avg_query_ms: agg.avg_query_time_ms(),
            }
        })
        .collect()
}

/// One row of the FTV ablation: candidate-set source comparison.
#[derive(Debug, Clone)]
pub struct FtvRow {
    /// Configuration name.
    pub config: &'static str,
    /// Average sub-iso tests per query.
    pub avg_tests: f64,
    /// Average query time (ms).
    pub avg_query_ms: f64,
}

/// Compares the candidate-set sources: full-scan Method M, the updatable
/// FTV label/size filter alone, and GC+ (CON) stacked on each.
pub fn run_ftv_ablation(
    dataset: &[LabeledGraph],
    workload: &Workload,
    plan: &ChangePlan,
) -> Vec<FtvRow> {
    let method = MethodM::new(Algorithm::Vf2Plus);
    let mut rows = Vec::new();

    // cache-less full scan
    let base = run_cell(dataset, workload, plan, Algorithm::Vf2Plus, None);
    rows.push(FtvRow {
        config: "Method M (full scan)",
        avg_tests: base.avg_tests,
        avg_query_ms: base.avg_query_ms,
    });

    // cache-less postings index: built once, maintained incrementally
    // across the whole churning run (never rebuilt per query or per run)
    {
        let mut store = gc_dataset::GraphStore::from_graphs(dataset.to_vec());
        let mut log = gc_dataset::ChangeLog::new();
        let mut index = gc_dataset::LabelIndex::build(&store, &log);
        let mut exec = PlanExecutor::new(plan.clone(), dataset.to_vec(), 7);
        let mut agg = gc_core::AggregateMetrics::default();
        for (i, q) in workload.queries.iter().enumerate() {
            exec.apply_due(i, &mut store, &mut log);
            let out = gc_core::runtime::ftv_baseline_execute(
                &store,
                &log,
                &mut index,
                &method,
                q,
                workload.kind,
            );
            agg.record(&out.metrics);
        }
        assert!(
            log.is_empty() || index.records_replayed() == log.len() as u64,
            "the shared index must absorb churn incrementally, not by rebuild"
        );
        rows.push(FtvRow {
            config: "FTV filter (no cache)",
            avg_tests: agg.avg_tests(),
            avg_query_ms: agg.avg_query_time_ms(),
        });
    }

    // GC+ over each candidate source
    for (name, source) in [
        ("GC+/CON (full scan)", CandidateSource::LiveScan),
        ("GC+/CON (FTV filter)", CandidateSource::LabelIndex),
    ] {
        let config = GcConfig {
            method,
            candidate_source: source,
            ..GcConfig::default()
        };
        let mut gc = GraphCachePlus::new(config, dataset.to_vec());
        let mut exec = PlanExecutor::new(plan.clone(), dataset.to_vec(), 7);
        for (i, q) in workload.queries.iter().enumerate() {
            gc.with_dataset(|store, log| exec.apply_due(i, store, log));
            gc.execute(q, workload.kind);
        }
        if source == CandidateSource::LabelIndex {
            let idx = gc.label_index().expect("index-backed config");
            assert!(
                gc.log_len() == 0 || idx.records_replayed() > 0,
                "GC+'s index must be maintained by log replay under churn"
            );
        }
        let agg = gc.aggregate_metrics();
        rows.push(FtvRow {
            config: name,
            avg_tests: agg.avg_tests(),
            avg_query_ms: agg.avg_query_time_ms(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            dataset_graphs: 40,
            num_queries: 60,
            positive_pool: 15,
            noanswer_pool: 5,
            seed: 3,
        }
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("small").unwrap().dataset_graphs, 150);
        assert_eq!(Scale::parse("paper").unwrap().num_queries, 10_000);
        assert!(Scale::parse("big").is_err());
    }

    #[test]
    fn cells_are_consistent_across_models() {
        let scale = tiny_scale();
        let dataset = build_dataset(&scale);
        let plan = build_plan(&scale);
        let w = &build_type_a_workloads(&dataset, &scale)[0];
        let base = run_cell(&dataset, w, &plan, Algorithm::Vf2Plus, None);
        let con = run_cell(
            &dataset,
            w,
            &plan,
            Algorithm::Vf2Plus,
            Some(CacheModel::Con),
        );
        // CON must run no more tests than the baseline on average
        assert!(con.avg_tests <= base.avg_tests + 1e-9);
        assert!(base.avg_tests > 0.0);
        assert_eq!(base.validation_share, 0.0);
    }

    #[test]
    fn fig5_speedups_at_least_one() {
        let scale = tiny_scale();
        let dataset = build_dataset(&scale);
        let plan = build_plan(&scale);
        let workloads = build_type_a_workloads(&dataset, &scale);
        let rows = run_fig5(&dataset, &workloads[..1], &plan);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].con_speedup >= rows[0].evi_speedup * 0.5);
        assert!(
            rows[0].con_speedup >= 1.0,
            "CON saves tests: {}",
            rows[0].con_speedup
        );
    }

    #[test]
    fn ablation_orders_models_correctly() {
        let scale = tiny_scale();
        let dataset = build_dataset(&scale);
        let plan = build_plan(&scale);
        let w = &build_type_a_workloads(&dataset, &scale)[0];
        // oscillating churn: CON-R must save at least as many tests as CON
        let rows = run_model_ablation(&dataset, w, &plan, true);
        assert_eq!(rows.len(), 3);
        let tests: Vec<f64> = rows.iter().map(|r| r.avg_tests).collect();
        assert!(
            tests[2] <= tests[1] + 1e-9,
            "CON-R ({}) vs CON ({})",
            tests[2],
            tests[1]
        );
        assert!(
            tests[1] <= tests[0] + 1e-9,
            "CON ({}) vs EVI ({})",
            tests[1],
            tests[0]
        );
    }

    #[test]
    fn ftv_ablation_filter_reduces_tests() {
        let scale = tiny_scale();
        let dataset = build_dataset(&scale);
        let plan = build_plan(&scale);
        let w = &build_type_a_workloads(&dataset, &scale)[0];
        let rows = run_ftv_ablation(&dataset, w, &plan);
        assert_eq!(rows.len(), 4);
        // filter alone runs fewer tests than full scan; GC+ over the
        // filter runs fewest
        assert!(rows[1].avg_tests <= rows[0].avg_tests);
        assert!(rows[3].avg_tests <= rows[1].avg_tests + 1e-9);
        assert!(rows[3].avg_tests <= rows[2].avg_tests + 1e-9);
    }

    #[test]
    fn prefilter_skips_surface_on_the_aids_workload() {
        // acceptance gate: Method M must report prefilter_skips > 0 when a
        // paper workload runs over the synthetic AIDS dataset
        let scale = tiny_scale();
        let dataset = build_dataset(&scale);
        let plan = build_plan(&scale);
        let w = &build_type_a_workloads(&dataset, &scale)[0];
        let base = run_cell(&dataset, w, &plan, Algorithm::Vf2, None);
        assert!(
            base.aggregate.total_prefilter_skips > 0,
            "signature pre-filter never fired on {} queries",
            base.aggregate.queries
        );
        // the pre-filter decides candidates, it does not change answers —
        // cross-check one GC+ cell for consistency with the baseline count
        let con = run_cell(&dataset, w, &plan, Algorithm::Vf2, Some(CacheModel::Con));
        assert!(con.avg_tests <= base.avg_tests + 1e-9);
    }

    #[test]
    fn workload_names_in_figure_order() {
        let scale = tiny_scale();
        let dataset = build_dataset(&scale);
        let names: Vec<String> = build_all_workloads(&dataset, &scale)
            .into_iter()
            .map(|w| w.name)
            .collect();
        assert_eq!(names, vec!["ZZ", "ZU", "UU", "0%", "20%", "50%"]);
    }
}
