//! The networked chaos harness — the `gc_server` stack, empirically
//! fault-tolerant end to end.
//!
//! Where [`crate::chaos`] exercises the in-process isolation boundaries,
//! [`run_net_chaos`] drives the *real* loopback TCP server with a Zipf
//! load-driver of concurrent clients while injected network faults
//! (dropped connections, delayed frames, a stalled shard) and shard-level
//! process faults (a double panic crossing the failover threshold, silent
//! cache corruption) fire under it. A fault-free in-process oracle holds
//! ground truth. The run is three phases:
//!
//! 1. **storm 1** — concurrent clients replay a Zipf-skewed query pool
//!    under a per-request deadline; the double panic flips one shard to
//!    failed-over, so later replies are served partly via router baseline;
//! 2. **updates** — a serial driver client removes and re-adds edges,
//!    mirroring every confirmed op into the oracle, then runs a full-rate
//!    audit (which repairs corruption, drains quarantine and rejoins the
//!    failed-over shard) and a second audit that must find nothing left;
//! 3. **storm 2** — the same pool against the mutated dataset: every
//!    reply must now come from healthy cache shards (`baseline_shards ==
//!    0`) and match the recomputed truth.
//!
//! The invariants checked are the networked version of the chaos suite's:
//! zero silent divergence (untagged mismatch, or a degraded answer that is
//! not a sound subset of truth), zero hung requests (every call resolves
//! within 2× its deadline, retries and backoff included), failover
//! observed and then fully cleared by audit, and every injected panic
//! contained.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use gc_core::{
    AuditReport, Fault, FaultInjector, FaultPlan, GcConfig, GraphCachePlus, HealthSnapshot,
    QueryBudget, ShardedGraphCache,
};
use gc_dataset::ChangeOp;
use gc_graph::{LabeledGraph, Zipf};
use gc_server::{serve, CacheClient, CacheService, ClientError, RetryPolicy, ServiceStats};
use gc_subiso::QueryKind;
use gc_telemetry::{Histogram, HistogramSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chaos::{latency_json, spans_json, with_quiet_panics};
use crate::{build_dataset, build_type_a_workloads, Scale};

/// Queries each client of a ramp level issues (kept small: the sweep adds
/// three levels on top of the two storms).
const RAMP_QUERIES_PER_CLIENT: usize = 6;

/// Knobs of one networked chaos run.
#[derive(Debug, Clone)]
pub struct NetChaosConfig {
    /// Dataset/pool scale (the query pool is drawn from the ZZ workload).
    pub scale: Scale,
    /// The combined fault plan: network faults (`drop-conn`, `delay-conn`,
    /// `stall-shard`) drive the server's framing layer; process faults
    /// (`corrupt`, `panic-*`, `delay-query`) are installed on shard 0.
    /// The failover shard's double panic is always injected on top.
    pub fault_plan: FaultPlan,
    /// Per-request deadline each client sends over the wire.
    pub deadline: Duration,
    /// Concurrent storm clients.
    pub clients: usize,
    /// Queries each storm client issues per phase.
    pub queries_per_client: usize,
    /// Query-pool size (head of the ZZ workload).
    pub pool_size: usize,
    /// Zipf skew of the pool replay (paper default 1.4).
    pub zipf_alpha: f64,
    /// Cache shards behind the service; the last one gets the double
    /// panic, so at least 2 are required.
    pub shards: usize,
    /// Per-shard in-flight admission bound.
    pub max_inflight: usize,
    /// Edge removals/re-adds in the update phase.
    pub updates: usize,
}

impl NetChaosConfig {
    /// Default networked chaos setup for a scale.
    pub fn new(scale: Scale) -> NetChaosConfig {
        NetChaosConfig {
            scale,
            fault_plan: default_net_fault_plan(),
            deadline: Duration::from_millis(250),
            clients: 6,
            queries_per_client: 12,
            pool_size: 64,
            zipf_alpha: 1.4,
            shards: 3,
            max_inflight: 64,
            updates: 24,
        }
    }
}

/// The built-in networked plan: two dropped connections and one delayed
/// frame exercise the retry discipline, one stalled shard exercises
/// deadline-bounded degradation, and one silent corruption exercises the
/// audit-repair path — all at ordinals that fire during the first storm
/// (or, for `corrupt`, the update phase).
pub fn default_net_fault_plan() -> FaultPlan {
    "drop-conn@2;delay-conn@5:40;drop-conn@11;stall-shard@8;corrupt@2:1"
        .parse()
        .expect("built-in net fault plan parses")
}

/// Folded per-phase tallies of one query storm.
#[derive(Debug, Clone, Default)]
pub struct StormTally {
    /// Requests issued (successes and terminal errors).
    pub requests: usize,
    /// Replies equal to the oracle answer, untagged.
    pub exact: usize,
    /// Replies explicitly tagged degraded whose answer was a sound subset
    /// of the oracle's.
    pub degraded: usize,
    /// Silently wrong replies — untagged mismatches, or degraded answers
    /// that invented a positive. Must be zero.
    pub divergent: usize,
    /// Calls that ended in an explicit client error (overload/transport
    /// after retries). Allowed, but counted.
    pub errors: usize,
    /// Replies with at least one shard served via router baseline.
    pub baseline_hits: usize,
    /// Client-side retries across all storm clients.
    pub retries: u64,
    /// Worst observed `elapsed / deadline` over the phase (elapsed
    /// includes retries and backoff).
    pub max_overrun: f64,
    /// Replies that took longer than 2× the deadline. Must be zero.
    pub hung: usize,
    /// Client-observed reply latency (microseconds, retries and backoff
    /// included), merged across all storm clients.
    pub latency: HistogramSnapshot,
}

impl StormTally {
    /// Replies actually answered — the tally's contribution to the request
    /// ledger a stats scrape reconciles against.
    pub fn answered(&self) -> usize {
        self.requests - self.errors
    }

    fn absorb(&mut self, other: &StormTally) {
        self.requests += other.requests;
        self.exact += other.exact;
        self.degraded += other.degraded;
        self.divergent += other.divergent;
        self.errors += other.errors;
        self.baseline_hits += other.baseline_hits;
        self.retries += other.retries;
        self.max_overrun = self.max_overrun.max(other.max_overrun);
        self.hung += other.hung;
        self.latency.merge(&other.latency);
    }
}

/// One offered-load level of the post-audit ramp sweep (shed-rate vs
/// offered load; clients run with retries off so shedding surfaces as
/// explicit `Overloaded` instead of hiding inside backoff loops).
#[derive(Debug, Clone, Default)]
pub struct RampLevel {
    /// Concurrent clients at this level.
    pub clients: usize,
    /// Requests offered.
    pub offered: usize,
    /// Replies answered (these join the request ledger).
    pub completed: usize,
    /// Requests shed with an explicit `Overloaded`.
    pub shed: usize,
    /// Other terminal errors (transport etc.) — not executed.
    pub errors: usize,
    /// Answered replies that silently diverged from truth. Must be zero.
    pub divergent: usize,
}

impl RampLevel {
    /// Fraction of offered requests the server shed at this level.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Aggregated result of one [`run_net_chaos`] invocation.
#[derive(Debug, Clone)]
pub struct NetChaosReport {
    /// The injected plan, compact form.
    pub fault_plan: String,
    /// Per-request deadline, milliseconds.
    pub deadline_ms: u64,
    /// Shards behind the service.
    pub shards: usize,
    /// Concurrent storm clients.
    pub clients: usize,
    /// Storm 1 (under network faults + failover).
    pub storm1: StormTally,
    /// Storm 2 (after audit; must be clean and baseline-free).
    pub storm2: StormTally,
    /// Updates confirmed applied (mirrored into the oracle).
    pub updates_applied: usize,
    /// Update calls re-issued after a provably-unexecuted transport drop.
    pub update_reissues: u64,
    /// Updates that never went through. Must be zero.
    pub update_failures: usize,
    /// First full-rate audit (repairs corruption, rejoins the shard).
    pub audit: AuditReport,
    /// Second audit — must find nothing left to repair or evict.
    pub audit_after: AuditReport,
    /// Shards still failed over at the end. Must be empty.
    pub unhealthy_final: Vec<usize>,
    /// Folded service + cache health counters at the end.
    pub health: HealthSnapshot,
    /// The post-audit ramp sweep: shed rate vs offered load.
    pub ramp: Vec<RampLevel>,
    /// The live `stats` scrape taken over the wire before shutdown.
    pub stats: ServiceStats,
    /// Queries the ledger says were executed: answered storm replies plus
    /// completed ramp replies. Shed and transport-failed calls are
    /// provably unexecuted and excluded.
    pub executed_queries: u64,
}

impl NetChaosReport {
    /// `true` when the plan contains a fault that makes clients retry.
    fn expects_retries(&self) -> bool {
        self.fault_plan.contains("drop-conn")
    }

    /// Does the stats scrape reconcile exactly with the request ledger?
    /// Every executed query classifies once per shard (hit or miss), the
    /// service query counter matches, and so does the update counter.
    pub fn reconciled(&self) -> bool {
        self.stats.queries == self.executed_queries
            && self.stats.updates == self.updates_applied as u64
            && self
                .stats
                .shards
                .iter()
                .all(|s| s.hits + s.misses == self.executed_queries)
    }

    /// Did the run satisfy every networked chaos invariant?
    pub fn passed(&self) -> bool {
        self.storm1.divergent == 0
            && self.storm2.divergent == 0
            && self.storm1.hung == 0
            && self.storm2.hung == 0
            && self.storm1.exact > 0
            && self.storm2.exact > 0
            && self.storm1.baseline_hits > 0
            && self.storm2.baseline_hits == 0
            && self.update_failures == 0
            && self.audit_after.repaired == 0
            && self.audit_after.evicted == 0
            && self.unhealthy_final.is_empty()
            && self.health.panics_recovered >= 2
            && self.ramp.iter().all(|l| l.divergent == 0)
            && self.reconciled()
            && (!self.expects_retries()
                || self.storm1.retries + self.storm2.retries + self.update_reissues > 0)
    }

    /// Hand-rolled JSON (the artifact uploaded by CI's service smoke job).
    pub fn to_json(&self) -> String {
        fn storm(t: &StormTally) -> String {
            format!(
                "{{\"requests\": {}, \"exact\": {}, \"degraded\": {}, \
                 \"divergent\": {}, \"errors\": {}, \"baseline_hits\": {}, \
                 \"retries\": {}, \"max_overrun\": {:.4}, \"hung\": {}, \
                 \"latency_us\": {}}}",
                t.requests,
                t.exact,
                t.degraded,
                t.divergent,
                t.errors,
                t.baseline_hits,
                t.retries,
                t.max_overrun,
                t.hung,
                latency_json(&t.latency),
            )
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"mode\": \"net\",\n");
        out.push_str(&format!("  \"fault_plan\": \"{}\",\n", self.fault_plan));
        out.push_str(&format!("  \"deadline_ms\": {},\n", self.deadline_ms));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str(&format!("  \"storm1\": {},\n", storm(&self.storm1)));
        out.push_str(&format!("  \"storm2\": {},\n", storm(&self.storm2)));
        out.push_str(&format!(
            "  \"updates\": {{\"applied\": {}, \"reissues\": {}, \"failures\": {}}},\n",
            self.updates_applied, self.update_reissues, self.update_failures,
        ));
        out.push_str(&format!(
            "  \"audit\": {{\"sampled\": {}, \"repaired\": {}, \"evicted\": {}, \
             \"second_pass_repaired\": {}, \"second_pass_evicted\": {}}},\n",
            self.audit.sampled,
            self.audit.repaired,
            self.audit.evicted,
            self.audit_after.repaired,
            self.audit_after.evicted,
        ));
        out.push_str(&format!(
            "  \"health\": {{\"panics_recovered\": {}, \"degraded_queries\": {}, \
             \"load_shed\": {}, \"shard_failovers\": {}, \"baseline_served\": {}}},\n",
            self.health.panics_recovered,
            self.health.degraded_queries,
            self.health.load_shed,
            self.health.shard_failovers,
            self.health.baseline_served,
        ));
        out.push_str(&format!(
            "  \"unhealthy_final\": {:?},\n",
            self.unhealthy_final
        ));
        out.push_str("  \"ramp\": [");
        for (i, l) in self.ramp.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"clients\": {}, \"offered\": {}, \"completed\": {}, \
                 \"shed\": {}, \"errors\": {}, \"divergent\": {}, \
                 \"shed_rate\": {:.4}}}",
                if i == 0 { "" } else { ", " },
                l.clients,
                l.offered,
                l.completed,
                l.shed,
                l.errors,
                l.divergent,
                l.shed_rate(),
            ));
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"executed_queries\": {},\n  \"reconciled\": {},\n",
            self.executed_queries,
            self.reconciled(),
        ));
        out.push_str(&format!("  \"stats\": {}\n", stats_json(&self.stats)));
        out.push_str("}\n");
        out
    }

    /// The standalone metrics artifact (`METRICS_report.json`): the stats
    /// scrape, its reconciliation verdict, and the rendered Prometheus
    /// exposition text.
    pub fn metrics_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"reconciled\": {},\n  \"executed_queries\": {},\n  \"updates_applied\": {},\n",
            self.reconciled(),
            self.executed_queries,
            self.updates_applied,
        ));
        out.push_str(&format!("  \"stats\": {},\n", stats_json(&self.stats)));
        out.push_str(&format!(
            "  \"storm1_latency_us\": {},\n  \"storm2_latency_us\": {},\n",
            latency_json(&self.storm1.latency),
            latency_json(&self.storm2.latency),
        ));
        out.push_str(&format!(
            "  \"exposition\": \"{}\"\n",
            json_escape(&self.stats.render_prometheus()),
        ));
        out.push_str("}\n");
        out
    }
}

/// A [`ServiceStats`] snapshot as one JSON object.
fn stats_json(s: &ServiceStats) -> String {
    let shards: Vec<String> = s
        .shards
        .iter()
        .map(|sh| {
            format!(
                "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
                 \"quarantined\": {}, \"shed\": {}}}",
                sh.hits, sh.misses, sh.evictions, sh.quarantined, sh.shed,
            )
        })
        .collect();
    format!(
        "{{\"queries\": {}, \"updates\": {}, \"shards\": [{}], \
         \"latency_us\": {}, \"stage_nanos\": {}}}",
        s.queries,
        s.updates,
        shards.join(", "),
        latency_json(&s.latency),
        spans_json(&s.stages),
    )
}

/// Minimal JSON string escaping for embedding exposition text.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Runs the full networked chaos suite (see the module docs for the
/// three-phase structure). Panics on harness-level failures (cannot bind,
/// protocol bugs); *system*-level failures land in the report's verdict.
pub fn run_net_chaos(cfg: &NetChaosConfig) -> NetChaosReport {
    assert!(
        cfg.shards >= 2,
        "net chaos needs a dedicated failover shard"
    );
    let dataset = build_dataset(&cfg.scale);
    let zz = build_type_a_workloads(&dataset, &cfg.scale).swap_remove(0);
    let kind = zz.kind;
    let pool: Vec<LabeledGraph> = zz.queries.into_iter().take(cfg.pool_size).collect();

    // Split the plan: network faults drive the server's framing layer,
    // process faults land on shard 0 (which stays healthy and accumulates
    // cache entries, so corruption has something to land on). The last
    // shard always gets the double panic that crosses the failover
    // threshold — the scenario the router exists for.
    let (net, process): (Vec<Fault>, Vec<Fault>) = cfg.fault_plan.faults.iter().partition(|f| {
        matches!(
            f,
            Fault::DropConn { .. } | Fault::DelayConn { .. } | Fault::StallShard { .. }
        )
    });
    let net_plan = FaultPlan { faults: net };
    let process_plan = FaultPlan { faults: process };
    let panic_plan: FaultPlan = "panic-query@1;panic-query@2".parse().expect("built-in");
    let panic_shard = cfg.shards - 1;

    // A small cache keeps full-rate audits affordable (mirrors the
    // in-process chaos suite). Full telemetry is on: the final stats
    // scrape must carry a populated latency histogram and stage spans.
    let cache_config = GcConfig {
        cache_capacity: 48,
        window_capacity: 8,
        metrics: true,
        trace: true,
        ..GcConfig::default()
    };
    let mut cache = ShardedGraphCache::new(cache_config, dataset.clone(), cfg.shards);
    cache.set_fault_injectors(|i| {
        if i == panic_shard {
            Some(Arc::new(FaultInjector::new(panic_plan.clone())))
        } else if i == 0 && !process_plan.faults.is_empty() {
            Some(Arc::new(FaultInjector::new(process_plan.clone())))
        } else {
            None
        }
    });
    // Clients send explicit deadlines on every query, so the server-side
    // default budget stays unlimited.
    let service = CacheService::new(cache, cfg.max_inflight, QueryBudget::UNLIMITED);
    let injector =
        (!net_plan.faults.is_empty()).then(|| Arc::new(FaultInjector::new(net_plan.clone())));
    let server = serve(service, 0, injector).expect("bind loopback");
    let addr = server.addr();

    let oracle_config = GcConfig {
        budget: QueryBudget::UNLIMITED,
        ..cache_config
    };
    let mut oracle = GraphCachePlus::new(oracle_config, dataset.clone());
    let truth1: Vec<Vec<u64>> = pool.iter().map(|q| ids_of(&mut oracle, q, kind)).collect();

    let (storm1, updates, audit, audit_after, storm2, ramp) = with_quiet_panics(|| {
        let storm1 = storm(addr, &pool, &truth1, kind, cfg, cfg.scale.seed ^ 0x51);
        let updates = run_updates(addr, &mut oracle, cfg);
        let mut driver = CacheClient::connect(addr);
        let audit = audit_via(&mut driver, cfg.scale.seed);
        let audit_after = audit_via(&mut driver, cfg.scale.seed + 1);
        let truth2: Vec<Vec<u64>> = pool.iter().map(|q| ids_of(&mut oracle, q, kind)).collect();
        let storm2 = storm(addr, &pool, &truth2, kind, cfg, cfg.scale.seed ^ 0x52);
        // post-audit ramp: sweep offered load with retries off, so shed
        // requests surface as explicit Overloaded instead of retry noise
        let ramp: Vec<RampLevel> = [1, cfg.clients, cfg.clients * 2]
            .into_iter()
            .map(|c| ramp_level(addr, &pool, &truth2, kind, cfg, c, cfg.scale.seed ^ 0x9A))
            .collect();
        (storm1, updates, audit, audit_after, storm2, ramp)
    });

    // the scrape goes over the wire like any client would, while the
    // server is still up — this is what CI reconciles against the ledger
    let stats = CacheClient::connect(addr)
        .stats()
        .expect("stats scrape round-trip");
    let executed_queries = (storm1.answered()
        + storm2.answered()
        + ramp.iter().map(|l| l.completed).sum::<usize>()) as u64;

    let health = server.service().health_snapshot();
    let unhealthy_final = server.service().unhealthy_shards();
    server.shutdown();

    NetChaosReport {
        fault_plan: cfg.fault_plan.to_string(),
        deadline_ms: cfg.deadline.as_millis() as u64,
        shards: cfg.shards,
        clients: cfg.clients,
        storm1,
        storm2,
        updates_applied: updates.applied,
        update_reissues: updates.reissues,
        update_failures: updates.failures,
        audit,
        audit_after,
        unhealthy_final,
        health,
        ramp,
        stats,
        executed_queries,
    }
}

fn ids_of(gc: &mut GraphCachePlus, q: &LabeledGraph, kind: QueryKind) -> Vec<u64> {
    gc.execute(q, kind)
        .answer
        .iter_ones()
        .map(|g| g as u64)
        .collect()
}

/// One concurrent query storm: `cfg.clients` threads, each replaying
/// `cfg.queries_per_client` Zipf-skewed draws from the pool with its own
/// seeded rng and jitter stream, classifying every reply against `truth`.
fn storm(
    addr: SocketAddr,
    pool: &[LabeledGraph],
    truth: &[Vec<u64>],
    kind: QueryKind,
    cfg: &NetChaosConfig,
    seed: u64,
) -> StormTally {
    let tallies: Vec<StormTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                s.spawn(move || {
                    storm_client(addr, pool, truth, kind, cfg, seed.wrapping_add(c as u64))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("storm client thread panicked"))
            .collect()
    });
    let mut total = StormTally::default();
    for t in &tallies {
        total.absorb(t);
    }
    total
}

fn storm_client(
    addr: SocketAddr,
    pool: &[LabeledGraph],
    truth: &[Vec<u64>],
    kind: QueryKind,
    cfg: &NetChaosConfig,
    seed: u64,
) -> StormTally {
    let mut client = CacheClient::connect(addr)
        .with_policy(RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
        })
        .with_jitter_seed(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(pool.len(), cfg.zipf_alpha);
    let mut t = StormTally::default();
    let latency = Histogram::new();
    for _ in 0..cfg.queries_per_client {
        let idx = zipf.sample(&mut rng);
        t.requests += 1;
        match client.query(&pool[idx], kind, Some(cfg.deadline)) {
            Ok(reply) => {
                latency.record(reply.elapsed.as_micros().min(u64::MAX as u128) as u64);
                let overrun = reply.elapsed.as_secs_f64() / cfg.deadline.as_secs_f64();
                t.max_overrun = t.max_overrun.max(overrun);
                if overrun > 2.0 {
                    t.hung += 1;
                }
                if reply.baseline_shards > 0 {
                    t.baseline_hits += 1;
                }
                match reply.degraded {
                    // a degraded partial may miss answers, never invent one
                    Some(_) if is_subset(&reply.ids, &truth[idx]) => t.degraded += 1,
                    Some(_) => t.divergent += 1,
                    None if reply.ids == truth[idx] => t.exact += 1,
                    None => t.divergent += 1,
                }
            }
            // explicit failure after retries: allowed, counted, never silent
            Err(_) => t.errors += 1,
        }
    }
    t.retries = client.retries_total();
    t.latency = latency.snapshot();
    t
}

/// One offered-load level: `clients` threads, each issuing
/// [`RAMP_QUERIES_PER_CLIENT`] Zipf draws with retries disabled, so an
/// overloaded server answers `Overloaded` and the level's shed rate is
/// measured rather than amortized away by backoff.
fn ramp_level(
    addr: SocketAddr,
    pool: &[LabeledGraph],
    truth: &[Vec<u64>],
    kind: QueryKind,
    cfg: &NetChaosConfig,
    clients: usize,
    seed: u64,
) -> RampLevel {
    let tallies: Vec<(usize, usize, usize, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let seed = seed.wrapping_add(c as u64);
                s.spawn(move || {
                    let mut client = CacheClient::connect(addr).with_policy(RetryPolicy {
                        max_retries: 0,
                        base: Duration::from_millis(1),
                        cap: Duration::from_millis(1),
                    });
                    let mut rng = StdRng::seed_from_u64(seed);
                    let zipf = Zipf::new(pool.len(), cfg.zipf_alpha);
                    let (mut completed, mut shed, mut errors, mut divergent) = (0, 0, 0, 0);
                    for _ in 0..RAMP_QUERIES_PER_CLIENT {
                        let idx = zipf.sample(&mut rng);
                        match client.query(&pool[idx], kind, Some(cfg.deadline)) {
                            Ok(reply) => {
                                completed += 1;
                                let sound = match reply.degraded {
                                    Some(_) => is_subset(&reply.ids, &truth[idx]),
                                    None => reply.ids == truth[idx],
                                };
                                if !sound {
                                    divergent += 1;
                                }
                            }
                            Err(ClientError::Overloaded) => shed += 1,
                            Err(_) => errors += 1,
                        }
                    }
                    (completed, shed, errors, divergent)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ramp client thread panicked"))
            .collect()
    });
    let mut level = RampLevel {
        clients,
        ..RampLevel::default()
    };
    for (completed, shed, errors, divergent) in tallies {
        level.offered += completed + shed + errors;
        level.completed += completed;
        level.shed += shed;
        level.errors += errors;
        level.divergent += divergent;
    }
    level
}

/// Every id in `ids` present in the sorted `truth`.
fn is_subset(ids: &[u64], truth: &[u64]) -> bool {
    ids.iter().all(|id| truth.binary_search(id).is_ok())
}

struct UpdateTally {
    applied: usize,
    reissues: u64,
    failures: usize,
}

/// The serial update phase: alternating edge removals and re-adds through
/// one driver client, each confirmed op mirrored into the oracle so both
/// sides stay byte-identical.
fn run_updates(addr: SocketAddr, oracle: &mut GraphCachePlus, cfg: &NetChaosConfig) -> UpdateTally {
    let mut driver = CacheClient::connect(addr);
    let mut rng = StdRng::seed_from_u64(cfg.scale.seed ^ 0xA11D);
    let mut removed: Vec<(usize, u32, u32)> = Vec::new();
    let mut tally = UpdateTally {
        applied: 0,
        reissues: 0,
        failures: 0,
    };
    for k in 0..cfg.updates {
        let op = if k % 2 == 1 && !removed.is_empty() {
            let (id, u, v) = removed.pop().expect("checked non-empty");
            ChangeOp::Ua { id, u, v }
        } else {
            let candidates: Vec<usize> = oracle
                .store()
                .iter_live()
                .filter(|(_, g)| g.edge_count() > 0)
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                break;
            }
            let id = candidates[rng.random_range(0..candidates.len())];
            let g = oracle.store().get(id).expect("picked live");
            let edges: Vec<_> = g.edges().collect();
            let (u, v) = edges[rng.random_range(0..edges.len())];
            removed.push((id, u, v));
            ChangeOp::Ur { id, u, v }
        };
        // The client never blind-replays updates; but the harness *knows*
        // drop-conn fires before the server decodes the request, so a
        // transport error here means provably-not-applied and the caller's
        // re-issue is sound.
        let mut ok = false;
        for _ in 0..4 {
            let r = match op {
                ChangeOp::Ua { id, u, v } => driver.ua(id as u64, u, v),
                ChangeOp::Ur { id, u, v } => driver.ur(id as u64, u, v),
                _ => unreachable!("update phase only flips edges"),
            };
            match r {
                Ok(_) => {
                    ok = true;
                    break;
                }
                Err(ClientError::Transport(_)) => tally.reissues += 1,
                Err(_) => break,
            }
        }
        if ok {
            oracle.apply(op).expect("mirrored op valid on the oracle");
            tally.applied += 1;
        } else {
            tally.failures += 1;
        }
    }
    tally
}

fn audit_via(driver: &mut CacheClient, seed: u64) -> AuditReport {
    let (sampled, clean, repaired, evicted) = driver.audit(1.0, seed).expect("audit round-trip");
    AuditReport {
        sampled: sampled as usize,
        clean: clean as usize,
        repaired: repaired as usize,
        evicted: evicted as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> NetChaosConfig {
        let mut cfg = NetChaosConfig::new(Scale {
            dataset_graphs: 40,
            num_queries: 60,
            positive_pool: 20,
            noanswer_pool: 10,
            seed: 0x4E7C,
        });
        cfg.pool_size = 16;
        cfg.clients = 3;
        cfg.queries_per_client = 8;
        cfg.updates = 10;
        cfg
    }

    #[test]
    fn net_chaos_passes_under_builtin_faults() {
        let cfg = tiny_config();
        let report = run_net_chaos(&cfg);
        assert_eq!(report.storm1.divergent, 0, "{report:?}");
        assert_eq!(report.storm2.divergent, 0, "{report:?}");
        assert_eq!(report.storm1.hung + report.storm2.hung, 0, "{report:?}");
        assert!(report.storm1.baseline_hits > 0, "failover never observed");
        assert_eq!(report.storm2.baseline_hits, 0, "shard never rejoined");
        assert!(report.health.panics_recovered >= 2, "{:?}", report.health);
        assert!(
            report.storm1.retries + report.storm2.retries + report.update_reissues > 0,
            "drop-conn never exercised a retry"
        );
        assert_eq!(report.update_failures, 0);
        assert!(report.unhealthy_final.is_empty());

        // telemetry invariants: the scrape reconciles with the ledger,
        // client-side histograms saw every answered reply, and the
        // metrics-enabled server recorded latency + stage time
        assert!(report.reconciled(), "{report:?}");
        assert_eq!(
            report.storm1.latency.count as usize,
            report.storm1.answered()
        );
        assert_eq!(report.stats.latency.count, report.stats.queries);
        assert!(report.stats.stages.total() > 0, "{:?}", report.stats.stages);
        assert_eq!(report.ramp.len(), 3);
        for l in &report.ramp {
            assert_eq!(l.offered, l.clients * RAMP_QUERIES_PER_CLIENT);
            assert_eq!(l.completed + l.shed + l.errors, l.offered);
            assert_eq!(l.divergent, 0, "{l:?}");
        }

        assert!(report.passed(), "{report:?}");
        let json = report.to_json();
        assert!(json.contains("\"passed\": true"));
        assert!(json.contains("\"mode\": \"net\""));
        assert!(json.contains("\"reconciled\": true"));
        assert!(json.contains("\"ramp\": ["));
        let metrics = report.metrics_json();
        assert!(metrics.contains("\"reconciled\": true"));
        assert!(metrics.contains("gc_requests_total"));
        assert!(metrics.contains("gc_shard_hits_total"));
    }

    #[test]
    fn fault_free_net_run_is_all_exact_and_baseline_free_after_audit() {
        // No network faults and no corrupt fault — only the always-on
        // double panic on the failover shard.
        let mut cfg = tiny_config();
        cfg.fault_plan = FaultPlan::none();
        let report = run_net_chaos(&cfg);
        assert_eq!(report.storm1.divergent + report.storm2.divergent, 0);
        assert_eq!(report.storm1.errors + report.storm2.errors, 0);
        assert_eq!(report.storm1.retries + report.storm2.retries, 0);
        assert!(report.storm1.baseline_hits > 0);
        assert_eq!(report.storm2.baseline_hits, 0);
        assert!(report.passed(), "{report:?}");
    }
}
