//! The chaos harness — fault-tolerant execution, empirically enforced.
//!
//! [`run_chaos`] replays the paper's Type A and Type B workloads under a
//! deterministic [`FaultPlan`] (injected update/query panics, delays and
//! silent answer-set corruption) while a fault-free oracle instance runs
//! the identical query/change stream. Three properties are checked, query
//! by query:
//!
//! 1. **no silent divergence** — every answer either equals the oracle's
//!    or is explicitly tagged degraded (and even then must be a sound
//!    subset of the oracle answer);
//! 2. **bounded deadlines** — no query may overrun its wall-clock budget
//!    by more than 2× (one retry after a contained panic is the worst
//!    legitimate case);
//! 3. **quarantine drains** — after the final auditor pass, zero entries
//!    remain quarantined.
//!
//! The driver is fully seeded: the same scale + fault plan replays the
//! same faults at the same points in the same streams. The `experiments
//! chaos` CLI command wraps this module and emits `CHAOS_report.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gc_core::{
    AuditReport, CandidateSource, FaultInjector, FaultPlan, GcConfig, GraphCachePlus,
    HealthSnapshot, MaintenanceMode, QueryBudget,
};
use gc_dataset::{ChangeOp, ChangePlan, GraphStore, OpType};
use gc_graph::LabeledGraph;
use gc_telemetry::{Histogram, HistogramSnapshot, Stage, StageSpans};
use gc_workload::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{build_dataset, build_plan, build_type_a_workloads, build_type_b_workloads, Scale};

/// Knobs of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Dataset/workload scale (chaos runs default to [`Scale::small`]).
    pub scale: Scale,
    /// The faults to inject into every workload replay.
    pub fault_plan: FaultPlan,
    /// Per-query wall-clock deadline on the faulted instance.
    pub deadline: Duration,
    /// Auditor sampling rate after each update burst (quarantined entries
    /// are always audited regardless).
    pub audit_rate: f64,
}

impl ChaosConfig {
    /// Default chaos setup for a scale: the built-in fault plan, a 250 ms
    /// deadline and full-rate audits.
    pub fn new(scale: Scale) -> ChaosConfig {
        ChaosConfig {
            scale,
            fault_plan: default_fault_plan(),
            deadline: Duration::from_millis(250),
            audit_rate: 1.0,
        }
    }
}

/// The built-in fault plan: one update panic, two query panics, one
/// injected delay and two silent corruptions — every fault category,
/// early enough to fire at any scale.
pub fn default_fault_plan() -> FaultPlan {
    "panic-update@2;corrupt@4:0;panic-query@5;delay-query@9:40;panic-query@23;corrupt@11:3"
        .parse()
        .expect("built-in fault plan parses")
}

/// Per-workload chaos verdict.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Workload name (ZZ / ZU / UU / 0% / 20% / 50%).
    pub workload: String,
    /// Queries replayed.
    pub queries: usize,
    /// Dataset updates applied through the panic boundary.
    pub updates: usize,
    /// Queries whose answer equaled the oracle's exactly.
    pub exact: usize,
    /// Queries that returned an explicitly degraded (sound partial)
    /// outcome.
    pub degraded: usize,
    /// Silently wrong answers — untagged mismatches, or degraded answers
    /// that were not a subset of the oracle's. Must be zero.
    pub divergent: usize,
    /// Worst observed `elapsed / deadline` ratio across all queries.
    pub max_overrun: f64,
    /// Auditor passes run (one per update burst plus the final sweep).
    pub audits: usize,
    /// Auditor activity summed over all passes.
    pub audit_total: AuditReport,
    /// Entries still quarantined after the final audit. Must be zero.
    pub quarantined_final: usize,
    /// Panics contained by the isolation boundaries.
    pub panics_recovered: u64,
    /// Harness-side per-query latency of the faulted instance,
    /// microseconds.
    pub latency: HistogramSnapshot,
    /// Pipeline-stage wall time accumulated by the faulted instance
    /// (chaos runs enable tracing).
    pub stages: StageSpans,
    /// The faulted instance's full fault-tolerance counters at the end.
    pub health: HealthSnapshot,
}

impl ChaosCell {
    /// Did this workload satisfy all three chaos invariants?
    pub fn passed(&self) -> bool {
        self.divergent == 0 && self.max_overrun <= 2.0 && self.quarantined_final == 0
    }
}

/// Aggregated result of one [`run_chaos`] invocation.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The injected plan, in its compact string form.
    pub fault_plan: String,
    /// The per-query deadline, milliseconds.
    pub deadline_ms: u64,
    /// One verdict per workload.
    pub cells: Vec<ChaosCell>,
}

impl ChaosReport {
    /// `true` iff every workload passed all three invariants.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(ChaosCell::passed)
    }

    /// Hand-rolled JSON (the artifact uploaded by CI's chaos smoke job).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"fault_plan\": \"{}\",\n", self.fault_plan));
        out.push_str(&format!("  \"deadline_ms\": {},\n", self.deadline_ms));
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"queries\": {}, \"updates\": {}, \
                 \"exact\": {}, \"degraded\": {}, \"divergent\": {}, \
                 \"max_overrun\": {:.4}, \"panics_recovered\": {}, \
                 \"audits\": {}, \"audit_sampled\": {}, \"audit_repaired\": {}, \
                 \"audit_evicted\": {}, \"quarantined_final\": {}, \
                 \"latency_us\": {}, \"stage_nanos\": {}}}{}\n",
                c.workload,
                c.queries,
                c.updates,
                c.exact,
                c.degraded,
                c.divergent,
                c.max_overrun,
                c.panics_recovered,
                c.audits,
                c.audit_total.sampled,
                c.audit_total.repaired,
                c.audit_total.evicted,
                c.quarantined_final,
                latency_json(&c.latency),
                spans_json(&c.stages),
                if i + 1 == self.cells.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the full chaos suite: all six paper workloads, each replayed under
/// the configured fault plan against a fault-free oracle.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let dataset = build_dataset(&cfg.scale);
    let plan = build_plan(&cfg.scale);
    let mut workloads = build_type_a_workloads(&dataset, &cfg.scale);
    workloads.extend(build_type_b_workloads(&dataset, &cfg.scale));
    let cells = with_quiet_panics(|| {
        workloads
            .iter()
            .map(|w| run_chaos_cell(&dataset, w, &plan, cfg))
            .collect()
    });
    ChaosReport {
        fault_plan: cfg.fault_plan.to_string(),
        deadline_ms: cfg.deadline.as_millis() as u64,
        cells,
    }
}

/// Replays one workload under the fault plan, comparing every answer
/// against a fault-free oracle instance fed the identical change stream.
pub fn run_chaos_cell(
    dataset: &[LabeledGraph],
    workload: &Workload,
    plan: &ChangePlan,
    cfg: &ChaosConfig,
) -> ChaosCell {
    // A small cache keeps full-rate audits affordable; the faulted side
    // additionally runs under the wall-clock deadline.
    let faulted_config = GcConfig {
        cache_capacity: 48,
        window_capacity: 8,
        budget: QueryBudget {
            deadline: Some(cfg.deadline),
            max_tests: None,
        },
        // chaos runs pay for full telemetry: stage spans feed the report
        trace: true,
        ..GcConfig::default()
    };
    let oracle_config = GcConfig {
        budget: QueryBudget::UNLIMITED,
        ..faulted_config
    };
    let mut faulted = GraphCachePlus::new(faulted_config, dataset.to_vec());
    faulted.set_fault_injector(Arc::new(FaultInjector::new(cfg.fault_plan.clone())));
    let mut oracle = GraphCachePlus::new(oracle_config, dataset.to_vec());

    // Change materialization is seeded separately from the fault plan so
    // both instances see the exact same concrete operations.
    let mut rng = StdRng::seed_from_u64(cfg.scale.seed ^ 0xC4A0_5CA0);
    let mut next_batch = 0usize;

    let mut cell = ChaosCell {
        workload: workload.name.clone(),
        queries: workload.len(),
        updates: 0,
        exact: 0,
        degraded: 0,
        divergent: 0,
        max_overrun: 0.0,
        audits: 0,
        audit_total: AuditReport::default(),
        quarantined_final: 0,
        panics_recovered: 0,
        latency: HistogramSnapshot::default(),
        stages: StageSpans::default(),
        health: HealthSnapshot::default(),
    };
    let latency = Histogram::new();

    for (i, q) in workload.queries.iter().enumerate() {
        // ---- fire due change batches through the panic boundary ----
        let mut burst = 0usize;
        while next_batch < plan.batches.len() && plan.batches[next_batch].at_query <= i {
            for planned in &plan.batches[next_batch].ops {
                if let Some(op) = materialize_op(&mut rng, faulted.store(), dataset, planned.op) {
                    let f = faulted.apply_isolated(op.clone());
                    let o = oracle.apply(op);
                    debug_assert_eq!(f.is_ok(), o.is_ok(), "materialized op valid on both");
                    burst += 1;
                }
            }
            next_batch += 1;
        }
        // ---- audit after each burst: silent corruption lands on the
        //      update path and must be caught before queries can see it ----
        if burst > 0 {
            cell.updates += burst;
            cell.audits += 1;
            add_audit(
                &mut cell.audit_total,
                faulted.audit(cfg.audit_rate, cfg.scale.seed + i as u64),
            );
        }
        // ---- one query on each instance, faulted side under deadline ----
        let t = Instant::now();
        let out = faulted.execute_isolated(q, workload.kind);
        let elapsed = t.elapsed();
        let truth = oracle.execute(q, workload.kind);
        let overrun = elapsed.as_secs_f64() / cfg.deadline.as_secs_f64();
        cell.max_overrun = cell.max_overrun.max(overrun);
        latency.record(elapsed.as_micros().min(u64::MAX as u128) as u64);
        if out.metrics.degraded.is_some() {
            // a degraded partial may miss answers but must never invent one
            if out.answer.is_subset_of(&truth.answer) {
                cell.degraded += 1;
            } else {
                cell.divergent += 1;
            }
        } else if out.answer == truth.answer {
            cell.exact += 1;
        } else {
            cell.divergent += 1;
        }
    }

    // ---- final sweep: late faults may have left quarantined entries ----
    cell.audits += 1;
    add_audit(
        &mut cell.audit_total,
        faulted.audit(cfg.audit_rate, cfg.scale.seed),
    );
    cell.quarantined_final = faulted.quarantined_entries();
    cell.health = faulted.health_snapshot();
    cell.panics_recovered = cell.health.panics_recovered;
    cell.latency = latency.snapshot();
    cell.stages = faulted.stage_totals();
    cell
}

/// Per-workload verdict of one candidate-source differential replay: the
/// same fault plan fired against the postings-index-backed pipeline (the
/// default [`CandidateSource::LabelIndex`]) and the paper's full-scan
/// pipeline, side by side on identical query/change streams.
#[derive(Debug, Clone)]
pub struct IndexDiffCell {
    /// Workload name (ZZ / ZU / UU / 0% / 20% / 50%).
    pub workload: String,
    /// Queries replayed through both pipelines.
    pub queries: usize,
    /// Dataset updates applied to both instances.
    pub updates: usize,
    /// Queries where both sides returned the identical undegraded answer.
    pub exact: usize,
    /// Queries where at least one side returned an explicitly degraded
    /// (sound partial) outcome.
    pub degraded: usize,
    /// Answer divergence between the two candidate sources: undegraded
    /// mismatches, or a degraded partial that was not a subset of the
    /// other side's exact answer. Must be zero.
    pub divergent: usize,
    /// Auditor passes compared (one per update burst plus the final
    /// sweep).
    pub audit_passes: usize,
    /// Audit passes whose verdicts (sampled/clean/repaired/evicted)
    /// differed between the two pipelines. Must be zero.
    pub audit_divergent: usize,
    /// Auditor activity summed over the index-backed instance's passes.
    pub audit_total: AuditReport,
    /// Queries where the index produced *more* candidates than the scan
    /// (the index may only shrink CS_M; compared when neither side
    /// degraded). Must be zero.
    pub candidate_violations: usize,
    /// Candidates examined by the index-backed pipeline, summed.
    pub index_candidates: u64,
    /// Candidates examined by the scan-backed pipeline, summed.
    pub scan_candidates: u64,
    /// Panics contained by the index-backed instance.
    pub panics_indexed: u64,
    /// Panics contained by the scan-backed instance (must equal the
    /// index-backed count — the plan fires at the same stream points).
    pub panics_scanned: u64,
    /// Entries left quarantined after the final audit, per side. Both
    /// must be zero.
    pub quarantined_indexed: usize,
    /// See [`IndexDiffCell::quarantined_indexed`].
    pub quarantined_scanned: usize,
    /// Did the index absorb every logged change incrementally (replay
    /// count equals the change-log length — i.e. no rebuild happened)?
    pub index_replay_ok: bool,
}

impl IndexDiffCell {
    /// Did the two candidate sources stay observationally equivalent?
    pub fn passed(&self) -> bool {
        self.divergent == 0
            && self.audit_divergent == 0
            && self.candidate_violations == 0
            && self.panics_indexed == self.panics_scanned
            && self.quarantined_indexed == 0
            && self.quarantined_scanned == 0
            && self.index_replay_ok
    }
}

/// Aggregated result of one [`run_index_diff`] invocation.
#[derive(Debug, Clone)]
pub struct IndexDiffReport {
    /// The injected plan, in its compact string form.
    pub fault_plan: String,
    /// The per-query deadline, milliseconds.
    pub deadline_ms: u64,
    /// One verdict per workload.
    pub cells: Vec<IndexDiffCell>,
}

impl IndexDiffReport {
    /// `true` iff every workload stayed divergence-free.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(IndexDiffCell::passed)
    }

    /// Hand-rolled JSON (the artifact uploaded by CI's chaos smoke job).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"fault_plan\": \"{}\",\n", self.fault_plan));
        out.push_str(&format!("  \"deadline_ms\": {},\n", self.deadline_ms));
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"queries\": {}, \"updates\": {}, \
                 \"exact\": {}, \"degraded\": {}, \"divergent\": {}, \
                 \"audit_passes\": {}, \"audit_divergent\": {}, \
                 \"audit_repaired\": {}, \"candidate_violations\": {}, \
                 \"index_candidates\": {}, \"scan_candidates\": {}, \
                 \"panics_indexed\": {}, \"panics_scanned\": {}, \
                 \"quarantined_indexed\": {}, \"quarantined_scanned\": {}, \
                 \"index_replay_ok\": {}}}{}\n",
                c.workload,
                c.queries,
                c.updates,
                c.exact,
                c.degraded,
                c.divergent,
                c.audit_passes,
                c.audit_divergent,
                c.audit_total.repaired,
                c.candidate_violations,
                c.index_candidates,
                c.scan_candidates,
                c.panics_indexed,
                c.panics_scanned,
                c.quarantined_indexed,
                c.quarantined_scanned,
                c.index_replay_ok,
                if i + 1 == self.cells.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the candidate-source differential chaos suite: all six paper
/// workloads, each replayed under the configured fault plan against
/// **both** candidate sources, failing on any answer or audit divergence.
pub fn run_index_diff(cfg: &ChaosConfig) -> IndexDiffReport {
    let dataset = build_dataset(&cfg.scale);
    let plan = build_plan(&cfg.scale);
    let mut workloads = build_type_a_workloads(&dataset, &cfg.scale);
    workloads.extend(build_type_b_workloads(&dataset, &cfg.scale));
    let cells = with_quiet_panics(|| {
        workloads
            .iter()
            .map(|w| run_index_diff_cell(&dataset, w, &plan, cfg))
            .collect()
    });
    IndexDiffReport {
        fault_plan: cfg.fault_plan.to_string(),
        deadline_ms: cfg.deadline.as_millis() as u64,
        cells,
    }
}

/// Replays one workload under the fault plan on an index-backed and a
/// scan-backed instance simultaneously, comparing every answer and every
/// audit verdict between the two.
pub fn run_index_diff_cell(
    dataset: &[LabeledGraph],
    workload: &Workload,
    plan: &ChangePlan,
    cfg: &ChaosConfig,
) -> IndexDiffCell {
    // Sized so nothing is ever evicted: replacement ranks entries by
    // benefit (tests alleviated — and even LRU recency is refreshed by
    // benefit attribution), a quantity the candidate source legitimately
    // changes, so under eviction pressure the two caches would diverge in
    // *composition* (never in answers) and void the audit-verdict
    // comparison. Eviction-free, composition is a function of the shared
    // query/answer stream alone and audit equality is a real invariant.
    let base = GcConfig {
        cache_capacity: workload.len() + 16,
        window_capacity: 8,
        budget: QueryBudget {
            deadline: Some(cfg.deadline),
            max_tests: None,
        },
        ..GcConfig::default()
    };
    let mut indexed = GraphCachePlus::new(
        GcConfig {
            candidate_source: CandidateSource::LabelIndex,
            ..base
        },
        dataset.to_vec(),
    );
    let mut scanned = GraphCachePlus::new(
        GcConfig {
            candidate_source: CandidateSource::LiveScan,
            ..base
        },
        dataset.to_vec(),
    );
    indexed.set_fault_injector(Arc::new(FaultInjector::new(cfg.fault_plan.clone())));
    scanned.set_fault_injector(Arc::new(FaultInjector::new(cfg.fault_plan.clone())));

    // The same concrete operations hit both instances, materialized once
    // against the (identical) index-backed store state.
    let mut rng = StdRng::seed_from_u64(cfg.scale.seed ^ 0x1DD1_F0AD);
    let mut next_batch = 0usize;

    let mut cell = IndexDiffCell {
        workload: workload.name.clone(),
        queries: workload.len(),
        updates: 0,
        exact: 0,
        degraded: 0,
        divergent: 0,
        audit_passes: 0,
        audit_divergent: 0,
        audit_total: AuditReport::default(),
        candidate_violations: 0,
        index_candidates: 0,
        scan_candidates: 0,
        panics_indexed: 0,
        panics_scanned: 0,
        quarantined_indexed: 0,
        quarantined_scanned: 0,
        index_replay_ok: false,
    };

    let compare_audits = |cell: &mut IndexDiffCell,
                          indexed: &mut GraphCachePlus,
                          scanned: &mut GraphCachePlus,
                          seed: u64| {
        cell.audit_passes += 1;
        let ra = indexed.audit(cfg.audit_rate, seed);
        let rb = scanned.audit(cfg.audit_rate, seed);
        if ra.sampled != rb.sampled
            || ra.clean != rb.clean
            || ra.repaired != rb.repaired
            || ra.evicted != rb.evicted
        {
            cell.audit_divergent += 1;
        }
        add_audit(&mut cell.audit_total, ra);
    };

    for (i, q) in workload.queries.iter().enumerate() {
        let mut burst = 0usize;
        while next_batch < plan.batches.len() && plan.batches[next_batch].at_query <= i {
            for planned in &plan.batches[next_batch].ops {
                if let Some(op) = materialize_op(&mut rng, indexed.store(), dataset, planned.op) {
                    let a = indexed.apply_isolated(op.clone());
                    let b = scanned.apply_isolated(op);
                    debug_assert_eq!(a.is_ok(), b.is_ok(), "materialized op valid on both");
                    burst += 1;
                }
            }
            next_batch += 1;
        }
        if burst > 0 {
            cell.updates += burst;
            // audit both sides with the same rate and seed right after the
            // burst: injected corruption must be found (and repaired) by
            // both pipelines identically
            compare_audits(
                &mut cell,
                &mut indexed,
                &mut scanned,
                cfg.scale.seed + i as u64,
            );
        }

        let a = indexed.execute_isolated(q, workload.kind);
        let b = scanned.execute_isolated(q, workload.kind);
        cell.index_candidates += a.metrics.candidate_size;
        cell.scan_candidates += b.metrics.candidate_size;
        match (a.metrics.degraded.is_some(), b.metrics.degraded.is_some()) {
            (false, false) => {
                if a.answer == b.answer {
                    cell.exact += 1;
                } else {
                    cell.divergent += 1;
                }
                if a.metrics.candidate_size > b.metrics.candidate_size {
                    cell.candidate_violations += 1;
                }
            }
            (da, db) => {
                // a degraded partial may miss answers but must never
                // invent one the other (exact) side does not have
                let sound_a = !da || db || a.answer.is_subset_of(&b.answer);
                let sound_b = !db || da || b.answer.is_subset_of(&a.answer);
                if sound_a && sound_b {
                    cell.degraded += 1;
                } else {
                    cell.divergent += 1;
                }
            }
        }
    }

    // final sweep: late corruption must drain from both sides identically
    compare_audits(&mut cell, &mut indexed, &mut scanned, cfg.scale.seed);
    cell.quarantined_indexed = indexed.quarantined_entries();
    cell.quarantined_scanned = scanned.quarantined_entries();
    cell.panics_indexed = indexed.health_snapshot().panics_recovered;
    cell.panics_scanned = scanned.health_snapshot().panics_recovered;
    cell.index_replay_ok = indexed
        .label_index()
        .is_some_and(|idx| idx.records_replayed() == indexed.log_len() as u64);
    cell
}

/// Per-workload verdict of one maintenance-mode differential replay: the
/// same fault plan fired against a delta-repair pipeline (the default
/// [`MaintenanceMode::Repair`](gc_core::MaintenanceMode::Repair)) and an
/// invalidate-only oracle, side by side on identical query/change streams.
#[derive(Debug, Clone)]
pub struct RepairDiffCell {
    /// Workload name (ZZ / ZU / UU / 0% / 20% / 50%).
    pub workload: String,
    /// Queries replayed through both pipelines.
    pub queries: usize,
    /// Dataset updates applied to both instances.
    pub updates: usize,
    /// Queries where both sides returned the identical undegraded answer.
    pub exact: usize,
    /// Queries where at least one side returned an explicitly degraded
    /// (sound partial) outcome.
    pub degraded: usize,
    /// Answer divergence between the two maintenance modes: undegraded
    /// mismatches, or a degraded partial that was not a subset of the
    /// other side's exact answer. Must be zero.
    pub divergent: usize,
    /// Auditor passes compared (one per update burst plus the final
    /// sweep).
    pub audit_passes: usize,
    /// Audit passes whose verdicts (sampled/clean/repaired/evicted)
    /// differed between the two pipelines. Must be zero — repair leaves
    /// every bit it does not resolve byte-identical to invalidation.
    pub audit_divergent: usize,
    /// Auditor activity summed over the repair-mode instance's passes.
    pub audit_total: AuditReport,
    /// Validity bits the repair instance spliced to a changed value.
    pub repairs_applied: u64,
    /// Validity bits the repair instance preserved where invalidation
    /// would have discarded them.
    pub invalidations_avoided: u64,
    /// Would-repair bits surrendered to invalidation when the per-pass
    /// test budget ran dry.
    pub repair_fallbacks: u64,
    /// Wall-clock nanoseconds the repair instance spent in the `repair`
    /// pipeline stage (the maintenance-time cost of delta repair).
    pub repair_nanos: u64,
    /// The invalidate-mode oracle's repair counters — all three must stay
    /// zero (the mode flag actually disables the repair path).
    pub oracle_repair_activity: u64,
    /// Panics contained by the repair-mode instance.
    pub panics_repair: u64,
    /// Panics contained by the invalidate-mode instance (must equal the
    /// repair-mode count — the plan fires at the same stream points).
    pub panics_oracle: u64,
    /// Entries left quarantined after the final audit, per side. Both
    /// must be zero.
    pub quarantined_repair: usize,
    /// See [`RepairDiffCell::quarantined_repair`].
    pub quarantined_oracle: usize,
}

impl RepairDiffCell {
    /// Did the two maintenance modes stay observationally equivalent?
    pub fn passed(&self) -> bool {
        self.divergent == 0
            && self.audit_divergent == 0
            && self.oracle_repair_activity == 0
            && self.panics_repair == self.panics_oracle
            && self.quarantined_repair == 0
            && self.quarantined_oracle == 0
    }
}

/// Aggregated result of one [`run_repair_diff`] invocation.
#[derive(Debug, Clone)]
pub struct RepairDiffReport {
    /// The injected plan, in its compact string form.
    pub fault_plan: String,
    /// The per-query deadline, milliseconds.
    pub deadline_ms: u64,
    /// One verdict per workload.
    pub cells: Vec<RepairDiffCell>,
}

impl RepairDiffReport {
    /// `true` iff every workload stayed divergence-free.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(RepairDiffCell::passed)
    }

    /// Validity bits preserved across the whole suite — the headline the
    /// CI gate requires to be nonzero (a diff that never repairs anything
    /// proves nothing).
    pub fn total_invalidations_avoided(&self) -> u64 {
        self.cells.iter().map(|c| c.invalidations_avoided).sum()
    }

    /// Hand-rolled JSON (the artifact uploaded by CI's chaos smoke job).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"fault_plan\": \"{}\",\n", self.fault_plan));
        out.push_str(&format!("  \"deadline_ms\": {},\n", self.deadline_ms));
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str(&format!(
            "  \"total_invalidations_avoided\": {},\n",
            self.total_invalidations_avoided()
        ));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"queries\": {}, \"updates\": {}, \
                 \"exact\": {}, \"degraded\": {}, \"divergent\": {}, \
                 \"audit_passes\": {}, \"audit_divergent\": {}, \
                 \"audit_repaired\": {}, \"repairs_applied\": {}, \
                 \"invalidations_avoided\": {}, \"repair_fallbacks\": {}, \
                 \"repair_nanos\": {}, \
                 \"panics_repair\": {}, \"panics_oracle\": {}, \
                 \"quarantined_repair\": {}, \"quarantined_oracle\": {}}}{}\n",
                c.workload,
                c.queries,
                c.updates,
                c.exact,
                c.degraded,
                c.divergent,
                c.audit_passes,
                c.audit_divergent,
                c.audit_total.repaired,
                c.repairs_applied,
                c.invalidations_avoided,
                c.repair_fallbacks,
                c.repair_nanos,
                c.panics_repair,
                c.panics_oracle,
                c.quarantined_repair,
                c.quarantined_oracle,
                if i + 1 == self.cells.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the maintenance-mode differential chaos suite: all six paper
/// workloads, each replayed under the configured fault plan against
/// **both** maintenance modes, failing on any answer or audit divergence.
pub fn run_repair_diff(cfg: &ChaosConfig) -> RepairDiffReport {
    let dataset = build_dataset(&cfg.scale);
    let plan = build_plan(&cfg.scale);
    let mut workloads = build_type_a_workloads(&dataset, &cfg.scale);
    workloads.extend(build_type_b_workloads(&dataset, &cfg.scale));
    let cells = with_quiet_panics(|| {
        workloads
            .iter()
            .map(|w| run_repair_diff_cell(&dataset, w, &plan, cfg))
            .collect()
    });
    RepairDiffReport {
        fault_plan: cfg.fault_plan.to_string(),
        deadline_ms: cfg.deadline.as_millis() as u64,
        cells,
    }
}

/// Replays one workload under the fault plan on a repair-mode and an
/// invalidate-mode instance simultaneously, comparing every answer and
/// every audit verdict between the two.
pub fn run_repair_diff_cell(
    dataset: &[LabeledGraph],
    workload: &Workload,
    plan: &ChangePlan,
    cfg: &ChaosConfig,
) -> RepairDiffCell {
    // Eviction-free sizing for the same reason as the index diff: the
    // maintenance mode legitimately changes entry benefit (a repaired
    // entry keeps alleviating tests that an invalidated one re-earns),
    // so under eviction pressure cache *composition* would diverge and
    // void the audit-verdict comparison.
    let base = GcConfig {
        cache_capacity: workload.len() + 16,
        window_capacity: 8,
        budget: QueryBudget {
            deadline: Some(cfg.deadline),
            max_tests: None,
        },
        // tracing on: the cell reports the repair stage span as the
        // maintenance-time cost of delta repair
        trace: true,
        ..GcConfig::default()
    };
    let mut repair = GraphCachePlus::new(
        GcConfig {
            maintenance: MaintenanceMode::Repair,
            ..base
        },
        dataset.to_vec(),
    );
    let mut oracle = GraphCachePlus::new(
        GcConfig {
            maintenance: MaintenanceMode::Invalidate,
            ..base
        },
        dataset.to_vec(),
    );
    repair.set_fault_injector(Arc::new(FaultInjector::new(cfg.fault_plan.clone())));
    oracle.set_fault_injector(Arc::new(FaultInjector::new(cfg.fault_plan.clone())));

    // The same concrete operations hit both instances, materialized once
    // against the (identical) repair-mode store state.
    let mut rng = StdRng::seed_from_u64(cfg.scale.seed ^ 0x6E9A_1D1F);
    let mut next_batch = 0usize;

    let mut cell = RepairDiffCell {
        workload: workload.name.clone(),
        queries: workload.len(),
        updates: 0,
        exact: 0,
        degraded: 0,
        divergent: 0,
        audit_passes: 0,
        audit_divergent: 0,
        audit_total: AuditReport::default(),
        repairs_applied: 0,
        invalidations_avoided: 0,
        repair_fallbacks: 0,
        repair_nanos: 0,
        oracle_repair_activity: 0,
        panics_repair: 0,
        panics_oracle: 0,
        quarantined_repair: 0,
        quarantined_oracle: 0,
    };

    let compare_audits = |cell: &mut RepairDiffCell,
                          repair: &mut GraphCachePlus,
                          oracle: &mut GraphCachePlus,
                          seed: u64| {
        cell.audit_passes += 1;
        let ra = repair.audit(cfg.audit_rate, seed);
        let rb = oracle.audit(cfg.audit_rate, seed);
        if ra.sampled != rb.sampled
            || ra.clean != rb.clean
            || ra.repaired != rb.repaired
            || ra.evicted != rb.evicted
        {
            cell.audit_divergent += 1;
        }
        add_audit(&mut cell.audit_total, ra);
    };

    for (i, q) in workload.queries.iter().enumerate() {
        let mut burst = 0usize;
        while next_batch < plan.batches.len() && plan.batches[next_batch].at_query <= i {
            for planned in &plan.batches[next_batch].ops {
                if let Some(op) = materialize_op(&mut rng, repair.store(), dataset, planned.op) {
                    let a = repair.apply_isolated(op.clone());
                    let b = oracle.apply_isolated(op);
                    debug_assert_eq!(a.is_ok(), b.is_ok(), "materialized op valid on both");
                    burst += 1;
                }
            }
            next_batch += 1;
        }
        if burst > 0 {
            cell.updates += burst;
            // audit both sides with the same rate and seed right after the
            // burst: injected corruption is caught *before* either mode's
            // maintenance pass runs, so the verdicts must be identical
            compare_audits(
                &mut cell,
                &mut repair,
                &mut oracle,
                cfg.scale.seed + i as u64,
            );
        }

        let a = repair.execute_isolated(q, workload.kind);
        let b = oracle.execute_isolated(q, workload.kind);
        match (a.metrics.degraded.is_some(), b.metrics.degraded.is_some()) {
            (false, false) => {
                if a.answer == b.answer {
                    cell.exact += 1;
                } else {
                    cell.divergent += 1;
                }
            }
            (da, db) => {
                // a degraded partial may miss answers but must never
                // invent one the other (exact) side does not have
                let sound_a = !da || db || a.answer.is_subset_of(&b.answer);
                let sound_b = !db || da || b.answer.is_subset_of(&a.answer);
                if sound_a && sound_b {
                    cell.degraded += 1;
                } else {
                    cell.divergent += 1;
                }
            }
        }
    }

    // final sweep: late corruption must drain from both sides identically
    compare_audits(&mut cell, &mut repair, &mut oracle, cfg.scale.seed);
    cell.quarantined_repair = repair.quarantined_entries();
    cell.quarantined_oracle = oracle.quarantined_entries();
    let rh = repair.health_snapshot();
    let oh = oracle.health_snapshot();
    cell.panics_repair = rh.panics_recovered;
    cell.panics_oracle = oh.panics_recovered;
    cell.repairs_applied = rh.repairs_applied;
    cell.invalidations_avoided = rh.invalidations_avoided;
    cell.repair_fallbacks = rh.repair_fallbacks;
    cell.repair_nanos = repair.stage_totals().get(Stage::Repair);
    cell.oracle_repair_activity =
        oh.repairs_applied + oh.invalidations_avoided + oh.repair_fallbacks;
    cell
}

/// Stage-span totals as a compact JSON object (`{"prefilter": ns, ...}`).
pub(crate) fn spans_json(spans: &StageSpans) -> String {
    let fields: Vec<String> = spans
        .iter()
        .map(|(stage, nanos)| format!("\"{}\": {}", stage.name(), nanos))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

/// Histogram quantiles as a compact JSON object (values in the unit the
/// histogram was recorded in — microseconds for latency).
pub(crate) fn latency_json(snap: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
        snap.count,
        snap.p50(),
        snap.p95(),
        snap.p99(),
        snap.max()
    )
}

/// Materializes one planned op against the current store state, paralleling
/// `PlanExecutor` but *returning* the concrete [`ChangeOp`] so the same
/// operation can be applied to both the faulted and the oracle instance
/// (and retried after a contained panic). `None` when the category cannot
/// fire (e.g. UR on an edgeless dataset).
fn materialize_op(
    rng: &mut StdRng,
    store: &GraphStore,
    initial: &[LabeledGraph],
    op: OpType,
) -> Option<ChangeOp> {
    match op {
        OpType::Add => {
            if initial.is_empty() {
                return None;
            }
            Some(ChangeOp::Add(
                initial[rng.random_range(0..initial.len())].clone(),
            ))
        }
        OpType::Del => pick_live(rng, store, |_| true).map(ChangeOp::Del),
        OpType::Ua => {
            let id = pick_live(rng, store, |g| {
                let n = g.vertex_count();
                n >= 2 && g.edge_count() < n * (n - 1) / 2
            })?;
            let g = store.get(id).expect("picked live");
            let n = g.vertex_count() as u32;
            loop {
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v && !g.has_edge(u, v) {
                    return Some(ChangeOp::Ua { id, u, v });
                }
            }
        }
        OpType::Ur => {
            let id = pick_live(rng, store, |g| g.edge_count() > 0)?;
            let g = store.get(id).expect("picked live");
            let edges: Vec<_> = g.edges().collect();
            let (u, v) = edges[rng.random_range(0..edges.len())];
            Some(ChangeOp::Ur { id, u, v })
        }
    }
}

/// Uniform live-graph pick with bounded rejection sampling and an
/// exhaustive fallback (mirrors `PlanExecutor`'s selection recipe).
fn pick_live(
    rng: &mut StdRng,
    store: &GraphStore,
    pred: impl Fn(&LabeledGraph) -> bool,
) -> Option<usize> {
    let span = store.id_span();
    if span == 0 || store.live_count() == 0 {
        return None;
    }
    for _ in 0..64 {
        let id = rng.random_range(0..span);
        if let Some(g) = store.get(id) {
            if pred(g) {
                return Some(id);
            }
        }
    }
    let candidates: Vec<usize> = store
        .iter_live()
        .filter(|(_, g)| pred(g))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.random_range(0..candidates.len())])
    }
}

fn add_audit(total: &mut AuditReport, pass: AuditReport) {
    total.sampled += pass.sampled;
    total.clean += pass.clean;
    total.repaired += pass.repaired;
    total.evicted += pass.evicted;
}

/// Runs `f` with the default panic hook silenced — injected faults are
/// *supposed* to panic, and dozens of backtrace banners would drown the
/// report. The hook is global, so the previous one is restored afterwards.
pub(crate) fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(prev);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_chaos_config() -> ChaosConfig {
        ChaosConfig::new(Scale {
            dataset_graphs: 40,
            num_queries: 60,
            positive_pool: 20,
            noanswer_pool: 10,
            seed: 0xC405,
        })
    }

    #[test]
    fn chaos_suite_passes_under_builtin_faults() {
        let cfg = tiny_chaos_config();
        let report = run_chaos(&cfg);
        assert_eq!(report.cells.len(), 6, "three Type A + three Type B");
        for c in &report.cells {
            assert_eq!(c.divergent, 0, "silent divergence in {}", c.workload);
            assert_eq!(c.quarantined_final, 0, "quarantine left in {}", c.workload);
            assert!(c.max_overrun <= 2.0, "deadline overrun in {}", c.workload);
            assert_eq!(c.queries, 60);
            // telemetry rides along: one latency sample per query, and
            // tracing accumulated real stage time
            assert_eq!(c.latency.count, 60, "latency samples in {}", c.workload);
            assert!(c.latency.max() > 0);
            assert!(c.latency.p50() <= c.latency.p99());
            assert!(c.stages.total() > 0, "no stage time in {}", c.workload);
            assert_eq!(c.health.panics_recovered, c.panics_recovered);
        }
        assert!(report.passed());
        // the plan's panics actually fired somewhere in the suite
        let panics: u64 = report.cells.iter().map(|c| c.panics_recovered).sum();
        assert!(panics > 0, "fault plan injected no panics");
        // the auditor actually repaired the injected corruption
        let repaired: usize = report.cells.iter().map(|c| c.audit_total.repaired).sum();
        assert!(repaired > 0, "injected corruption was never caught");
    }

    #[test]
    fn index_diff_suite_passes_under_builtin_faults() {
        let cfg = tiny_chaos_config();
        let report = run_index_diff(&cfg);
        assert_eq!(report.cells.len(), 6, "three Type A + three Type B");
        for c in &report.cells {
            assert_eq!(c.divergent, 0, "answer divergence in {}", c.workload);
            assert_eq!(c.audit_divergent, 0, "audit divergence in {}", c.workload);
            assert_eq!(
                c.candidate_violations, 0,
                "index grew CS_M in {}",
                c.workload
            );
            assert_eq!(c.panics_indexed, c.panics_scanned, "{}", c.workload);
            assert!(c.index_replay_ok, "index rebuilt in {}", c.workload);
            assert_eq!(c.queries, 60);
            assert!(
                c.index_candidates <= c.scan_candidates,
                "index examined more candidates overall in {}",
                c.workload
            );
        }
        assert!(report.passed());
        // the plan's panics actually fired on both sides of the diff
        let panics: u64 = report.cells.iter().map(|c| c.panics_indexed).sum();
        assert!(panics > 0, "fault plan injected no panics");
        // the injected corruption was caught (identically, per cell above)
        let repaired: usize = report.cells.iter().map(|c| c.audit_total.repaired).sum();
        assert!(repaired > 0, "injected corruption was never caught");
        let json = report.to_json();
        assert!(json.contains("\"passed\": true"));
        assert!(json.contains("\"audit_divergent\": 0"));
        assert!(!json.contains(",\n  ]"), "no trailing comma");
    }

    #[test]
    fn repair_diff_suite_passes_under_builtin_faults() {
        let cfg = tiny_chaos_config();
        let report = run_repair_diff(&cfg);
        assert_eq!(report.cells.len(), 6, "three Type A + three Type B");
        for c in &report.cells {
            assert_eq!(c.divergent, 0, "answer divergence in {}", c.workload);
            assert_eq!(c.audit_divergent, 0, "audit divergence in {}", c.workload);
            assert_eq!(
                c.oracle_repair_activity, 0,
                "invalidate mode ran the repair path in {}",
                c.workload
            );
            assert_eq!(c.panics_repair, c.panics_oracle, "{}", c.workload);
            assert_eq!(c.quarantined_repair, 0, "{}", c.workload);
            assert_eq!(c.queries, 60);
        }
        assert!(report.passed());
        // the diff is vacuous unless the repair path actually preserved
        // entries invalidation would have discarded
        assert!(
            report.total_invalidations_avoided() > 0,
            "repair mode never avoided an invalidation"
        );
        // the plan's panics actually fired on both sides of the diff
        let panics: u64 = report.cells.iter().map(|c| c.panics_repair).sum();
        assert!(panics > 0, "fault plan injected no panics");
        // the injected corruption was caught (identically, per cell above)
        let repaired: usize = report.cells.iter().map(|c| c.audit_total.repaired).sum();
        assert!(repaired > 0, "injected corruption was never caught");
        let json = report.to_json();
        assert!(json.contains("\"passed\": true"));
        assert!(json.contains("\"total_invalidations_avoided\""));
        assert!(json.contains("\"repair_fallbacks\""));
        assert!(!json.contains(",\n  ]"), "no trailing comma");
    }

    #[test]
    fn fault_free_plan_is_all_exact() {
        let mut cfg = tiny_chaos_config();
        cfg.fault_plan = FaultPlan::none();
        let dataset = build_dataset(&cfg.scale);
        let plan = build_plan(&cfg.scale);
        let w = &build_type_a_workloads(&dataset, &cfg.scale)[0];
        let cell = run_chaos_cell(&dataset, w, &plan, &cfg);
        assert_eq!(cell.divergent, 0);
        assert_eq!(cell.panics_recovered, 0);
        assert_eq!(cell.exact + cell.degraded, cell.queries);
        assert!(cell.passed());
    }

    #[test]
    fn report_json_shape() {
        let report = ChaosReport {
            fault_plan: "panic-query@1".into(),
            deadline_ms: 250,
            cells: vec![ChaosCell {
                workload: "ZZ".into(),
                queries: 10,
                updates: 4,
                exact: 9,
                degraded: 1,
                divergent: 0,
                max_overrun: 0.5,
                audits: 2,
                audit_total: AuditReport {
                    sampled: 8,
                    clean: 7,
                    repaired: 1,
                    evicted: 0,
                },
                quarantined_final: 0,
                panics_recovered: 1,
                latency: HistogramSnapshot::default(),
                stages: StageSpans::default(),
                health: HealthSnapshot::default(),
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"passed\": true"));
        assert!(json.contains("\"workload\": \"ZZ\""));
        assert!(json.contains("\"audit_repaired\": 1"));
        assert!(json.contains("\"latency_us\": {\"count\": 0"));
        assert!(json.contains("\"stage_nanos\": {\"prefilter\": 0"));
        assert!(!json.contains(",\n  ]"), "no trailing comma");
    }
}
