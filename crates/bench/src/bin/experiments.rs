//! Experiment runner — regenerates every figure of the GC+ paper.
//!
//! ```text
//! experiments <command> [--scale small|medium|paper]
//!
//! commands:
//!   fig4-typea   query-time speedups, Type A workloads (Fig 4 left)
//!   fig4-typeb   query-time speedups, Type B workloads (Fig 4 right)
//!   fig5         sub-iso test-count speedups (Fig 5)
//!   fig6         avg time + overhead breakdown (Fig 6)
//!   insights     §7.2 hit-type statistics (ZU vs UU etc.)
//!   dataset      print synthetic-AIDS statistics vs the published moments
//!   ablation     extensions: EVI vs CON vs CON-R (§8 retrospective
//!                validation) and full-scan vs updatable-FTV-filter CS_M
//!   bench-subiso candidate-scan microbench: legacy (pre-CSR) vs CSR vs
//!                CSR+prefilter vs CSR+prefilter+parallel; writes
//!                BENCH_subiso.json (use --quick for a CI smoke run,
//!                --out PATH to redirect the artifact)
//!   chaos        fault-injection suite: replays every workload under a
//!                deterministic fault plan (override with GC_FAULT_PLAN)
//!                against a fault-free oracle; writes CHAOS_report.json
//!                and exits non-zero on silent divergence, deadline
//!                overrun > 2x, or leftover quarantined entries; with
//!                --index-diff, replays the same pinned fault plan
//!                against BOTH candidate sources (postings-index default
//!                vs paper full scan) side by side, writes
//!                CHAOS_indexdiff.json and exits non-zero on any answer
//!                or audit divergence between the two; with
//!                --repair-diff, replays the same pinned fault plan
//!                against BOTH maintenance modes (delta-repair default
//!                vs paper invalidate-only) side by side, writes
//!                CHAOS_repairdiff.json and exits non-zero on any answer
//!                or audit divergence between the two; with
//!                --net, drives the real loopback TCP server instead: a
//!                Zipf storm of concurrent clients under dropped
//!                connections, delayed frames, a stalled shard and a
//!                twice-panicking shard (failover + audited rejoin)
//!   all          everything above (except bench-subiso and chaos)
//! ```

use std::time::Instant;

use gc_bench::report::{f1, f2, pct, spx, Table};
use gc_bench::{
    build_all_workloads, build_dataset, build_plan, build_type_a_workloads, build_type_b_workloads,
    run_fig4, run_fig5, run_fig6, run_insights, Scale,
};
use gc_graph::stats::DatasetStats;
use gc_subiso::Algorithm;
use gc_telemetry::{HistogramSnapshot, StageSpans};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig4-typea|fig4-typeb|fig5|fig6|insights|dataset|ablation|bench-subiso|chaos|all> \
         [--scale small|medium|paper] [--quick] [--net] [--index-diff] [--repair-diff] [--out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    const COMMANDS: [&str; 10] = [
        "fig4-typea",
        "fig4-typeb",
        "fig5",
        "fig6",
        "insights",
        "dataset",
        "ablation",
        "bench-subiso",
        "chaos",
        "all",
    ];
    if !COMMANDS.contains(&command.as_str()) {
        eprintln!("unknown command '{command}'");
        usage();
    }
    let mut scale = Scale::medium();
    let mut quick = false;
    let mut net = false;
    let mut index_diff = false;
    let mut repair_diff = false;
    let mut out_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage());
                scale = Scale::parse(v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--quick" => quick = true,
            "--net" => net = true,
            "--index-diff" => index_diff = true,
            "--repair-diff" => repair_diff = true,
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
        i += 1;
    }
    let out_path = out_path.unwrap_or_else(|| {
        String::from(match (command.as_str(), index_diff, repair_diff) {
            ("chaos", true, _) => "CHAOS_indexdiff.json",
            ("chaos", false, true) => "CHAOS_repairdiff.json",
            ("chaos", false, false) => "CHAOS_report.json",
            _ => "BENCH_subiso.json",
        })
    });

    if command == "bench-subiso" {
        bench_subiso(quick, &out_path);
        return;
    }
    if command == "chaos" {
        if net {
            net_chaos(scale, &out_path);
        } else if index_diff {
            index_diff_chaos(scale, &out_path);
        } else if repair_diff {
            repair_diff_chaos(scale, &out_path);
        } else {
            chaos(scale, &out_path);
        }
        return;
    }

    let t0 = Instant::now();
    println!(
        "# GC+ experiments — scale: {} graphs, {} queries\n",
        scale.dataset_graphs, scale.num_queries
    );
    let dataset = build_dataset(&scale);
    let plan = build_plan(&scale);
    println!(
        "dataset built in {:.1}s; change plan: {} ops\n",
        t0.elapsed().as_secs_f64(),
        plan.total_ops()
    );

    match command.as_str() {
        "fig4-typea" => fig4(&dataset, &scale, &plan, true),
        "fig4-typeb" => fig4(&dataset, &scale, &plan, false),
        "fig5" => fig5(&dataset, &scale, &plan),
        "fig6" => fig6(&dataset, &scale, &plan),
        "insights" => insights(&dataset, &scale, &plan),
        "dataset" => dataset_stats(&dataset),
        "ablation" => ablation(&dataset, &scale, &plan),
        "all" => {
            dataset_stats(&dataset);
            fig4(&dataset, &scale, &plan, true);
            fig4(&dataset, &scale, &plan, false);
            fig5(&dataset, &scale, &plan);
            fig6(&dataset, &scale, &plan);
            insights(&dataset, &scale, &plan);
            ablation(&dataset, &scale, &plan);
        }
        _ => usage(),
    }
    println!("\ntotal wall time: {:.1}s", t0.elapsed().as_secs_f64());
}

fn bench_subiso(quick: bool, out_path: &str) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "# Method M candidate-scan microbench ({} mode, {} worker thread(s))\n",
        if quick { "quick" } else { "full" },
        threads
    );
    let result = gc_bench::run_subiso_bench(quick, threads);
    let mut t = Table::new(
        "Candidate-scan microbench: legacy (pre-CSR) vs CSR vs postings index",
        &[
            "configuration",
            "total s",
            "candidates",
            "tests",
            "prefilter skips",
            "speedup vs legacy",
        ],
    );
    let legacy_secs = result.measurements[0].total_secs;
    for m in &result.measurements {
        t.row(vec![
            m.config.to_string(),
            format!("{:.4}", m.total_secs),
            m.candidates.to_string(),
            m.tests.to_string(),
            m.prefilter_skips.to_string(),
            spx(legacy_secs / m.total_secs.max(1e-12)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "headline: serial {:.2}x, best {:.2}x over the pre-CSR serial scan; \
         postings index {:.2}x vs the prefiltered CSR scan",
        result.speedup_serial, result.speedup_best, result.speedup_index_vs_prefilter
    );
    if let Err(e) = std::fs::write(out_path, result.to_json()) {
        eprintln!("cannot write bench artifact '{out_path}': {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}

fn chaos(scale: Scale, out_path: &str) {
    let mut cfg = gc_bench::ChaosConfig::new(scale);
    match gc_core::FaultPlan::from_env() {
        Ok(Some(plan)) => cfg.fault_plan = plan,
        Ok(None) => {}
        Err(e) => {
            eprintln!("invalid GC_FAULT_PLAN: {e}");
            std::process::exit(2);
        }
    }
    println!(
        "# Chaos suite — {} graphs, {} queries/workload, deadline {} ms\nfault plan: {}\n",
        cfg.scale.dataset_graphs,
        cfg.scale.num_queries,
        cfg.deadline.as_millis(),
        cfg.fault_plan
    );
    let t0 = Instant::now();
    let report = gc_bench::run_chaos(&cfg);
    let mut t = Table::new(
        "Chaos verdicts: faulted GC+ vs fault-free oracle",
        &[
            "workload",
            "queries",
            "updates",
            "exact",
            "degraded",
            "divergent",
            "max deadline ratio",
            "p99 ms",
            "panics contained",
            "audit repairs",
            "quarantined at end",
            "verdict",
        ],
    );
    for c in &report.cells {
        t.row(vec![
            c.workload.clone(),
            c.queries.to_string(),
            c.updates.to_string(),
            c.exact.to_string(),
            c.degraded.to_string(),
            c.divergent.to_string(),
            f2(c.max_overrun),
            f2(c.latency.p99() as f64 / 1000.0),
            c.panics_recovered.to_string(),
            c.audit_total.repaired.to_string(),
            c.quarantined_final.to_string(),
            if c.passed() { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    println!("{}", t.render());

    // fold the per-cell telemetry into suite-wide health + tail latency
    let mut health = gc_core::HealthSnapshot::default();
    let mut latency = HistogramSnapshot::default();
    let mut stages = StageSpans::default();
    for c in &report.cells {
        health.merge(&c.health);
        latency.merge(&c.latency);
        stages.merge(&c.stages);
    }
    println!(
        "health: {} panics contained, {} entries quarantined, {} degraded queries, \
         {} audit repairs, {} audit evictions",
        health.panics_recovered,
        health.quarantined_entries,
        health.degraded_queries,
        health.audit_repairs,
        health.audit_evictions
    );
    println!(
        "latency (faulted side): p50 {} µs, p95 {} µs, p99 {} µs, max {} µs over {} queries",
        latency.p50(),
        latency.p95(),
        latency.p99(),
        latency.max(),
        latency.count
    );
    print_stages(&stages);
    println!("wall time: {:.1}s", t0.elapsed().as_secs_f64());
    if let Err(e) = std::fs::write(out_path, report.to_json()) {
        eprintln!("cannot write chaos artifact '{out_path}': {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    if !report.passed() {
        eprintln!(
            "chaos suite FAILED: silent divergence, deadline overrun, or leftover quarantine"
        );
        std::process::exit(1);
    }
}

fn index_diff_chaos(scale: Scale, out_path: &str) {
    let mut cfg = gc_bench::ChaosConfig::new(scale);
    match gc_core::FaultPlan::from_env() {
        Ok(Some(plan)) => cfg.fault_plan = plan,
        Ok(None) => {}
        Err(e) => {
            eprintln!("invalid GC_FAULT_PLAN: {e}");
            std::process::exit(2);
        }
    }
    println!(
        "# Candidate-source differential chaos — {} graphs, {} queries/workload\n\
         postings-index default vs paper full scan, both under fault plan: {}\n",
        cfg.scale.dataset_graphs, cfg.scale.num_queries, cfg.fault_plan
    );
    let t0 = Instant::now();
    let report = gc_bench::run_index_diff(&cfg);
    let mut t = Table::new(
        "Index-diff verdicts: index-backed vs scan-backed under identical faults",
        &[
            "workload",
            "queries",
            "updates",
            "exact",
            "degraded",
            "divergent",
            "audit diverg.",
            "cand. index",
            "cand. scan",
            "panics idx/scan",
            "verdict",
        ],
    );
    for c in &report.cells {
        t.row(vec![
            c.workload.clone(),
            c.queries.to_string(),
            c.updates.to_string(),
            c.exact.to_string(),
            c.degraded.to_string(),
            c.divergent.to_string(),
            c.audit_divergent.to_string(),
            c.index_candidates.to_string(),
            c.scan_candidates.to_string(),
            format!("{}/{}", c.panics_indexed, c.panics_scanned),
            if c.passed() { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    println!("{}", t.render());
    let (idx, scan): (u64, u64) = report.cells.iter().fold((0, 0), |(a, b), c| {
        (a + c.index_candidates, b + c.scan_candidates)
    });
    println!(
        "candidate work: index-backed examined {} candidates vs {} for the full scan \
         ({:.1}% of CS_M pruned before any sub-iso test)",
        idx,
        scan,
        if scan > 0 {
            (scan - scan.min(idx)) as f64 / scan as f64 * 100.0
        } else {
            0.0
        }
    );
    println!("wall time: {:.1}s", t0.elapsed().as_secs_f64());
    if let Err(e) = std::fs::write(out_path, report.to_json()) {
        eprintln!("cannot write index-diff artifact '{out_path}': {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    if !report.passed() {
        eprintln!(
            "index-diff FAILED: answer or audit divergence between the candidate sources, \
             an index that grew CS_M, mismatched panic containment, leftover quarantine, \
             or a rebuilt (non-incremental) index"
        );
        std::process::exit(1);
    }
}

fn repair_diff_chaos(scale: Scale, out_path: &str) {
    let mut cfg = gc_bench::ChaosConfig::new(scale);
    match gc_core::FaultPlan::from_env() {
        Ok(Some(plan)) => cfg.fault_plan = plan,
        Ok(None) => {}
        Err(e) => {
            eprintln!("invalid GC_FAULT_PLAN: {e}");
            std::process::exit(2);
        }
    }
    println!(
        "# Maintenance-mode differential chaos — {} graphs, {} queries/workload\n\
         delta-repair default vs invalidate-only oracle, both under fault plan: {}\n",
        cfg.scale.dataset_graphs, cfg.scale.num_queries, cfg.fault_plan
    );
    let t0 = Instant::now();
    let report = gc_bench::run_repair_diff(&cfg);
    let mut t = Table::new(
        "Repair-diff verdicts: delta-repair vs invalidate-only under identical faults",
        &[
            "workload",
            "queries",
            "updates",
            "exact",
            "degraded",
            "divergent",
            "audit diverg.",
            "repairs",
            "inval. avoided",
            "fallbacks",
            "maint. ms",
            "panics rep/inv",
            "verdict",
        ],
    );
    for c in &report.cells {
        t.row(vec![
            c.workload.clone(),
            c.queries.to_string(),
            c.updates.to_string(),
            c.exact.to_string(),
            c.degraded.to_string(),
            c.divergent.to_string(),
            c.audit_divergent.to_string(),
            c.repairs_applied.to_string(),
            c.invalidations_avoided.to_string(),
            c.repair_fallbacks.to_string(),
            f2(c.repair_nanos as f64 / 1e6),
            format!("{}/{}", c.panics_repair, c.panics_oracle),
            if c.passed() { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    println!("{}", t.render());
    let (repairs, avoided, fallbacks) = report.cells.iter().fold((0u64, 0u64, 0u64), |acc, c| {
        (
            acc.0 + c.repairs_applied,
            acc.1 + c.invalidations_avoided,
            acc.2 + c.repair_fallbacks,
        )
    });
    println!(
        "maintenance work: {} validity bits spliced, {} invalidations avoided, \
         {} budget fallbacks across the suite",
        repairs, avoided, fallbacks
    );
    println!("wall time: {:.1}s", t0.elapsed().as_secs_f64());
    if let Err(e) = std::fs::write(out_path, report.to_json()) {
        eprintln!("cannot write repair-diff artifact '{out_path}': {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    if !report.passed() {
        eprintln!(
            "repair-diff FAILED: answer or audit divergence between the maintenance modes, \
             repair activity on the invalidate-only oracle, mismatched panic containment, \
             or leftover quarantine"
        );
        std::process::exit(1);
    }
    if report.total_invalidations_avoided() == 0 {
        eprintln!(
            "repair-diff FAILED: the repair path never avoided an invalidation — \
             the differential proved nothing at this scale/plan"
        );
        std::process::exit(1);
    }
}

fn net_chaos(scale: Scale, out_path: &str) {
    let mut cfg = gc_bench::NetChaosConfig::new(scale);
    match gc_core::FaultPlan::from_env() {
        Ok(Some(plan)) => cfg.fault_plan = plan,
        Ok(None) => {}
        Err(e) => {
            eprintln!("invalid GC_FAULT_PLAN: {e}");
            std::process::exit(2);
        }
    }
    println!(
        "# Networked chaos — {} shards, {} clients x {} queries/storm, deadline {} ms\nfault plan: {}\n",
        cfg.shards,
        cfg.clients,
        cfg.queries_per_client,
        cfg.deadline.as_millis(),
        cfg.fault_plan
    );
    let t0 = Instant::now();
    let report = gc_bench::run_net_chaos(&cfg);
    let mut t = Table::new(
        "Net chaos verdicts: loopback server vs fault-free oracle",
        &[
            "phase",
            "requests",
            "exact",
            "degraded",
            "divergent",
            "errors",
            "baseline hits",
            "retries",
            "max deadline ratio",
            "p95 ms",
            "p99 ms",
            "hung",
        ],
    );
    for (name, s) in [("storm 1", &report.storm1), ("storm 2", &report.storm2)] {
        t.row(vec![
            name.to_string(),
            s.requests.to_string(),
            s.exact.to_string(),
            s.degraded.to_string(),
            s.divergent.to_string(),
            s.errors.to_string(),
            s.baseline_hits.to_string(),
            s.retries.to_string(),
            f2(s.max_overrun),
            f2(s.latency.p95() as f64 / 1000.0),
            f2(s.latency.p99() as f64 / 1000.0),
            s.hung.to_string(),
        ]);
    }
    println!("{}", t.render());

    let mut t = Table::new(
        "Shed rate vs offered load (post-audit ramp, client retries off)",
        &[
            "clients",
            "offered",
            "completed",
            "shed",
            "shed rate",
            "errors",
        ],
    );
    for l in &report.ramp {
        t.row(vec![
            l.clients.to_string(),
            l.offered.to_string(),
            l.completed.to_string(),
            l.shed.to_string(),
            pct(l.shed_rate()),
            l.errors.to_string(),
        ]);
    }
    println!("{}", t.render());

    let mut t = Table::new(
        "Per-shard cache counters (live stats scrape)",
        &[
            "shard",
            "hits",
            "misses",
            "evictions",
            "quarantined",
            "shed",
        ],
    );
    for (i, s) in report.stats.shards.iter().enumerate() {
        t.row(vec![
            i.to_string(),
            s.hits.to_string(),
            s.misses.to_string(),
            s.evictions.to_string(),
            s.quarantined.to_string(),
            s.shed.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "stats scrape: {} queries, {} updates; server latency p50 {} µs, p95 {} µs, \
         p99 {} µs, max {} µs",
        report.stats.queries,
        report.stats.updates,
        report.stats.latency.p50(),
        report.stats.latency.p95(),
        report.stats.latency.p99(),
        report.stats.latency.max()
    );
    print_stages(&report.stats.stages);
    println!(
        "reconciliation: per-shard hits+misses vs {} ledger-executed queries -> {}",
        report.executed_queries,
        if report.reconciled() {
            "ok"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "updates: {} applied, {} re-issued after provably-unexecuted drops, {} failed",
        report.updates_applied, report.update_reissues, report.update_failures
    );
    println!(
        "audit: {} sampled, {} repaired, {} evicted (second pass: {} repaired, {} evicted)",
        report.audit.sampled,
        report.audit.repaired,
        report.audit.evicted,
        report.audit_after.repaired,
        report.audit_after.evicted
    );
    println!(
        "health: {} panics contained, {} failovers, {} baseline serves, {} shed, {} degraded",
        report.health.panics_recovered,
        report.health.shard_failovers,
        report.health.baseline_served,
        report.health.load_shed,
        report.health.degraded_queries
    );
    println!("wall time: {:.1}s", t0.elapsed().as_secs_f64());
    if let Err(e) = std::fs::write(out_path, report.to_json()) {
        eprintln!("cannot write chaos artifact '{out_path}': {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    let metrics_path = "METRICS_report.json";
    if let Err(e) = std::fs::write(metrics_path, report.metrics_json()) {
        eprintln!("cannot write metrics artifact '{metrics_path}': {e}");
        std::process::exit(1);
    }
    println!("wrote {metrics_path}");
    if !report.passed() {
        eprintln!(
            "net chaos FAILED: silent divergence, hung request, missing failover coverage, \
             a shard left unhealthy after audit, or a stats scrape that does not reconcile \
             with the request ledger"
        );
        std::process::exit(1);
    }
}

/// Prints the pipeline-stage time breakdown of a [`StageSpans`] total.
fn print_stages(stages: &StageSpans) {
    let total = stages.total();
    if total == 0 {
        return;
    }
    let parts: Vec<String> = stages
        .iter()
        .filter(|(_, nanos)| *nanos > 0)
        .map(|(stage, nanos)| {
            format!(
                "{} {:.1} ms ({:.0}%)",
                stage.name(),
                nanos as f64 / 1e6,
                nanos as f64 / total as f64 * 100.0
            )
        })
        .collect();
    println!("pipeline stages: {}", parts.join(", "));
}

fn dataset_stats(dataset: &[gc_graph::LabeledGraph]) {
    let stats = DatasetStats::compute(dataset);
    println!(
        "### Synthetic AIDS dataset (paper: ⌀45 vertices σ22 max 245; ⌀47 edges σ23 max 250)\n"
    );
    println!("{stats}\n");
}

fn fig4(
    dataset: &[gc_graph::LabeledGraph],
    scale: &Scale,
    plan: &gc_dataset::ChangePlan,
    type_a: bool,
) {
    let workloads = if type_a {
        build_type_a_workloads(dataset, scale)
    } else {
        build_type_b_workloads(dataset, scale)
    };
    let label = if type_a { "Type A" } else { "Type B" };
    let rows = run_fig4(dataset, &workloads, plan, &Algorithm::ALL);
    let mut t = Table::new(
        &format!("Figure 4 ({label}): GC+ speedup in query time"),
        &[
            "method",
            "workload",
            "base avg ms",
            "EVI speedup",
            "CON speedup",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.method.to_string(),
            r.workload.clone(),
            f2(r.base_ms),
            spx(r.evi_speedup),
            spx(r.con_speedup),
        ]);
    }
    println!("{}", t.render());
}

fn fig5(dataset: &[gc_graph::LabeledGraph], scale: &Scale, plan: &gc_dataset::ChangePlan) {
    let workloads = build_all_workloads(dataset, scale);
    let rows = run_fig5(dataset, &workloads, plan);
    let mut t = Table::new(
        "Figure 5: GC+ speedup in number of sub-iso tests (Method-M independent)",
        &["workload", "base avg tests", "EVI speedup", "CON speedup"],
    );
    for r in &rows {
        t.row(vec![
            r.workload.clone(),
            f1(r.base_tests),
            spx(r.evi_speedup),
            spx(r.con_speedup),
        ]);
    }
    println!("{}", t.render());
}

fn fig6(dataset: &[gc_graph::LabeledGraph], scale: &Scale, plan: &gc_dataset::ChangePlan) {
    let workloads = build_all_workloads(dataset, scale);
    let rows = run_fig6(dataset, &workloads, plan);
    let mut t = Table::new(
        "Figure 6: average execution time and overhead per query (Method M = VF2)",
        &[
            "workload",
            "VF2 ms",
            "EVI ms",
            "EVI ovh µs",
            "CON ms",
            "CON ovh µs",
            "validation share of CON ovh",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.workload.clone(),
            f2(r.vf2_ms),
            f2(r.evi_ms),
            f1(r.evi_overhead_ms * 1000.0),
            f2(r.con_ms),
            f1(r.con_overhead_ms * 1000.0),
            pct(r.con_validation_share),
        ]);
    }
    println!("{}", t.render());
}

fn ablation(dataset: &[gc_graph::LabeledGraph], scale: &Scale, plan: &gc_dataset::ChangePlan) {
    let workloads = gc_bench::build_type_a_workloads(dataset, scale);
    let w = &workloads[0]; // ZZ

    for (title, oscillating) in [
        (
            "Ablation: cache models under the paper's change plan (ZZ workload)",
            false,
        ),
        (
            "Ablation: cache models under oscillating churn (UR+UA of the same edge)",
            true,
        ),
    ] {
        let rows = gc_bench::run_model_ablation(dataset, w, plan, oscillating);
        let mut t = Table::new(title, &["model", "avg tests/query", "avg query ms"]);
        for r in &rows {
            t.row(vec![
                r.model.to_string(),
                f1(r.avg_tests),
                f2(r.avg_query_ms),
            ]);
        }
        println!("{}", t.render());
    }

    let rows = gc_bench::run_ftv_ablation(dataset, w, plan);
    let mut t = Table::new(
        "Ablation: candidate-set source (updatable FTV label/size filter)",
        &["configuration", "avg tests/query", "avg query ms"],
    );
    for r in &rows {
        t.row(vec![
            r.config.to_string(),
            f1(r.avg_tests),
            f2(r.avg_query_ms),
        ]);
    }
    println!("{}", t.render());
}

fn insights(dataset: &[gc_graph::LabeledGraph], scale: &Scale, plan: &gc_dataset::ChangePlan) {
    let workloads = build_all_workloads(dataset, scale);
    let rows = run_insights(dataset, &workloads, plan);
    let mut t = Table::new(
        "§7.2 insights: hit-type statistics under CON",
        &[
            "workload",
            "exact-match queries",
            "exact shortcuts",
            "empty shortcuts",
            "zero-test queries",
            "direct hits",
            "exclusion hits",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.workload.clone(),
            r.exact_match_queries.to_string(),
            r.exact_shortcuts.to_string(),
            r.empty_shortcuts.to_string(),
            r.zero_test_queries.to_string(),
            r.direct_hits.to_string(),
            r.exclusion_hits.to_string(),
        ]);
    }
    println!("{}", t.render());
}
