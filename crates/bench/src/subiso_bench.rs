//! The Method M candidate-scan micro-benchmark.
//!
//! Measures the end-to-end cost of scanning an AIDS-like candidate set with
//! one query — the inner loop behind every figure of the paper — across
//! four configurations:
//!
//! 1. **legacy** — the pre-CSR hot path, reconstructed faithfully in
//!    [`legacy`]: `Vec<Vec<VertexId>>` pointer-chasing adjacency, VF2
//!    without any pre-filter, sequential scan. This is the baseline the
//!    CSR overhaul is judged against;
//! 2. **csr-serial** — today's CSR [`gc_graph::LabeledGraph`] with the
//!    signature pre-filter disabled (isolates the layout win);
//! 3. **csr-prefilter** — CSR plus the O(1) signature pre-filter
//!    (isolates the filter-then-verify win, reports `prefilter_skips`);
//! 4. **csr-parallel** — CSR + pre-filter + the scoped-thread parallel
//!    scan (adds whatever the host's core count offers; on a single-core
//!    host it degrades gracefully to ≈ csr-prefilter);
//! 5. **postings-index** — the [`gc_dataset::LabelIndex`] postings-bitset
//!    candidate source (the system default): per-label bitsets
//!    intersected over the query's label multiset with the signature
//!    pre-filter folded in, then a serial unfiltered scan of just the
//!    surviving candidates. Measured against csr-prefilter, this is the
//!    index-vs-scan ablation the default configuration rests on.
//!
//! All configurations are checked to produce identical answer sets
//! before any timing is trusted; the full-scan configurations must also
//! agree on test counts, while the index must examine exactly the
//! pre-filter survivors. Results serialize to `BENCH_subiso.json`
//! so successive PRs accumulate a perf trajectory.

use std::time::Instant;

use gc_dataset::aids::{synthetic_aids, AidsConfig};
use gc_dataset::{ChangeLog, GraphStore, LabelIndex};
use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::{Algorithm, MethodM, QueryKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pre-CSR graph representation and scan, kept as a measurement
/// baseline. This is a faithful port of the seed's hot path: per-vertex
/// heap-allocated sorted adjacency vectors, binary-search `has_edge`,
/// vanilla-VF2 connectivity-ordered backtracking, no pre-filtering.
pub mod legacy {
    /// Pre-CSR adjacency-list graph.
    pub struct LegacyGraph {
        labels: Vec<u16>,
        adj: Vec<Vec<u32>>,
        edge_count: usize,
    }

    impl LegacyGraph {
        /// Converts from the CSR representation.
        pub fn from_csr(g: &gc_graph::LabeledGraph) -> Self {
            let mut adj: Vec<Vec<u32>> = vec![Vec::new(); g.vertex_count()];
            for (u, v) in g.edges() {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
            for row in &mut adj {
                row.sort_unstable();
            }
            LegacyGraph {
                labels: g.labels().to_vec(),
                adj,
                edge_count: g.edge_count(),
            }
        }

        fn vertex_count(&self) -> usize {
            self.labels.len()
        }

        fn neighbors(&self, v: u32) -> &[u32] {
            &self.adj[v as usize]
        }

        fn has_edge(&self, u: u32, v: u32) -> bool {
            self.adj[u as usize].binary_search(&v).is_ok()
        }
    }

    const UNMAPPED: u32 = u32::MAX;

    struct Vf2<'g> {
        pattern: &'g LegacyGraph,
        target: &'g LegacyGraph,
        order: Vec<u32>,
        map: Vec<u32>,
        used: Vec<bool>,
        t_pat: Vec<u32>,
        t_tgt: Vec<u32>,
    }

    /// Vanilla-VF2 decision `pattern ⊆ target` on the legacy layout.
    pub fn contains(pattern: &LegacyGraph, target: &LegacyGraph) -> bool {
        if pattern.vertex_count() > target.vertex_count() || pattern.edge_count > target.edge_count
        {
            return false;
        }
        let order = connectivity_order(pattern);
        let mut s = Vf2 {
            pattern,
            target,
            order,
            map: vec![UNMAPPED; pattern.vertex_count()],
            used: vec![false; target.vertex_count()],
            t_pat: vec![0; pattern.vertex_count()],
            t_tgt: vec![0; target.vertex_count()],
        };
        s.search(0)
    }

    fn connectivity_order(pattern: &LegacyGraph) -> Vec<u32> {
        let n = pattern.vertex_count();
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        let mut adjacent = vec![false; n];
        for _ in 0..n {
            let next = (0..n)
                .filter(|&i| !placed[i] && adjacent[i])
                .chain((0..n).filter(|&i| !placed[i]))
                .next()
                .expect("some vertex remains");
            placed[next] = true;
            order.push(next as u32);
            for &w in pattern.neighbors(next as u32) {
                adjacent[w as usize] = true;
            }
        }
        order
    }

    impl Vf2<'_> {
        fn search(&mut self, depth: usize) -> bool {
            if depth == self.order.len() {
                return true;
            }
            let u = self.order[depth];
            let anchor = self
                .pattern
                .neighbors(u)
                .iter()
                .find(|&&w| self.map[w as usize] != UNMAPPED)
                .map(|&w| self.map[w as usize]);
            match anchor {
                Some(img) => {
                    let target = self.target;
                    for &v in target.neighbors(img) {
                        if self.try_extend(u, v, depth) {
                            return true;
                        }
                    }
                }
                None => {
                    for v in 0..self.target.vertex_count() as u32 {
                        if self.try_extend(u, v, depth) {
                            return true;
                        }
                    }
                }
            }
            false
        }

        fn try_extend(&mut self, u: u32, v: u32, depth: usize) -> bool {
            if !self.feasible(u, v) {
                return false;
            }
            self.assign(u, v);
            if self.search(depth + 1) {
                return true;
            }
            self.unassign(u, v);
            false
        }

        fn feasible(&self, u: u32, v: u32) -> bool {
            if self.used[v as usize]
                || self.pattern.labels[u as usize] != self.target.labels[v as usize]
            {
                return false;
            }
            for &w in self.pattern.neighbors(u) {
                let img = self.map[w as usize];
                if img != UNMAPPED && !self.target.has_edge(v, img) {
                    return false;
                }
            }
            let mut un_pat = 0u32;
            let mut term_pat = 0u32;
            for &w in self.pattern.neighbors(u) {
                if self.map[w as usize] == UNMAPPED {
                    un_pat += 1;
                    if self.t_pat[w as usize] > 0 {
                        term_pat += 1;
                    }
                }
            }
            let mut un_tgt = 0u32;
            let mut term_tgt = 0u32;
            for &z in self.target.neighbors(v) {
                if !self.used[z as usize] {
                    un_tgt += 1;
                    if self.t_tgt[z as usize] > 0 {
                        term_tgt += 1;
                    }
                }
            }
            un_pat <= un_tgt && term_pat <= term_tgt
        }

        fn assign(&mut self, u: u32, v: u32) {
            self.map[u as usize] = v;
            self.used[v as usize] = true;
            let (pattern, target) = (self.pattern, self.target);
            for &w in pattern.neighbors(u) {
                self.t_pat[w as usize] += 1;
            }
            for &z in target.neighbors(v) {
                self.t_tgt[z as usize] += 1;
            }
        }

        fn unassign(&mut self, u: u32, v: u32) {
            self.map[u as usize] = UNMAPPED;
            self.used[v as usize] = false;
            let (pattern, target) = (self.pattern, self.target);
            for &w in pattern.neighbors(u) {
                self.t_pat[w as usize] -= 1;
            }
            for &z in target.neighbors(v) {
                self.t_tgt[z as usize] -= 1;
            }
        }
    }
}

/// One configuration's aggregate measurement.
#[derive(Debug, Clone)]
pub struct ScanMeasurement {
    /// Configuration name.
    pub config: &'static str,
    /// Total scan wall time across all queries, seconds.
    pub total_secs: f64,
    /// Total matching (query, graph) pairs found (correctness witness).
    pub answers: u64,
    /// Sub-iso tests counted (candidates examined).
    pub tests: u64,
    /// Candidates decided by the signature pre-filter.
    pub prefilter_skips: u64,
    /// Candidates presented to the scan, summed over all queries — the
    /// full live set for the scan configurations, the postings-bitset
    /// intersection for the index configuration.
    pub candidates: u64,
}

/// The full micro-benchmark result.
#[derive(Debug, Clone)]
pub struct SubisoBenchResult {
    /// Dataset size used.
    pub dataset_graphs: usize,
    /// Number of queries scanned.
    pub queries: usize,
    /// Worker threads used by the parallel configuration.
    pub threads: usize,
    /// Per-configuration measurements, in the order documented above.
    pub measurements: Vec<ScanMeasurement>,
    /// `legacy / csr-prefilter` wall-time ratio.
    pub speedup_serial: f64,
    /// `legacy / csr-parallel` wall-time ratio (the headline number).
    pub speedup_best: f64,
    /// `csr-prefilter / postings-index` wall-time ratio — the acceptance
    /// gate for the index-backed default (≥ 1.0 means parity or better
    /// against the paper's prefiltered full scan).
    pub speedup_index_vs_prefilter: f64,
}

/// Builds the query pool: per paper size, a few BFS extractions from
/// Zipf-rank-selected source graphs.
fn build_queries(dataset: &[LabeledGraph], per_size: usize, seed: u64) -> Vec<LabeledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = gc_graph::Zipf::new(dataset.len(), 1.4);
    let mut queries = Vec::new();
    for &size in &gc_workload::PAPER_QUERY_SIZES {
        let mut produced = 0;
        let mut attempts = 0;
        while produced < per_size && attempts < per_size * 64 {
            attempts += 1;
            let src = &dataset[zipf.sample(&mut rng)];
            if src.vertex_count() == 0 {
                continue;
            }
            let start = rng.random_range(0..src.vertex_count() as u32);
            if let Some(q) = gc_graph::generate::bfs_extract(&mut rng, src, start, size) {
                queries.push(q);
                produced += 1;
            }
        }
    }
    queries
}

/// Runs the candidate-scan micro-benchmark.
///
/// `quick` shrinks the dataset/query pool for CI smoke runs; `threads`
/// configures the parallel variant (pass the host's core count).
pub fn run_subiso_bench(quick: bool, threads: usize) -> SubisoBenchResult {
    let (graphs, per_size) = if quick { (250, 2) } else { (1200, 4) };
    let dataset = synthetic_aids(&AidsConfig::scaled(graphs, 0xBE7C));
    let queries = build_queries(&dataset, per_size, 0x5CA7);
    let cands = BitSet::from_indices(0..dataset.len());
    let legacy_dataset: Vec<legacy::LegacyGraph> =
        dataset.iter().map(legacy::LegacyGraph::from_csr).collect();

    let mut measurements = Vec::new();

    // 1. legacy: pre-CSR layout, no pre-filter, sequential VF2
    {
        let legacy_queries: Vec<legacy::LegacyGraph> =
            queries.iter().map(legacy::LegacyGraph::from_csr).collect();
        let t = Instant::now();
        let mut answers = 0u64;
        let mut tests = 0u64;
        for q in &legacy_queries {
            for g in &legacy_dataset {
                tests += 1;
                if legacy::contains(q, g) {
                    answers += 1;
                }
            }
        }
        measurements.push(ScanMeasurement {
            config: "legacy (Vec<Vec> adjacency, serial, no prefilter)",
            total_secs: t.elapsed().as_secs_f64(),
            answers,
            tests,
            prefilter_skips: 0,
            candidates: tests,
        });
    }

    // 2..4: the CSR configurations share one runner
    let mut run_csr = |config: &'static str, method: MethodM| {
        let t = Instant::now();
        let mut answers = 0u64;
        let mut tests = 0u64;
        let mut skips = 0u64;
        let mut candidates = 0u64;
        for q in &queries {
            candidates += cands.count_ones() as u64;
            let r = method.run(q, QueryKind::Subgraph, &dataset, &cands);
            answers += r.answer.count_ones() as u64;
            tests += r.tests;
            skips += r.prefilter_skips;
        }
        measurements.push(ScanMeasurement {
            config,
            total_secs: t.elapsed().as_secs_f64(),
            answers,
            tests,
            prefilter_skips: skips,
            candidates,
        });
    };
    run_csr(
        "csr-serial (flat CSR, serial, no prefilter)",
        MethodM::new(Algorithm::Vf2).with_prefilter(false),
    );
    run_csr(
        "csr-prefilter (flat CSR, serial, signature prefilter)",
        MethodM::new(Algorithm::Vf2),
    );
    run_csr(
        "csr-parallel (flat CSR, parallel scan, signature prefilter)",
        MethodM::parallel(Algorithm::Vf2, threads),
    );

    // 5. postings-index: the LabelIndex candidate source with the
    // pre-filter folded in. Built once up front (its steady-state cost is
    // incremental log replay, measured elsewhere); the timed region is
    // what a query pays — postings intersection + scan of the survivors.
    {
        let store = GraphStore::from_graphs(dataset.clone());
        let log = ChangeLog::new();
        let idx = LabelIndex::build(&store, &log);
        let method = MethodM::new(Algorithm::Vf2).with_prefilter(false);
        let t = Instant::now();
        let mut answers = 0u64;
        let mut tests = 0u64;
        let mut candidates = 0u64;
        for q in &queries {
            let c = idx.subgraph_candidates(q);
            candidates += c.count_ones() as u64;
            let r = method.run(q, QueryKind::Subgraph, &store, &c);
            answers += r.answer.count_ones() as u64;
            tests += r.tests;
        }
        measurements.push(ScanMeasurement {
            config: "postings-index (label-index candidates, serial, filter folded)",
            total_secs: t.elapsed().as_secs_f64(),
            answers,
            tests,
            prefilter_skips: 0,
            candidates,
        });
    }

    // correctness: every configuration found the same matches; the
    // full-scan configurations examined every candidate, and the index
    // emitted exactly the pre-filter survivors
    let baseline = measurements[0].answers;
    for m in &measurements {
        assert_eq!(
            m.answers, baseline,
            "configuration '{}' diverged from the legacy scan",
            m.config
        );
    }
    for m in &measurements[..4] {
        assert_eq!(m.tests, measurements[0].tests);
        assert_eq!(m.candidates, measurements[0].candidates);
    }
    let index_m = &measurements[4];
    assert_eq!(
        index_m.tests, index_m.candidates,
        "the folded scan tests each index candidate exactly once"
    );
    assert_eq!(
        measurements[2].prefilter_skips,
        measurements[0].candidates - index_m.candidates,
        "index candidates must be exactly the pre-filter survivors"
    );

    let legacy_secs = measurements[0].total_secs;
    SubisoBenchResult {
        dataset_graphs: graphs,
        queries: queries.len(),
        threads,
        speedup_serial: legacy_secs / measurements[2].total_secs.max(1e-12),
        speedup_best: legacy_secs
            / measurements[2..4]
                .iter()
                .map(|m| m.total_secs)
                .fold(f64::INFINITY, f64::min)
                .max(1e-12),
        speedup_index_vs_prefilter: measurements[2].total_secs
            / measurements[4].total_secs.max(1e-12),
        measurements,
    }
}

impl SubisoBenchResult {
    /// Hand-rolled JSON serialization (no serde offline); stable key order
    /// so diffs between PRs stay readable.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset_graphs\": {},\n", self.dataset_graphs));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"speedup_serial_vs_legacy\": {:.3},\n",
            self.speedup_serial
        ));
        out.push_str(&format!(
            "  \"speedup_best_vs_legacy\": {:.3},\n",
            self.speedup_best
        ));
        out.push_str(&format!(
            "  \"speedup_index_vs_prefilter\": {:.3},\n",
            self.speedup_index_vs_prefilter
        ));
        // the index-vs-scan candidate accounting the default config
        // rests on, surfaced at the top level for the CI perf trajectory
        out.push_str(&format!(
            "  \"scan_candidates\": {},\n",
            self.measurements[0].candidates
        ));
        out.push_str(&format!(
            "  \"index_candidates\": {},\n",
            self.measurements[4].candidates
        ));
        out.push_str("  \"measurements\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"config\": \"{}\", \"total_secs\": {:.6}, \"answers\": {}, \"tests\": {}, \"prefilter_skips\": {}, \"candidates\": {}}}{}\n",
                m.config,
                m.total_secs,
                m.answers,
                m.tests,
                m.prefilter_skips,
                m.candidates,
                if i + 1 == self.measurements.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_scan_agrees_with_csr_method_m() {
        let dataset = synthetic_aids(&AidsConfig::scaled(40, 9));
        let legacy_dataset: Vec<legacy::LegacyGraph> =
            dataset.iter().map(legacy::LegacyGraph::from_csr).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let cands = BitSet::from_indices(0..dataset.len());
        let m = MethodM::new(Algorithm::Vf2);
        for i in 0..6 {
            let q = gc_graph::generate::bfs_extract(&mut rng, &dataset[i], 0, 4 + i)
                .expect("extractable");
            let lq = legacy::LegacyGraph::from_csr(&q);
            let modern = m.run(&q, QueryKind::Subgraph, &dataset, &cands);
            let legacy_hits: Vec<usize> = legacy_dataset
                .iter()
                .enumerate()
                .filter(|(_, g)| legacy::contains(&lq, g))
                .map(|(id, _)| id)
                .collect();
            assert_eq!(
                modern.answer.iter_ones().collect::<Vec<_>>(),
                legacy_hits,
                "query {i}"
            );
        }
    }

    #[test]
    fn quick_bench_runs_and_prefilter_fires() {
        let r = run_subiso_bench(true, 2);
        assert_eq!(r.measurements.len(), 5);
        assert!(
            r.measurements[2].prefilter_skips > 0,
            "signature pre-filter must reject candidates on the AIDS workload"
        );
        // the index source examined strictly fewer candidates than the
        // full scans (the prefilter fired, so survivors < live set)
        assert!(r.measurements[4].candidates < r.measurements[0].candidates);
        assert_eq!(r.measurements[4].tests, r.measurements[4].candidates);
        let json = r.to_json();
        assert!(json.contains("\"speedup_serial_vs_legacy\""));
        assert!(json.contains("\"speedup_index_vs_prefilter\""));
        assert!(json.contains("\"index_candidates\""));
        assert!(json.contains("\"scan_candidates\""));
        assert!(json.contains("csr-parallel"));
        assert!(json.contains("postings-index"));
    }
}
