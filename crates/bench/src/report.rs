//! Minimal markdown table rendering for the experiment harness — results
//! paste straight into EXPERIMENTS.md.

/// A markdown table under construction.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Renders github-flavored markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a speedup as `N.NNx`.
pub fn spx(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a ratio as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Figure X", &["workload", "speedup"]);
        t.row(vec!["ZZ".into(), spx(7.85)]);
        t.row(vec!["UU".into(), spx(5.13)]);
        let md = t.render();
        assert!(md.contains("### Figure X"));
        assert!(md.contains("| workload | speedup |"));
        assert!(md.contains("| ZZ | 7.85x |"));
        assert!(md.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f1(2.34), "2.3");
        assert_eq!(spx(7.849), "7.85x");
        assert_eq!(pct(0.0123), "1.23%");
    }
}
