//! Criterion micro-bench: the three Method M verifiers (VF2 / VF2+ / GQL)
//! on AIDS-like targets across the paper's query sizes — the per-test cost
//! that Figure 4's Method M axis is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_dataset::aids::{synthetic_aids, AidsConfig};
use gc_graph::generate::bfs_extract;
use gc_graph::LabeledGraph;
use gc_subiso::Algorithm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One extracted query per size against a pool of targets (the first
/// target is the source, so at least one test is positive).
fn cases(sizes: &[usize]) -> Vec<(usize, LabeledGraph, Vec<LabeledGraph>)> {
    let mut rng = StdRng::seed_from_u64(42);
    let targets = synthetic_aids(&AidsConfig::scaled(30, 7));
    sizes
        .iter()
        .map(|&size| {
            let q = loop {
                let start = rng.random_range(0..targets[0].vertex_count() as u32);
                if let Some(q) = bfs_extract(&mut rng, &targets[0], start, size) {
                    break q;
                }
            };
            (size, q, targets.clone())
        })
        .collect()
}

fn bench_subiso(c: &mut Criterion) {
    let mut group = c.benchmark_group("subiso_scan");
    group.sample_size(20);
    for (size, query, targets) in cases(&[4, 8, 12, 16, 20]) {
        for algo in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), size),
                &(query.clone(), targets.clone()),
                |b, (q, ts)| {
                    let m = algo.matcher();
                    b.iter(|| {
                        ts.iter()
                            .filter(|t| m.contains(std::hint::black_box(q), t))
                            .count()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_subiso);
criterion_main!(benches);
