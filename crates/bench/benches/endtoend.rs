//! Criterion end-to-end bench: a miniature Figure 4/5 pipeline — the same
//! workload replayed through cache-less Method M, GC+/EVI and GC+/CON,
//! with the dataset churning per a scaled change plan. The three
//! measurements side by side are the figure's bars in microcosm: expect
//! `VF2 > EVI > CON` per-iteration time.
//!
//! Also contains the policy ablation (HD vs PIN vs PINC vs LRU/LFU) that
//! DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_bench::{build_dataset, build_plan, build_type_a_workloads, Scale};
use gc_core::{baseline_execute, CacheModel, GcConfig, GraphCachePlus, Policy};
use gc_dataset::{GraphStore, PlanExecutor};
use gc_subiso::{Algorithm, MethodM};

fn tiny_scale() -> Scale {
    Scale {
        dataset_graphs: 60,
        num_queries: 80,
        positive_pool: 20,
        noanswer_pool: 5,
        seed: 1234,
    }
}

fn bench_models(c: &mut Criterion) {
    let scale = tiny_scale();
    let dataset = build_dataset(&scale);
    let plan = build_plan(&scale);
    let workload = build_type_a_workloads(&dataset, &scale).remove(0); // ZZ

    let mut group = c.benchmark_group("endtoend_zz_vf2plus");
    group.sample_size(10);

    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut store = GraphStore::from_graphs(dataset.clone());
            let mut log = gc_dataset::ChangeLog::new();
            let mut exec = PlanExecutor::new(plan.clone(), dataset.clone(), 7);
            let method = MethodM::new(Algorithm::Vf2Plus);
            let mut answered = 0usize;
            for (i, q) in workload.queries.iter().enumerate() {
                exec.apply_due(i, &mut store, &mut log);
                answered += baseline_execute(&store, &method, q, workload.kind)
                    .answer
                    .count_ones();
            }
            answered
        })
    });

    for model in [CacheModel::Evi, CacheModel::Con] {
        group.bench_with_input(
            BenchmarkId::new("gcplus", model.name()),
            &model,
            |b, &model| {
                b.iter(|| {
                    let config = GcConfig {
                        model,
                        method: MethodM::new(Algorithm::Vf2Plus),
                        ..GcConfig::default()
                    };
                    let mut gc = GraphCachePlus::new(config, dataset.clone());
                    let mut exec = PlanExecutor::new(plan.clone(), dataset.clone(), 7);
                    let mut answered = 0usize;
                    for (i, q) in workload.queries.iter().enumerate() {
                        gc.with_dataset(|store, log| exec.apply_due(i, store, log));
                        answered += gc.execute(q, workload.kind).answer.count_ones();
                    }
                    answered
                })
            },
        );
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let scale = tiny_scale();
    let dataset = build_dataset(&scale);
    let plan = build_plan(&scale);
    let workload = build_type_a_workloads(&dataset, &scale).remove(0);

    let mut group = c.benchmark_group("policy_ablation_con");
    group.sample_size(10);
    for policy in [
        Policy::Hybrid,
        Policy::Pin,
        Policy::Pinc,
        Policy::Lru,
        Policy::Lfu,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let config = GcConfig {
                        policy,
                        // tighten the cache so replacement actually runs
                        cache_capacity: 20,
                        window_capacity: 5,
                        method: MethodM::new(Algorithm::Vf2Plus),
                        ..GcConfig::default()
                    };
                    let mut gc = GraphCachePlus::new(config, dataset.clone());
                    let mut exec = PlanExecutor::new(plan.clone(), dataset.clone(), 7);
                    let mut tests = 0u64;
                    for (i, q) in workload.queries.iter().enumerate() {
                        gc.with_dataset(|store, log| exec.apply_due(i, store, log));
                        tests += gc.execute(q, workload.kind).metrics.subiso_tests;
                    }
                    tests
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_models, bench_policies);
criterion_main!(benches);
