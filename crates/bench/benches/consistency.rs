//! Criterion micro-bench backing the paper's Figure 6 discussion: the
//! CON-exclusive consistency machinery — Algorithm 1 (log analysis) and
//! Algorithm 2 (validity refresh over a full cache) — is claimed to cost
//! "less than 1% of CON overhead". This bench measures those code paths
//! directly, plus the EVI purge for contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_core::entry::CachedQuery;
use gc_core::validator::refresh_all;
use gc_dataset::{ChangeRecord, LogAnalyzer, OpType};
use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::QueryKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A batch of change records over `span` graph ids (paper batch: 20 ops).
fn records(n: usize, span: usize, seed: u64) -> Vec<ChangeRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let op = OpType::ALL[rng.random_range(0..4usize)];
            let graph_id = rng.random_range(0..span);
            match op {
                OpType::Ua | OpType::Ur => ChangeRecord::edge(
                    graph_id,
                    op,
                    rng.random_range(0..40),
                    rng.random_range(40..80),
                ),
                _ => ChangeRecord::structural(graph_id, op),
            }
        })
        .collect()
}

/// A full cache (120 entries = paper's cache 100 + window 20) of entries
/// with `span`-bit answer/validity sets.
fn full_cache(span: usize, seed: u64) -> Vec<CachedQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..120)
        .map(|_| {
            let graph = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]).expect("valid");
            let answer = BitSet::from_indices((0..span).filter(|_| rng.random::<f64>() < 0.2));
            CachedQuery::new(graph, QueryKind::Subgraph, answer, span, 0)
        })
        .collect()
}

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_log_analysis");
    for &ops in &[20usize, 200, 2000] {
        let recs = records(ops, 40_000, 1);
        group.bench_with_input(BenchmarkId::from_parameter(ops), &recs, |b, r| {
            b.iter(|| LogAnalyzer::analyze(std::hint::black_box(r)))
        });
    }
    group.finish();
}

fn bench_algorithm2(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_validity_refresh");
    group.sample_size(30);
    // 1k = default experiment scale; 40k = the paper's AIDS id span
    for &span in &[1_000usize, 40_000] {
        let counters = LogAnalyzer::analyze(&records(20, span, 2));
        group.bench_with_input(
            BenchmarkId::new("batch20_cache120", span),
            &span,
            |b, &span| {
                let cache = full_cache(span, 3);
                b.iter_batched(
                    || cache.clone(),
                    |mut cache| refresh_all(cache.iter_mut(), &counters, span),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_evi_purge(c: &mut Criterion) {
    c.bench_function("evi_purge_cache120_span40k", |b| {
        let cache = full_cache(40_000, 4);
        b.iter_batched(
            || cache.clone(),
            |mut cache| cache.clear(),
            criterion::BatchSize::LargeInput,
        )
    });
}

/// The CON-R extension: net-delta analysis + retrospective refresh, at the
/// same batch/cache scale as the Algorithm 1/2 benches, so the extra cost
/// of retrospection is directly comparable.
fn bench_retro(c: &mut Criterion) {
    use gc_core::validator::refresh_all_retro;
    use gc_dataset::RetroAnalyzer;

    let recs = records(20, 40_000, 5);
    c.bench_function("retro_analysis_batch20", |b| {
        b.iter(|| RetroAnalyzer::analyze(std::hint::black_box(&recs)))
    });

    let effects = RetroAnalyzer::analyze(&recs);
    let cache = full_cache(40_000, 6);
    c.bench_function("retro_refresh_cache120_span40k", |b| {
        b.iter_batched(
            || cache.clone(),
            |mut cache| refresh_all_retro(cache.iter_mut(), &effects, 40_000),
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_algorithm2,
    bench_evi_purge,
    bench_retro
);
criterion_main!(benches);
