//! Criterion micro-bench: the Candidate Set Pruner (formulas (1)–(5)) and
//! the underlying bitset algebra at the paper's id-span scale. Pruning is
//! pure bit manipulation; this bench demonstrates it is negligible next to
//! even one sub-iso test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_core::cache::CacheManager;
use gc_core::config::Policy;
use gc_core::entry::CachedQuery;
use gc_core::processor::{EntryRef, Hits};
use gc_core::pruner::prune;
use gc_core::window::Window;
use gc_graph::{BitSet, LabeledGraph};
use gc_subiso::QueryKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_bitset(rng: &mut StdRng, span: usize, density: f64) -> BitSet {
    BitSet::from_indices((0..span).filter(|_| rng.random::<f64>() < density))
}

/// Builds a cache of `hits` entries with random answers/validity over
/// `span` ids, plus a Hits struct referencing all of them both ways.
fn scenario(span: usize, hit_count: usize) -> (BitSet, Hits, CacheManager, Window) {
    let mut rng = StdRng::seed_from_u64(9);
    let mut entries = Vec::new();
    for _ in 0..hit_count {
        let graph = LabeledGraph::from_parts(vec![0, 0], &[(0, 1)]).expect("valid");
        let mut e = CachedQuery::new(
            graph,
            QueryKind::Subgraph,
            random_bitset(&mut rng, span, 0.15),
            span,
            0,
        );
        e.cg_valid = random_bitset(&mut rng, span, 0.85);
        entries.push(e);
    }
    let mut cache = CacheManager::new(hit_count.max(1), Policy::Pin);
    cache.admit_batch(entries);
    let hits = Hits {
        direct: (0..hit_count / 2).map(EntryRef::Cache).collect(),
        exclusion: (hit_count / 2..hit_count).map(EntryRef::Cache).collect(),
        exact: None,
        probes: 0,
    };
    let csm = random_bitset(&mut rng, span, 0.97);
    (csm, hits, cache, Window::new(20))
}

fn bench_pruner(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_set_pruner");
    for &(span, hit_count) in &[(1_000usize, 10usize), (40_000, 10), (40_000, 120)] {
        let (csm, hits, cache, window) = scenario(span, hit_count);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("span{span}_hits{hit_count}")),
            &csm,
            |b, csm| b.iter(|| prune(std::hint::black_box(csm), &hits, &cache, &window, csm)),
        );
    }
    group.finish();
}

fn bench_bitset_algebra(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let a = random_bitset(&mut rng, 40_000, 0.4);
    let b_ = random_bitset(&mut rng, 40_000, 0.4);
    let v = random_bitset(&mut rng, 40_000, 0.8);

    c.bench_function("bitset_intersect_40k", |bch| {
        bch.iter(|| std::hint::black_box(&a).intersection(&b_))
    });
    c.bench_function("bitset_retain_super_hit_40k", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut cs| cs.retain_super_hit(&v, &b_),
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("bitset_count_ones_40k", |bch| {
        bch.iter(|| std::hint::black_box(&a).count_ones())
    });
}

criterion_group!(benches, bench_pruner, bench_bitset_algebra);
criterion_main!(benches);
