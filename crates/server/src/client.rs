//! The GC+ client: lazy-connecting, with exponential-backoff retry.
//!
//! Retry discipline (the whole point of this module):
//!
//! * `Overloaded` / `Retryable` responses — the server vouches the request
//!   was **not executed**, so *any* request kind may be retried;
//! * transport errors (connect refused, connection dropped mid-call) —
//!   the client cannot know whether the server acted, so only
//!   **idempotent** requests (query / health / audit) are retried;
//!   updates surface the error to the caller;
//! * `degraded`-tagged answers are **successes** (sound partial results
//!   under a spent budget) and are never retried — retrying would spend
//!   the same budget again for the same partial answer.
//!
//! Backoff is exponential with multiplicative jitter (half to full of the
//! nominal delay, xorshift-generated) so colliding clients decorrelate.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use gc_core::{HealthSnapshot, ShardStatsSnapshot};
use gc_graph::LabeledGraph;
use gc_subiso::{Interrupt, QueryKind};

use crate::protocol::{read_frame, write_frame, Request, Response, ServiceStats, WireError};

/// Retry/backoff knobs.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries beyond the first attempt (0 = never retry).
    pub max_retries: u32,
    /// Nominal backoff before the first retry; doubles per attempt.
    pub base: Duration,
    /// Ceiling on the nominal backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        }
    }
}

/// Why a call ultimately failed (after any retries).
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed and the request was not safe (or allowed) to
    /// retry further.
    Transport(String),
    /// The server shed the request and retries were exhausted.
    Overloaded,
    /// The server asked for a retry and retries were exhausted.
    Retryable(String),
    /// Terminal server-side failure; never retried.
    Server(String),
    /// The reply did not match the request (protocol bug).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport: {m}"),
            ClientError::Overloaded => write!(f, "overloaded"),
            ClientError::Retryable(m) => write!(f, "retry exhausted: {m}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A successful query reply plus the call's client-side accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Global ids of the answer graphs.
    pub ids: Vec<u64>,
    /// `Some` = sound partial answer (budget spent / worker lost); still a
    /// success, never retried.
    pub degraded: Option<Interrupt>,
    /// Shards served via cache-less baseline on the server.
    pub baseline_shards: u32,
    /// Retries this call performed.
    pub retries: u32,
    /// Wall time of the whole call including retries and backoff.
    pub elapsed: Duration,
}

/// Blocking GC+ client. Reconnects lazily; safe to keep across server
/// connection drops.
pub struct CacheClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    policy: RetryPolicy,
    read_timeout: Duration,
    jitter: u64,
    retries_total: u64,
}

impl CacheClient {
    /// A client for the given server address with default policy.
    pub fn connect(addr: SocketAddr) -> Self {
        CacheClient {
            addr,
            stream: None,
            policy: RetryPolicy::default(),
            read_timeout: Duration::from_secs(10),
            jitter: 0x9E37_79B9_7F4A_7C15,
            retries_total: 0,
        }
    }

    /// Overrides the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Reseeds the jitter stream (deterministic tests / decorrelated load
    /// drivers).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter = seed | 1; // xorshift must not start at 0
        self
    }

    /// Total retries performed over this client's lifetime.
    pub fn retries_total(&self) -> u64 {
        self.retries_total
    }

    /// Executes a query. `deadline` travels to the server and anchors at
    /// frame receipt there; `None` leaves the server's default budget.
    pub fn query(
        &mut self,
        graph: &LabeledGraph,
        kind: QueryKind,
        deadline: Option<Duration>,
    ) -> Result<QueryReply, ClientError> {
        let deadline_ms = deadline
            .map(|d| u32::try_from(d.as_millis()).unwrap_or(u32::MAX).max(1))
            .unwrap_or(0);
        let req = Request::Query {
            kind,
            deadline_ms,
            graph: graph.clone(),
        };
        let started = Instant::now();
        let (rsp, retries) = self.call(&req)?;
        match rsp {
            Response::Answer {
                ids,
                degraded,
                baseline_shards,
            } => Ok(QueryReply {
                ids,
                degraded,
                baseline_shards,
                retries,
                elapsed: started.elapsed(),
            }),
            other => Err(unexpected("Answer", &other)),
        }
    }

    /// Adds edge `(u, v)` to graph `id`.
    pub fn ua(&mut self, id: u64, u: u32, v: u32) -> Result<u64, ClientError> {
        self.update(Request::Ua { id, u, v })
    }

    /// Removes edge `(u, v)` from graph `id`.
    pub fn ur(&mut self, id: u64, u: u32, v: u32) -> Result<u64, ClientError> {
        self.update(Request::Ur { id, u, v })
    }

    fn update(&mut self, req: Request) -> Result<u64, ClientError> {
        match self.call(&req)?.0 {
            Response::Updated { id } => Ok(id),
            other => Err(unexpected("Updated", &other)),
        }
    }

    /// Fetches the folded health counters.
    pub fn health(&mut self) -> Result<HealthSnapshot, ClientError> {
        self.health_full().map(|(snapshot, _)| snapshot)
    }

    /// Fetches the folded health counters plus the per-shard
    /// hit/miss/eviction/quarantine/shed counters they ride with.
    pub fn health_full(
        &mut self,
    ) -> Result<(HealthSnapshot, Vec<ShardStatsSnapshot>), ClientError> {
        match self.call(&Request::Health)?.0 {
            Response::Health { snapshot, shards } => Ok((snapshot, shards)),
            other => Err(unexpected("Health", &other)),
        }
    }

    /// Scrapes the server's full telemetry snapshot (request counters,
    /// health, per-shard stats, latency histogram, pipeline stage totals).
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.call(&Request::Stats)?.0 {
            Response::Stats(stats) => Ok(*stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Runs the consistency auditor; returns (sampled, clean, repaired,
    /// evicted).
    pub fn audit(
        &mut self,
        sample_rate: f64,
        seed: u64,
    ) -> Result<(u64, u64, u64, u64), ClientError> {
        let sample_permille = (sample_rate.clamp(0.0, 1.0) * 1000.0).round() as u16;
        let req = Request::Audit {
            sample_permille,
            seed,
        };
        match self.call(&req)?.0 {
            Response::Audited {
                sampled,
                clean,
                repaired,
                evicted,
            } => Ok((sampled, clean, repaired, evicted)),
            other => Err(unexpected("Audited", &other)),
        }
    }

    /// One logical call: attempt, classify, maybe back off and retry.
    /// Returns the terminal response and how many retries it took.
    fn call(&mut self, req: &Request) -> Result<(Response, u32), ClientError> {
        let mut retries = 0u32;
        loop {
            let failure = match self.attempt(req) {
                Ok(Response::Overloaded) => ClientError::Overloaded,
                Ok(Response::Retryable(m)) => ClientError::Retryable(m),
                Ok(rsp) => return Ok((rsp, retries)),
                Err(e) => {
                    // the connection is suspect regardless of what we do next
                    self.stream = None;
                    if !req.idempotent() {
                        // the server may have applied the update before the
                        // line died: replaying could double-apply
                        return Err(ClientError::Transport(e.to_string()));
                    }
                    ClientError::Transport(e.to_string())
                }
            };
            if retries >= self.policy.max_retries {
                return Err(failure);
            }
            std::thread::sleep(self.backoff(retries));
            retries += 1;
            self.retries_total += 1;
        }
    }

    /// One wire round-trip, connecting if needed.
    fn attempt(&mut self, req: &Request) -> Result<Response, WireError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true).ok();
            stream
                .set_read_timeout(Some(self.read_timeout))
                .map_err(WireError::Io)?;
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("just connected");
        write_frame(stream, &req.encode())?;
        let body = read_frame(stream)?;
        Response::decode(&body)
    }

    /// Exponential backoff with multiplicative jitter in [½, 1] of the
    /// nominal delay.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let nominal = self
            .policy
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.policy.cap);
        // xorshift64: cheap, seedable, good enough to decorrelate clients
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        let half = nominal / 2;
        half + nominal.mul_f64((x % 1000) as f64 / 2000.0)
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error(m) => ClientError::Server(m.clone()),
        other => ClientError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters() {
        let policy = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(80),
        };
        let mut c = CacheClient::connect("127.0.0.1:1".parse().unwrap())
            .with_policy(policy)
            .with_jitter_seed(7);
        let mut prev_nominal_hit_cap = false;
        for attempt in 0..8 {
            let d = c.backoff(attempt);
            let nominal = policy.base.saturating_mul(1 << attempt).min(policy.cap);
            assert!(d >= nominal / 2, "attempt {attempt}: {d:?} < half nominal");
            assert!(d <= nominal, "attempt {attempt}: {d:?} > nominal");
            if nominal == policy.cap {
                prev_nominal_hit_cap = true;
            }
        }
        assert!(prev_nominal_hit_cap, "cap must engage within 8 attempts");
        // jitter decorrelates consecutive draws
        let a = c.backoff(3);
        let b = c.backoff(3);
        assert_ne!(a, b, "two draws at the same attempt must differ");
    }

    #[test]
    fn connect_failure_is_transport_and_updates_do_not_retry() {
        // nothing listens on this port: every attempt is a transport error
        let policy = RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
        };
        let mut c = CacheClient::connect("127.0.0.1:9".parse().unwrap()).with_policy(policy);
        let err = c.ua(0, 0, 1).unwrap_err();
        assert!(matches!(err, ClientError::Transport(_)), "{err}");
        assert_eq!(c.retries_total(), 0, "updates never retry on transport");
        // idempotent requests do retry (and then fail)
        let err = c.health().unwrap_err();
        assert!(matches!(err, ClientError::Transport(_)), "{err}");
        assert_eq!(c.retries_total(), 2, "health retried max_retries times");
    }
}
