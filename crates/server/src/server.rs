//! The TCP shell: accept loop, per-connection framing threads, and the
//! network-fault hooks (`drop-conn`, `delay-conn`, `stall-shard`) from the
//! shared [`FaultInjector`].

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gc_core::FaultInjector;

use crate::protocol::{write_frame, Request, Response, WireError, MAX_FRAME};
use crate::service::CacheService;

/// How often an idle connection thread wakes to observe shutdown.
const IDLE_TICK: Duration = Duration::from_millis(100);

/// A running server; dropping the handle does *not* stop it — call
/// [`shutdown`](ServerHandle::shutdown).
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<CacheService>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared request handler, for out-of-band assertions (health,
    /// failover state) without a client round-trip.
    pub fn service(&self) -> &Arc<CacheService> {
        &self.service
    }

    /// Stops accepting, wakes the acceptor, and joins it. Connection
    /// threads drain on their next idle tick or client close.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Binds `127.0.0.1:port` (0 = ephemeral) and serves the cache until
/// [`ServerHandle::shutdown`]. `injector`, when given, drives the
/// *network* faults; shard-internal faults are installed on the cache
/// before it is wrapped in the service.
pub fn serve(
    service: CacheService,
    port: u16,
    injector: Option<Arc<FaultInjector>>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let service = Arc::new(service);
    let stop = Arc::new(AtomicBool::new(false));

    let acceptor = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                let injector = injector.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &service, &stop, injector.as_deref());
                });
            }
        })
    };

    Ok(ServerHandle {
        addr,
        service,
        stop,
        acceptor: Some(acceptor),
    })
}

/// One connection: read frame → apply network-fault directive → handle →
/// reply. Returns when the peer closes, the transport fails, a drop-conn
/// fault fires, or shutdown is observed while idle.
fn serve_connection(
    mut stream: TcpStream,
    service: &CacheService,
    stop: &AtomicBool,
    injector: Option<&FaultInjector>,
) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(IDLE_TICK)).ok();
    loop {
        let body = match read_frame_idle(&mut stream, stop)? {
            Some(body) => body,
            None => return Ok(()), // clean close or shutdown while idle
        };
        // the deadline clock anchors at frame receipt: injected delays and
        // queue waits burn the request's budget, as real congestion would
        let received = Instant::now();
        let directive = injector.map(|i| i.before_request()).unwrap_or_default();
        if let Some(d) = directive.delay {
            std::thread::sleep(d);
        }
        if directive.drop_conn {
            // close without replying: the client sees a transport error
            return Ok(());
        }
        let response = match Request::decode(&body) {
            Ok(req) => {
                let stall = directive.stall_shard.then(|| {
                    let nth = injector.map(|i| i.requests_seen()).unwrap_or(0);
                    (nth as usize).wrapping_sub(1) % service.shard_count()
                });
                service.handle(req, received, stall)
            }
            // framing is still aligned (length prefix), so a malformed
            // body is a per-request error, not a connection error
            Err(e) => Response::Error(format!("bad request: {e}")),
        };
        write_frame(&mut stream, &response.encode())?;
    }
}

/// [`read_frame`] tolerant of idle read timeouts *between* frames: wakes
/// every [`IDLE_TICK`] to observe shutdown, but once the first header byte
/// has arrived it insists on the whole frame. `Ok(None)` = clean close or
/// shutdown while idle.
fn read_frame_idle(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> Result<Option<Vec<u8>>, WireError> {
    let mut hdr = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut hdr[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::from(io::ErrorKind::UnexpectedEof).into())
                };
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 && stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(hdr);
    if len == 0 || len > MAX_FRAME {
        return Err(WireError::Malformed(format!("frame length {len}")));
    }
    let mut body = vec![0u8; len as usize];
    let mut at = 0usize;
    while at < body.len() {
        match stream.read(&mut body[at..]) {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::UnexpectedEof).into()),
            Ok(n) => at += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(body))
}
