//! Transport-independent request handling over a [`ShardedGraphCache`]:
//! admission control (bounded per-shard in-flight), deadline
//! materialization, and the update/health/audit operations. The TCP layer
//! in [`crate::server`] is a thin framing shell around [`CacheService`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use gc_core::{HealthSnapshot, QueryBudget, RuntimeHealth, ShardStats, ShardedGraphCache};
use gc_dataset::ChangeOp;
use gc_telemetry::{Counter, Exposition, Histogram, STAGES};

use crate::protocol::{Request, Response, ServiceStats};

/// Bounded per-shard in-flight accounting. Acquired *before* the cache
/// lock so load is shed deterministically at admission instead of queueing
/// without bound on the mutex; the permit spans the whole request,
/// including its lock wait.
struct InflightGate {
    slots: Vec<AtomicUsize>,
    depth: usize,
}

impl InflightGate {
    fn new(shards: usize, depth: usize) -> Self {
        InflightGate {
            slots: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            depth: depth.max(1),
        }
    }

    /// Acquires one permit on the given shard slot.
    fn try_acquire(&self, shard: usize) -> Option<GatePermit<'_>> {
        self.try_acquire_range(shard, shard + 1)
    }

    /// Acquires one permit on *every* shard slot (queries fan out to all
    /// shards), all-or-nothing.
    fn try_acquire_all(&self) -> Option<GatePermit<'_>> {
        self.try_acquire_range(0, self.slots.len())
    }

    fn try_acquire_range(&self, from: usize, to: usize) -> Option<GatePermit<'_>> {
        for i in from..to {
            if self.slots[i].fetch_add(1, Ordering::AcqRel) >= self.depth {
                // roll back this and every slot already taken
                for j in from..=i {
                    self.slots[j].fetch_sub(1, Ordering::AcqRel);
                }
                return None;
            }
        }
        Some(GatePermit {
            gate: self,
            from,
            to,
        })
    }
}

/// RAII in-flight permit; releasing is infallible and panic-safe.
struct GatePermit<'a> {
    gate: &'a InflightGate,
    from: usize,
    to: usize,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        for i in self.from..self.to {
            self.gate.slots[i].fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// The request handler: one per server, shared across connection threads.
pub struct CacheService {
    cache: Mutex<ShardedGraphCache>,
    gate: InflightGate,
    /// Service-level counters (load shed happens before the cache is even
    /// locked, so it cannot live on the router's health).
    health: RuntimeHealth,
    default_budget: QueryBudget,
    shard_count: usize,
    /// Per-shard hit/miss/shed counters shared with the router — the shed
    /// leg is recorded here, pre-lock, so backpressure stays lock-free.
    shard_stats: Arc<Vec<ShardStats>>,
    /// Query requests answered (always on — one relaxed add each).
    queries: Counter,
    /// Update requests applied.
    updates: Counter,
    /// End-to-end request latency in microseconds, anchored at frame
    /// receipt. Recording is gated on the cache config's `metrics` flag.
    latency: Histogram,
    metrics_enabled: bool,
}

impl CacheService {
    /// Wraps a pre-built sharded cache. `max_inflight` bounds concurrent
    /// requests per shard; `default_budget` applies to queries that carry
    /// no deadline of their own.
    pub fn new(cache: ShardedGraphCache, max_inflight: usize, default_budget: QueryBudget) -> Self {
        let shard_count = cache.shard_count();
        let shard_stats = cache.stats_handle();
        let metrics_enabled = cache.config().metrics;
        CacheService {
            cache: Mutex::new(cache),
            gate: InflightGate::new(shard_count, max_inflight),
            health: RuntimeHealth::default(),
            default_budget,
            shard_count,
            shard_stats,
            queries: Counter::new(),
            updates: Counter::new(),
            latency: Histogram::new(),
            metrics_enabled,
        }
    }

    /// Number of shards behind this service.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// A worker panic poisons the cache mutex; the cache's own isolation
    /// layers have already contained the damage (quarantine + audit), so
    /// the service keeps serving rather than wedging every future request.
    fn lock_cache(&self) -> MutexGuard<'_, ShardedGraphCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Folded health: every shard + the routing layer + this service.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        let mut total = self.health.snapshot();
        total.merge(&self.lock_cache().health_snapshot());
        total
    }

    /// Full telemetry snapshot — what a `Stats` scrape returns.
    pub fn stats(&self) -> ServiceStats {
        let mut health = self.health.snapshot();
        let (shards, stages, index) = {
            let cache = self.lock_cache();
            health.merge(&cache.health_snapshot());
            (
                cache.shard_stats(),
                cache.stage_totals(),
                cache.index_stats(),
            )
        };
        let (index_bytes, index_syncs, index_sync_nanos) = index;
        ServiceStats {
            queries: self.queries.get(),
            updates: self.updates.get(),
            health,
            shards,
            latency: self.latency.snapshot(),
            stages,
            index_bytes,
            index_syncs,
            index_sync_nanos,
        }
    }

    /// Shards currently failed over to baseline serving.
    pub fn unhealthy_shards(&self) -> Vec<usize> {
        self.lock_cache().unhealthy_shards()
    }

    /// Runs `f` under the cache lock — test/driver escape hatch for
    /// assertions that need router state.
    pub fn with_cache<R>(&self, f: impl FnOnce(&mut ShardedGraphCache) -> R) -> R {
        f(&mut self.lock_cache())
    }

    /// Handles one decoded request. `received` anchors the deadline clock
    /// (the moment the frame arrived, so server-side queue wait burns the
    /// deadline); `stall_shard` is chaos routing from the fault plan.
    pub fn handle(&self, req: Request, received: Instant, stall_shard: Option<usize>) -> Response {
        match req {
            Request::Query {
                kind,
                deadline_ms,
                graph,
            } => {
                let Some(_permit) = self.gate.try_acquire_all() else {
                    self.health.add_load_shed();
                    // a shed query never reached any shard: every shard's
                    // shed counter advances (the fan-out they did not see)
                    for s in self.shard_stats.iter() {
                        s.shed.inc();
                    }
                    return Response::Overloaded;
                };
                let budget = if deadline_ms > 0 {
                    QueryBudget {
                        deadline: Some(Duration::from_millis(u64::from(deadline_ms))),
                        max_tests: self.default_budget.max_tests,
                    }
                } else {
                    self.default_budget
                };
                let mut cache = self.lock_cache();
                // whatever the lock wait consumed is gone from the budget
                let remaining = QueryBudget {
                    deadline: budget
                        .deadline
                        .map(|d| (received + d).saturating_duration_since(Instant::now())),
                    max_tests: budget.max_tests,
                };
                if let Some(shard) = stall_shard {
                    cache.set_shard_stalled(shard, true);
                }
                let routed = catch_unwind(AssertUnwindSafe(|| {
                    cache.execute_deadline(&graph, kind, remaining)
                }));
                if let Some(shard) = stall_shard {
                    cache.set_shard_stalled(shard, false);
                }
                let rsp = match routed {
                    Ok(routed) => {
                        self.queries.inc();
                        Response::Answer {
                            ids: routed
                                .outcome
                                .answer
                                .iter_ones()
                                .map(|g| g as u64)
                                .collect(),
                            degraded: routed.outcome.metrics.degraded,
                            baseline_shards: routed.baseline_shards,
                        }
                    }
                    // execute_deadline contains worker panics itself; a
                    // panic escaping it is a router bug, but the query has
                    // not produced an answer — report rather than wedge
                    Err(_) => Response::Error("query execution panicked".into()),
                };
                if self.metrics_enabled {
                    self.latency
                        .record(received.elapsed().as_micros().min(u64::MAX as u128) as u64);
                }
                rsp
            }
            Request::Ua { id, u, v } | Request::Ur { id, u, v } => {
                let add = matches!(req, Request::Ua { .. });
                // admission key: updates route to one shard; the precise
                // owner needs the routing table (behind the lock), so the
                // gate slots by a uniform hash of the global id instead
                let slot = (id as usize) % self.shard_count;
                let Some(_permit) = self.gate.try_acquire(slot) else {
                    self.health.add_load_shed();
                    self.shard_stats[slot].shed.inc();
                    return Response::Overloaded;
                };
                let mut cache = self.lock_cache();
                let op = if add {
                    ChangeOp::Ua {
                        id: id as usize,
                        u,
                        v,
                    }
                } else {
                    ChangeOp::Ur {
                        id: id as usize,
                        u,
                        v,
                    }
                };
                match catch_unwind(AssertUnwindSafe(|| cache.apply(op))) {
                    Ok(Ok(global)) => {
                        self.updates.inc();
                        Response::Updated { id: global as u64 }
                    }
                    Ok(Err(e)) => Response::Error(format!("update rejected: {e:?}")),
                    // injected update panics fire before any mutation, so
                    // the op did not land: vouch for a safe retry
                    Err(_) => Response::Retryable("update panicked before mutation".into()),
                }
            }
            Request::Health => {
                let mut snapshot = self.health.snapshot();
                let shards = {
                    let cache = self.lock_cache();
                    snapshot.merge(&cache.health_snapshot());
                    cache.shard_stats()
                };
                Response::Health { snapshot, shards }
            }
            Request::Stats => Response::Stats(Box::new(self.stats())),
            Request::Audit {
                sample_permille,
                seed,
            } => {
                let rate = f64::from(sample_permille.min(1000)) / 1000.0;
                let report = self.lock_cache().audit(rate, seed);
                Response::Audited {
                    sampled: report.sampled as u64,
                    clean: report.clean as u64,
                    repaired: report.repaired as u64,
                    evicted: report.evicted as u64,
                }
            }
        }
    }
}

impl ServiceStats {
    /// Renders the snapshot in Prometheus text exposition format. Metric
    /// names are stable; dashboards key on them, so additions only.
    pub fn render_prometheus(&self) -> String {
        let mut exp = Exposition::new();
        exp.counter("gc_requests_total", &[("kind", "query")], self.queries);
        exp.counter("gc_requests_total", &[("kind", "update")], self.updates);
        exp.counter("gc_load_shed_total", &[], self.health.load_shed);
        exp.counter(
            "gc_panics_recovered_total",
            &[],
            self.health.panics_recovered,
        );
        exp.counter(
            "gc_quarantined_entries_total",
            &[],
            self.health.quarantined_entries,
        );
        exp.counter(
            "gc_degraded_queries_total",
            &[],
            self.health.degraded_queries,
        );
        exp.counter("gc_audit_repairs_total", &[], self.health.audit_repairs);
        exp.counter("gc_audit_evictions_total", &[], self.health.audit_evictions);
        exp.counter("gc_shard_failovers_total", &[], self.health.shard_failovers);
        exp.counter("gc_baseline_served_total", &[], self.health.baseline_served);
        exp.counter("gc_repairs_applied_total", &[], self.health.repairs_applied);
        exp.counter(
            "gc_invalidations_avoided_total",
            &[],
            self.health.invalidations_avoided,
        );
        exp.counter(
            "gc_repair_fallbacks_total",
            &[],
            self.health.repair_fallbacks,
        );
        exp.gauge("gc_label_index_bytes", &[], self.index_bytes);
        exp.counter("gc_label_index_syncs_total", &[], self.index_syncs);
        exp.counter(
            "gc_label_index_sync_nanos_total",
            &[],
            self.index_sync_nanos,
        );
        for (i, s) in self.shards.iter().enumerate() {
            let idx = i.to_string();
            let shard = [("shard", idx.as_str())];
            exp.counter("gc_shard_hits_total", &shard, s.hits);
            exp.counter("gc_shard_misses_total", &shard, s.misses);
            exp.counter("gc_shard_evictions_total", &shard, s.evictions);
            exp.gauge("gc_shard_quarantined_entries", &shard, s.quarantined);
            exp.counter("gc_shard_shed_total", &shard, s.shed);
        }
        exp.histogram("gc_request_latency_microseconds", &[], &self.latency);
        for stage in STAGES {
            exp.counter(
                "gc_stage_nanos_total",
                &[("stage", stage.name())],
                self.stages.get(stage),
            );
        }
        exp.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_core::GcConfig;
    use gc_graph::LabeledGraph;
    use gc_subiso::QueryKind;

    fn triangle(label: u16) -> LabeledGraph {
        LabeledGraph::from_parts(vec![label; 3], &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    fn service(max_inflight: usize) -> CacheService {
        let data = vec![triangle(0), triangle(1), triangle(0), triangle(2)];
        let cache = ShardedGraphCache::new(GcConfig::default(), data, 2);
        CacheService::new(cache, max_inflight, QueryBudget::UNLIMITED)
    }

    #[test]
    fn query_answers_and_updates_apply() {
        let svc = service(4);
        let q = Request::Query {
            kind: QueryKind::Subgraph,
            deadline_ms: 0,
            graph: triangle(0),
        };
        let Response::Answer { ids, degraded, .. } = svc.handle(q, Instant::now(), None) else {
            panic!("expected answer");
        };
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(degraded, None);

        // removing an edge of graph 0 removes it from the answer
        let rsp = svc.handle(Request::Ur { id: 0, u: 0, v: 1 }, Instant::now(), None);
        assert_eq!(rsp, Response::Updated { id: 0 });
        let q = Request::Query {
            kind: QueryKind::Subgraph,
            deadline_ms: 0,
            graph: triangle(0),
        };
        let Response::Answer { ids, .. } = svc.handle(q, Instant::now(), None) else {
            panic!("expected answer");
        };
        assert_eq!(ids, vec![2]);

        // updates against dead ids are terminal errors, not retryable
        let rsp = svc.handle(Request::Ua { id: 99, u: 0, v: 1 }, Instant::now(), None);
        assert!(matches!(rsp, Response::Error(_)));
    }

    #[test]
    fn saturated_gate_sheds_with_explicit_overloaded() {
        let svc = service(1);
        // consume the only permit on shard 0's slot
        let _held = svc.gate.try_acquire(0).expect("first permit");
        // an update hashing to shard 0 is shed
        let rsp = svc.handle(Request::Ua { id: 0, u: 0, v: 1 }, Instant::now(), None);
        assert_eq!(rsp, Response::Overloaded);
        // a fan-out query needs every slot, including the saturated one
        let rsp = svc.handle(
            Request::Query {
                kind: QueryKind::Subgraph,
                deadline_ms: 0,
                graph: triangle(0),
            },
            Instant::now(),
            None,
        );
        assert_eq!(rsp, Response::Overloaded);
        // but shard 1's slot is free: an update hashing there proceeds
        let rsp = svc.handle(Request::Ur { id: 1, u: 0, v: 1 }, Instant::now(), None);
        assert_eq!(rsp, Response::Updated { id: 1 });
        assert_eq!(svc.health_snapshot().load_shed, 2);
        // releasing the permit restores query admission
        drop(_held);
        let rsp = svc.handle(
            Request::Query {
                kind: QueryKind::Subgraph,
                deadline_ms: 0,
                graph: triangle(0),
            },
            Instant::now(),
            None,
        );
        assert!(matches!(rsp, Response::Answer { .. }));
    }

    #[test]
    fn stats_counters_track_requests_and_render() {
        let svc = service(4);
        for label in [0u16, 1, 2] {
            let rsp = svc.handle(
                Request::Query {
                    kind: QueryKind::Subgraph,
                    deadline_ms: 0,
                    graph: triangle(label),
                },
                Instant::now(),
                None,
            );
            assert!(matches!(rsp, Response::Answer { .. }));
        }
        let rsp = svc.handle(Request::Ur { id: 0, u: 0, v: 1 }, Instant::now(), None);
        assert!(matches!(rsp, Response::Updated { .. }));
        // one more query so the index replays the UR (sync is lazy,
        // riding the next query's prefilter stage)
        let rsp = svc.handle(
            Request::Query {
                kind: QueryKind::Subgraph,
                deadline_ms: 0,
                graph: triangle(0),
            },
            Instant::now(),
            None,
        );
        assert!(matches!(rsp, Response::Answer { .. }));

        let stats = svc.stats();
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.updates, 1);
        // every executed query classifies exactly once per shard
        for s in &stats.shards {
            assert_eq!(s.hits + s.misses, 4);
            assert_eq!(s.shed, 0);
        }
        // default config leaves the latency histogram off
        assert_eq!(stats.latency.count, 0);
        // the default candidate source is the label index: the footprint
        // gauge is live, and the UR above forced an incremental sync
        assert!(stats.index_bytes > 0);
        assert!(stats.index_syncs > 0);

        let text = stats.render_prometheus();
        assert!(text.contains("gc_requests_total{kind=\"query\"} 4"));
        assert!(text.contains("gc_requests_total{kind=\"update\"} 1"));
        assert!(text.contains("gc_shard_hits_total{shard=\"0\"}"));
        assert!(text.contains("gc_request_latency_microseconds_count 0"));
        assert!(text.contains("gc_repairs_applied_total"));
        assert!(text.contains("gc_invalidations_avoided_total"));
        assert!(text.contains("gc_repair_fallbacks_total"));
        assert!(text.contains("gc_label_index_bytes"));
        assert!(text.contains("gc_label_index_syncs_total"));
        assert!(text.contains("gc_label_index_sync_nanos_total"));
    }

    #[test]
    fn shed_requests_advance_shard_shed_counters() {
        let svc = service(1);
        let _held = svc.gate.try_acquire(0).expect("first permit");
        let rsp = svc.handle(
            Request::Query {
                kind: QueryKind::Subgraph,
                deadline_ms: 0,
                graph: triangle(0),
            },
            Instant::now(),
            None,
        );
        assert_eq!(rsp, Response::Overloaded);
        let rsp = svc.handle(Request::Ua { id: 0, u: 0, v: 1 }, Instant::now(), None);
        assert_eq!(rsp, Response::Overloaded);
        let stats = svc.stats();
        // the fan-out query shed on every shard; the update only on slot 0
        assert_eq!(stats.shards[0].shed, 2);
        assert_eq!(stats.shards[1].shed, 1);
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.updates, 0);
        // shed never counts as a hit or a miss
        for s in &stats.shards {
            assert_eq!(s.hits + s.misses, 0);
        }
    }

    #[test]
    fn deadline_anchors_at_receipt() {
        let svc = service(4);
        // a request whose 1 ms deadline was already spent before handling
        // (slow frame, queue wait) has no budget left: the answer must
        // come back degraded immediately
        let received = Instant::now();
        std::thread::sleep(Duration::from_millis(5));
        let t = Instant::now();
        let rsp = svc.handle(
            Request::Query {
                kind: QueryKind::Subgraph,
                deadline_ms: 1,
                graph: triangle(0),
            },
            received,
            None,
        );
        assert!(t.elapsed() < Duration::from_secs(5), "no hang");
        let Response::Answer { degraded, .. } = rsp else {
            panic!("expected answer");
        };
        assert!(degraded.is_some(), "spent deadline must tag the answer");
    }

    #[test]
    fn stalled_shard_degrades_within_deadline() {
        let svc = service(4);
        let t = Instant::now();
        let rsp = svc.handle(
            Request::Query {
                kind: QueryKind::Subgraph,
                deadline_ms: 40,
                graph: triangle(0),
            },
            Instant::now(),
            Some(1),
        );
        let elapsed = t.elapsed();
        assert!(elapsed >= Duration::from_millis(40));
        assert!(elapsed < Duration::from_millis(160), "{elapsed:?}");
        let Response::Answer { degraded, .. } = rsp else {
            panic!("expected answer");
        };
        assert!(degraded.is_some());
        // the stall was per-request: the next query is exact again
        let rsp = svc.handle(
            Request::Query {
                kind: QueryKind::Subgraph,
                deadline_ms: 0,
                graph: triangle(0),
            },
            Instant::now(),
            None,
        );
        let Response::Answer { ids, degraded, .. } = rsp else {
            panic!("expected answer");
        };
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(degraded, None);
    }
}
