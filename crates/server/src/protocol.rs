//! The GC+ wire protocol: length-prefixed binary frames over any
//! `Read`/`Write` byte stream (deployed over TCP, tested over loopback).
//!
//! Frame layout (all integers big-endian):
//!
//! ```text
//! +----------------+---------+-----------------------+
//! | len: u32       | tag: u8 | payload: len - 1 bytes|
//! +----------------+---------+-----------------------+
//! ```
//!
//! `len` counts everything after the length word (tag + payload) and is
//! capped at [`MAX_FRAME`] — a peer announcing more is a protocol error,
//! not an allocation request. Graphs travel as
//! `nv: u32, nv × label: u16, ne: u32, ne × (u: u32, v: u32)`.
//!
//! The request carries its *deadline* (`deadline_ms`, 0 = none) rather
//! than a timestamp: clocks on the two ends need not agree, and the
//! server re-anchors the budget at receipt, so queue wait inside the
//! server burns the deadline while network transit does not.

use std::io::{self, Read, Write};

use gc_core::{HealthSnapshot, ShardStatsSnapshot};
use gc_graph::LabeledGraph;
use gc_subiso::{Interrupt, QueryKind};
use gc_telemetry::{HistogramSnapshot, StageSpans, HISTOGRAM_BUCKETS, STAGES};

/// Upper bound on a frame body (tag + payload). Large enough for any
/// realistic query graph or answer set, small enough that a corrupt
/// length word cannot drive allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (includes clean EOF mid-frame).
    Io(io::Error),
    /// The peer sent bytes that do not decode as a valid message.
    Malformed(String),
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a pattern query under a deadline (`deadline_ms` of 0 means
    /// the server's default budget applies unchanged).
    Query {
        kind: QueryKind,
        deadline_ms: u32,
        graph: LabeledGraph,
    },
    /// Edge addition (UA) on a live dataset graph.
    Ua { id: u64, u: u32, v: u32 },
    /// Edge removal (UR) on a live dataset graph.
    Ur { id: u64, u: u32, v: u32 },
    /// Fetch the folded health counters plus per-shard cache counters.
    Health,
    /// Run the consistency auditor (`sample_permille` of 1000 = audit
    /// every resident entry).
    Audit { sample_permille: u16, seed: u64 },
    /// Scrape the full telemetry snapshot (counters, per-shard stats,
    /// latency histogram, pipeline stage spans).
    Stats,
}

impl Request {
    /// Whether replaying this request can change server state. Only
    /// idempotent requests may be retried on a *transport* error, where
    /// the client cannot know if the server acted before the line died.
    pub fn idempotent(&self) -> bool {
        match self {
            Request::Query { .. } | Request::Health | Request::Audit { .. } | Request::Stats => {
                true
            }
            Request::Ua { .. } | Request::Ur { .. } => false,
        }
    }
}

/// Everything a `Stats` scrape returns — the service's full telemetry
/// snapshot. All counters are cumulative since server start; the
/// histogram/spans are all-zero when the server runs with recording off.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceStats {
    /// Query requests executed (shed requests not included).
    pub queries: u64,
    /// Update requests applied.
    pub updates: u64,
    /// Folded fault-tolerance counters (same as the health reply).
    pub health: HealthSnapshot,
    /// Per-shard hit/miss/eviction/quarantine/shed counters.
    pub shards: Vec<ShardStatsSnapshot>,
    /// End-to-end request latency (recorded from frame receipt to reply,
    /// in microseconds) — only populated when metrics are enabled.
    pub latency: HistogramSnapshot,
    /// Pipeline stage spans summed across shards — only populated when
    /// tracing is enabled.
    pub stages: StageSpans,
    /// Resident bytes of the label-postings indexes, summed across shards
    /// (0 when the candidate source is the linear scan).
    pub index_bytes: u64,
    /// Incremental index syncs that actually replayed log records.
    pub index_syncs: u64,
    /// Cumulative wall time of those syncs, in nanoseconds.
    pub index_sync_nanos: u64,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Query answer: global graph ids, plus how the answer was produced.
    /// `degraded = Some(..)` marks a *sound partial* answer (budget ran
    /// out, worker panicked); it is a success, never retried.
    Answer {
        ids: Vec<u64>,
        degraded: Option<Interrupt>,
        baseline_shards: u32,
    },
    /// Update applied to the given global id.
    Updated { id: u64 },
    /// Folded health counters plus per-shard cache counters.
    Health {
        snapshot: HealthSnapshot,
        shards: Vec<ShardStatsSnapshot>,
    },
    /// Auditor outcome.
    Audited {
        sampled: u64,
        clean: u64,
        repaired: u64,
        evicted: u64,
    },
    /// Shed at admission: the per-shard in-flight cap is exhausted. The
    /// request was *not* executed; any request kind may be retried.
    Overloaded,
    /// Failed before execution in a way worth retrying (any request
    /// kind): the server vouches no state changed.
    Retryable(String),
    /// Full telemetry snapshot.
    Stats(Box<ServiceStats>),
    /// Terminal failure; do not retry.
    Error(String),
}

// ---------------------------------------------------------------- tags --

const REQ_QUERY: u8 = 0x01;
const REQ_UA: u8 = 0x02;
const REQ_UR: u8 = 0x03;
const REQ_HEALTH: u8 = 0x04;
const REQ_AUDIT: u8 = 0x05;
const REQ_STATS: u8 = 0x06;

const RSP_ANSWER: u8 = 0x81;
const RSP_UPDATED: u8 = 0x82;
const RSP_HEALTH: u8 = 0x83;
const RSP_AUDITED: u8 = 0x84;
const RSP_OVERLOADED: u8 = 0x85;
const RSP_RETRYABLE: u8 = 0x86;
const RSP_ERROR: u8 = 0x87;
const RSP_STATS: u8 = 0x88;

fn kind_code(kind: QueryKind) -> u8 {
    match kind {
        QueryKind::Subgraph => 0,
        QueryKind::Supergraph => 1,
    }
}

fn interrupt_code(i: Option<Interrupt>) -> u8 {
    match i {
        None => 0,
        Some(Interrupt::Cancelled) => 1,
        Some(Interrupt::Deadline) => 2,
        Some(Interrupt::TestCap) => 3,
        Some(Interrupt::Panic) => 4,
    }
}

fn decode_interrupt(code: u8) -> Result<Option<Interrupt>, WireError> {
    Ok(match code {
        0 => None,
        1 => Some(Interrupt::Cancelled),
        2 => Some(Interrupt::Deadline),
        3 => Some(Interrupt::TestCap),
        4 => Some(Interrupt::Panic),
        c => return Err(WireError::Malformed(format!("interrupt code {c}"))),
    })
}

// ------------------------------------------------------------- encoding --

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    fn graph(&mut self, g: &LabeledGraph) {
        self.u32(g.vertex_count() as u32);
        for &l in g.labels() {
            self.u16(l);
        }
        self.u32(g.edge_count() as u32);
        for (u, v) in g.edges() {
            self.u32(u);
            self.u32(v);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, at: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError::Malformed("truncated frame".into()))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn string(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::Malformed("non-utf8 string".into()))
    }
    fn graph(&mut self) -> Result<LabeledGraph, WireError> {
        let nv = self.u32()? as usize;
        // label payload is 2 bytes/vertex: bound nv by the bytes actually
        // present so a corrupt count cannot drive allocation
        if nv.saturating_mul(2) > self.buf.len() - self.at {
            return Err(WireError::Malformed("vertex count exceeds frame".into()));
        }
        let mut labels = Vec::with_capacity(nv);
        for _ in 0..nv {
            labels.push(self.u16()?);
        }
        let ne = self.u32()? as usize;
        if ne.saturating_mul(8) > self.buf.len() - self.at {
            return Err(WireError::Malformed("edge count exceeds frame".into()));
        }
        let mut edges = Vec::with_capacity(ne);
        for _ in 0..ne {
            let u = self.u32()?;
            let v = self.u32()?;
            edges.push((u, v));
        }
        LabeledGraph::from_parts(labels, &edges)
            .map_err(|e| WireError::Malformed(format!("graph: {e}")))
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
    fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.at
            )))
        }
    }
}

// ------------------------------------------------- telemetry encoding --

fn encode_health(e: &mut Enc, h: &HealthSnapshot) {
    for v in [
        h.panics_recovered,
        h.quarantined_entries,
        h.degraded_queries,
        h.audit_repairs,
        h.audit_evictions,
        h.load_shed,
        h.shard_failovers,
        h.baseline_served,
        h.repairs_applied,
        h.invalidations_avoided,
        h.repair_fallbacks,
    ] {
        e.u64(v);
    }
}

fn decode_health(d: &mut Dec) -> Result<HealthSnapshot, WireError> {
    let mut v = [0u64; 11];
    for slot in &mut v {
        *slot = d.u64()?;
    }
    Ok(HealthSnapshot {
        panics_recovered: v[0],
        quarantined_entries: v[1],
        degraded_queries: v[2],
        audit_repairs: v[3],
        audit_evictions: v[4],
        load_shed: v[5],
        shard_failovers: v[6],
        baseline_served: v[7],
        repairs_applied: v[8],
        invalidations_avoided: v[9],
        repair_fallbacks: v[10],
    })
}

/// Bytes one encoded [`ShardStatsSnapshot`] occupies (5 × u64).
const SHARD_STATS_BYTES: usize = 40;

fn encode_shard_stats(e: &mut Enc, shards: &[ShardStatsSnapshot]) {
    e.u32(shards.len() as u32);
    for s in shards {
        e.u64(s.hits);
        e.u64(s.misses);
        e.u64(s.evictions);
        e.u64(s.quarantined);
        e.u64(s.shed);
    }
}

fn decode_shard_stats(d: &mut Dec) -> Result<Vec<ShardStatsSnapshot>, WireError> {
    let n = d.u32()? as usize;
    if n.saturating_mul(SHARD_STATS_BYTES) > d.remaining() {
        return Err(WireError::Malformed("shard count exceeds frame".into()));
    }
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(ShardStatsSnapshot {
            hits: d.u64()?,
            misses: d.u64()?,
            evictions: d.u64()?,
            quarantined: d.u64()?,
            shed: d.u64()?,
        });
    }
    Ok(shards)
}

fn encode_histogram(e: &mut Enc, h: &HistogramSnapshot) {
    e.u32(HISTOGRAM_BUCKETS as u32);
    for &b in &h.buckets {
        e.u64(b);
    }
    e.u64(h.count);
    e.u64(h.sum);
    e.u64(h.max);
}

fn decode_histogram(d: &mut Dec) -> Result<HistogramSnapshot, WireError> {
    let n = d.u32()? as usize;
    if n != HISTOGRAM_BUCKETS {
        return Err(WireError::Malformed(format!("histogram bucket count {n}")));
    }
    let mut snap = HistogramSnapshot::default();
    for b in &mut snap.buckets {
        *b = d.u64()?;
    }
    snap.count = d.u64()?;
    snap.sum = d.u64()?;
    snap.max = d.u64()?;
    Ok(snap)
}

fn encode_spans(e: &mut Enc, spans: &StageSpans) {
    for (_, nanos) in spans.iter() {
        e.u64(nanos);
    }
}

fn decode_spans(d: &mut Dec) -> Result<StageSpans, WireError> {
    let mut spans = StageSpans::default();
    for stage in STAGES {
        spans.record(stage, d.u64()?);
    }
    Ok(spans)
}

impl Request {
    /// Serializes into a frame body (tag + payload, no length word).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        match self {
            Request::Query {
                kind,
                deadline_ms,
                graph,
            } => {
                e.u8(REQ_QUERY);
                e.u8(kind_code(*kind));
                e.u32(*deadline_ms);
                e.graph(graph);
            }
            Request::Ua { id, u, v } => {
                e.u8(REQ_UA);
                e.u64(*id);
                e.u32(*u);
                e.u32(*v);
            }
            Request::Ur { id, u, v } => {
                e.u8(REQ_UR);
                e.u64(*id);
                e.u32(*u);
                e.u32(*v);
            }
            Request::Health => e.u8(REQ_HEALTH),
            Request::Audit {
                sample_permille,
                seed,
            } => {
                e.u8(REQ_AUDIT);
                e.u16(*sample_permille);
                e.u64(*seed);
            }
            Request::Stats => e.u8(REQ_STATS),
        }
        e.0
    }

    /// Parses a frame body produced by [`Request::encode`].
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(body);
        let req = match d.u8()? {
            REQ_QUERY => {
                let kind = match d.u8()? {
                    0 => QueryKind::Subgraph,
                    1 => QueryKind::Supergraph,
                    c => return Err(WireError::Malformed(format!("query kind {c}"))),
                };
                let deadline_ms = d.u32()?;
                let graph = d.graph()?;
                Request::Query {
                    kind,
                    deadline_ms,
                    graph,
                }
            }
            REQ_UA => Request::Ua {
                id: d.u64()?,
                u: d.u32()?,
                v: d.u32()?,
            },
            REQ_UR => Request::Ur {
                id: d.u64()?,
                u: d.u32()?,
                v: d.u32()?,
            },
            REQ_HEALTH => Request::Health,
            REQ_AUDIT => Request::Audit {
                sample_permille: d.u16()?,
                seed: d.u64()?,
            },
            REQ_STATS => Request::Stats,
            t => return Err(WireError::Malformed(format!("request tag {t:#x}"))),
        };
        d.done()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes into a frame body (tag + payload, no length word).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        match self {
            Response::Answer {
                ids,
                degraded,
                baseline_shards,
            } => {
                e.u8(RSP_ANSWER);
                e.u8(interrupt_code(*degraded));
                e.u32(*baseline_shards);
                e.u32(ids.len() as u32);
                for &id in ids {
                    e.u64(id);
                }
            }
            Response::Updated { id } => {
                e.u8(RSP_UPDATED);
                e.u64(*id);
            }
            Response::Health { snapshot, shards } => {
                e.u8(RSP_HEALTH);
                encode_health(&mut e, snapshot);
                encode_shard_stats(&mut e, shards);
            }
            Response::Audited {
                sampled,
                clean,
                repaired,
                evicted,
            } => {
                e.u8(RSP_AUDITED);
                e.u64(*sampled);
                e.u64(*clean);
                e.u64(*repaired);
                e.u64(*evicted);
            }
            Response::Overloaded => e.u8(RSP_OVERLOADED),
            Response::Retryable(m) => {
                e.u8(RSP_RETRYABLE);
                e.bytes(m.as_bytes());
            }
            Response::Stats(s) => {
                e.u8(RSP_STATS);
                e.u64(s.queries);
                e.u64(s.updates);
                encode_health(&mut e, &s.health);
                encode_shard_stats(&mut e, &s.shards);
                encode_histogram(&mut e, &s.latency);
                encode_spans(&mut e, &s.stages);
                e.u64(s.index_bytes);
                e.u64(s.index_syncs);
                e.u64(s.index_sync_nanos);
            }
            Response::Error(m) => {
                e.u8(RSP_ERROR);
                e.bytes(m.as_bytes());
            }
        }
        e.0
    }

    /// Parses a frame body produced by [`Response::encode`].
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(body);
        let rsp = match d.u8()? {
            RSP_ANSWER => {
                let degraded = decode_interrupt(d.u8()?)?;
                let baseline_shards = d.u32()?;
                let n = d.u32()? as usize;
                if n.saturating_mul(8) > body.len() {
                    return Err(WireError::Malformed("id count exceeds frame".into()));
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(d.u64()?);
                }
                Response::Answer {
                    ids,
                    degraded,
                    baseline_shards,
                }
            }
            RSP_UPDATED => Response::Updated { id: d.u64()? },
            RSP_HEALTH => Response::Health {
                snapshot: decode_health(&mut d)?,
                shards: decode_shard_stats(&mut d)?,
            },
            RSP_AUDITED => Response::Audited {
                sampled: d.u64()?,
                clean: d.u64()?,
                repaired: d.u64()?,
                evicted: d.u64()?,
            },
            RSP_OVERLOADED => Response::Overloaded,
            RSP_RETRYABLE => Response::Retryable(d.string()?),
            RSP_STATS => Response::Stats(Box::new(ServiceStats {
                queries: d.u64()?,
                updates: d.u64()?,
                health: decode_health(&mut d)?,
                shards: decode_shard_stats(&mut d)?,
                latency: decode_histogram(&mut d)?,
                stages: decode_spans(&mut d)?,
                index_bytes: d.u64()?,
                index_syncs: d.u64()?,
                index_sync_nanos: d.u64()?,
            })),
            RSP_ERROR => Response::Error(d.string()?),
            t => return Err(WireError::Malformed(format!("response tag {t:#x}"))),
        };
        d.done()?;
        Ok(rsp)
    }
}

// --------------------------------------------------------------- frames --

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| WireError::Malformed(format!("frame body {} too large", body.len())))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. A clean EOF *before* the length word
/// maps to `Io(UnexpectedEof)` like any mid-frame cut — callers treat
/// both as the peer going away.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len);
    if len == 0 || len > MAX_FRAME {
        return Err(WireError::Malformed(format!("frame length {len}")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> LabeledGraph {
        LabeledGraph::from_parts(vec![3, 1, 4, 1], &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap()
    }

    fn roundtrip_req(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn roundtrip_rsp(rsp: Response) {
        let body = rsp.encode();
        assert_eq!(Response::decode(&body).unwrap(), rsp);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_req(Request::Query {
            kind: QueryKind::Subgraph,
            deadline_ms: 250,
            graph: graph(),
        });
        roundtrip_req(Request::Query {
            kind: QueryKind::Supergraph,
            deadline_ms: 0,
            graph: graph(),
        });
        roundtrip_req(Request::Ua { id: 7, u: 1, v: 3 });
        roundtrip_req(Request::Ur {
            id: u64::MAX,
            u: 0,
            v: 2,
        });
        roundtrip_req(Request::Health);
        roundtrip_req(Request::Audit {
            sample_permille: 1000,
            seed: 42,
        });
        roundtrip_req(Request::Stats);
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_rsp(Response::Answer {
            ids: vec![0, 3, 99, u64::MAX],
            degraded: None,
            baseline_shards: 0,
        });
        roundtrip_rsp(Response::Answer {
            ids: vec![],
            degraded: Some(Interrupt::Deadline),
            baseline_shards: 2,
        });
        roundtrip_rsp(Response::Updated { id: 12 });
        roundtrip_rsp(Response::Health {
            snapshot: HealthSnapshot {
                panics_recovered: 1,
                quarantined_entries: 2,
                degraded_queries: 3,
                audit_repairs: 4,
                audit_evictions: 5,
                load_shed: 6,
                shard_failovers: 7,
                baseline_served: 8,
                repairs_applied: 9,
                invalidations_avoided: 10,
                repair_fallbacks: 11,
            },
            shards: vec![
                ShardStatsSnapshot {
                    hits: 10,
                    misses: 20,
                    evictions: 3,
                    quarantined: 1,
                    shed: 2,
                },
                ShardStatsSnapshot::default(),
            ],
        });
        roundtrip_rsp(Response::Audited {
            sampled: 10,
            clean: 9,
            repaired: 1,
            evicted: 0,
        });
        roundtrip_rsp(Response::Overloaded);
        roundtrip_rsp(Response::Retryable("update lock poisoned".into()));
        roundtrip_rsp(Response::Error("no such graph 4".into()));
    }

    #[test]
    fn stats_response_round_trips() {
        use gc_telemetry::{Histogram, Stage};
        let h = Histogram::new();
        for v in [3u64, 250, 250, 90_000, 1_000_000] {
            h.record(v);
        }
        let mut stages = StageSpans::default();
        stages.record(Stage::HitProbe, 12_345);
        stages.record(Stage::Verify, 678_900);
        let stats = ServiceStats {
            queries: 420,
            updates: 17,
            health: HealthSnapshot {
                load_shed: 9,
                ..HealthSnapshot::default()
            },
            shards: vec![
                ShardStatsSnapshot {
                    hits: 300,
                    misses: 120,
                    evictions: 5,
                    quarantined: 0,
                    shed: 9,
                },
                ShardStatsSnapshot {
                    hits: 10,
                    misses: 410,
                    evictions: 0,
                    quarantined: 2,
                    shed: 0,
                },
            ],
            latency: h.snapshot(),
            stages,
            index_bytes: 81_920,
            index_syncs: 14,
            index_sync_nanos: 2_700_000,
        };
        roundtrip_rsp(Response::Stats(Box::new(stats)));
        // an empty snapshot (fresh server, metrics off) also round-trips
        roundtrip_rsp(Response::Stats(Box::default()));
    }

    #[test]
    fn malformed_stats_payloads_are_rejected() {
        // a shard count far beyond the frame must fail fast, not allocate
        let mut evil = vec![RSP_HEALTH];
        evil.extend_from_slice(&[0u8; 88]); // valid health counters
        evil.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            Response::decode(&evil),
            Err(WireError::Malformed(_))
        ));
        // a histogram with the wrong bucket count is a protocol error
        let good = Response::Stats(Box::default()).encode();
        let mut bad = good.clone();
        // bucket-count word sits after tag + 2×u64 + 11×u64 health + shard count
        let at = 1 + 16 + 88 + 4;
        bad[at..at + 4].copy_from_slice(&63u32.to_be_bytes());
        assert!(matches!(
            Response::decode(&bad),
            Err(WireError::Malformed(_))
        ));
        // truncated mid-histogram
        assert!(Response::decode(&good[..good.len() - 5]).is_err());
        // trailing garbage is rejected
        let mut long = good.clone();
        long.push(0);
        assert!(Response::decode(&long).is_err());
    }

    #[test]
    fn idempotency_classification() {
        assert!(Request::Health.idempotent());
        assert!(Request::Audit {
            sample_permille: 10,
            seed: 0
        }
        .idempotent());
        assert!(Request::Query {
            kind: QueryKind::Subgraph,
            deadline_ms: 0,
            graph: graph()
        }
        .idempotent());
        assert!(!Request::Ua { id: 0, u: 0, v: 1 }.idempotent());
        assert!(!Request::Ur { id: 0, u: 0, v: 1 }.idempotent());
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xff]).is_err());
        assert!(Response::decode(&[0x42]).is_err());
        // trailing garbage is a protocol error, not ignored
        let mut body = Request::Health.encode();
        body.push(0);
        assert!(Request::decode(&body).is_err());
        // truncated graph
        let body = Request::Query {
            kind: QueryKind::Subgraph,
            deadline_ms: 0,
            graph: graph(),
        }
        .encode();
        assert!(Request::decode(&body[..body.len() - 3]).is_err());
        // a vertex count far beyond the frame must fail fast, not allocate
        let mut evil = vec![REQ_QUERY, 0, 0, 0, 0, 0];
        evil.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(Request::decode(&evil).is_err());
    }

    #[test]
    fn frames_round_trip_and_reject_bad_lengths() {
        let body = Request::Health.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        assert_eq!(buf.len(), 4 + body.len());
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), body);

        // zero-length and oversized frames are rejected before allocation
        let zero = 0u32.to_be_bytes();
        assert!(matches!(
            read_frame(&mut &zero[..]),
            Err(WireError::Malformed(_))
        ));
        let huge = (MAX_FRAME + 1).to_be_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(WireError::Malformed(_))
        ));
        // cut mid-frame: transport error
        let mut cut = Vec::new();
        write_frame(&mut cut, &body).unwrap();
        cut.truncate(cut.len() - 1);
        assert!(matches!(read_frame(&mut &cut[..]), Err(WireError::Io(_))));
    }
}
