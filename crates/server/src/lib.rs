//! `gc_server` — the networked front-end over
//! [`gc_core::ShardedGraphCache`]: ROADMAP item 1's deployment story.
//!
//! Std-TCP only (no async runtime, no registry deps), organised as:
//!
//! * [`protocol`] — length-prefixed binary frames; requests carry their
//!   own deadline so a slow shard degrades instead of hanging the line;
//! * [`service`] — admission control (bounded per-shard in-flight with
//!   explicit `Overloaded` shedding), deadline materialization into
//!   [`gc_core::QueryBudget`], updates/health/audit;
//! * [`server`] — accept loop + per-connection threads, plus the network
//!   fault hooks (`drop-conn@N`, `delay-conn@N:ms`, `stall-shard@N`) of
//!   [`gc_core::FaultPlan`];
//! * [`client`] — lazy-reconnecting blocking client with exponential
//!   backoff + jitter, retrying only what is provably safe to retry.
//!
//! Soundness contract, end to end: every request resolves as a success,
//! an explicitly `degraded`-tagged sound partial, or an explicit error —
//! never a silent divergence from cache-less Method M, never a hang. The
//! `experiments chaos --net` driver (in `gc_bench`) enforces this against
//! a fault-free oracle under injected network faults.

pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::{CacheClient, ClientError, QueryReply, RetryPolicy};
pub use protocol::{Request, Response, ServiceStats, WireError};
pub use server::{serve, ServerHandle};
pub use service::CacheService;
