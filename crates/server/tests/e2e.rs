//! End-to-end tests over real loopback TCP: answers must match the
//! in-process oracle, and every injected failure must resolve as success,
//! tagged-degraded, or an explicit error — never a hang, never silent
//! divergence.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gc_core::{FaultInjector, GcConfig, GraphCachePlus, QueryBudget, ShardedGraphCache};
use gc_graph::LabeledGraph;
use gc_server::{serve, CacheClient, CacheService, ClientError, RetryPolicy, ServerHandle};
use gc_subiso::QueryKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize, seed: u64) -> Vec<LabeledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let v = rng.random_range(4..10usize);
            gc_graph::generate::random_connected_graph(&mut rng, v, 2, |r| r.random_range(0..3u16))
        })
        .collect()
}

fn query_graph(data: &[LabeledGraph], seed: u64) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    gc_graph::generate::bfs_extract(&mut rng, &data[0], 0, 3).expect("extractable")
}

fn start_server(
    data: Vec<LabeledGraph>,
    shards: usize,
    max_inflight: usize,
    shard_faults: Option<(usize, &str)>,
    net_plan: Option<&str>,
) -> ServerHandle {
    let mut cache = ShardedGraphCache::new(GcConfig::default(), data, shards);
    if let Some((shard, plan)) = shard_faults {
        let plan = plan.to_string();
        cache.set_fault_injectors(move |i| {
            (i == shard).then(|| Arc::new(FaultInjector::new(plan.parse().unwrap())))
        });
    }
    let service = CacheService::new(cache, max_inflight, QueryBudget::UNLIMITED);
    let injector = net_plan.map(|p| Arc::new(FaultInjector::new(p.parse().unwrap())));
    serve(service, 0, injector).expect("bind loopback")
}

fn ids_of(gc: &mut GraphCachePlus, q: &LabeledGraph, kind: QueryKind) -> Vec<u64> {
    gc.execute(q, kind)
        .answer
        .iter_ones()
        .map(|g| g as u64)
        .collect()
}

/// Panics inside the server's shards print to stderr unless muted.
fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    std::panic::set_hook(prev);
    r
}

#[test]
fn answers_match_oracle_over_loopback() {
    let data = dataset(20, 1);
    let mut oracle = GraphCachePlus::new(GcConfig::default(), data.clone());
    let server = start_server(data.clone(), 2, 64, None, None);
    let mut client = CacheClient::connect(server.addr());

    for seed in 0..4 {
        let q = query_graph(&data, 100 + seed);
        for kind in [QueryKind::Subgraph, QueryKind::Supergraph] {
            let reply = client.query(&q, kind, None).expect("query");
            assert_eq!(reply.ids, ids_of(&mut oracle, &q, kind), "seed {seed}");
            assert_eq!(reply.degraded, None);
            assert_eq!(reply.baseline_shards, 0);
        }
    }

    // updates round-trip and stay consistent with the oracle
    let g0 = data[0].clone();
    let (u, v) = g0.edges().next().expect("has edges");
    assert_eq!(client.ur(0, u, v).expect("ur"), 0);
    oracle
        .apply(gc_dataset::ChangeOp::Ur { id: 0, u, v })
        .unwrap();
    let q = query_graph(&data, 100);
    let reply = client.query(&q, QueryKind::Subgraph, None).expect("query");
    assert_eq!(reply.ids, ids_of(&mut oracle, &q, QueryKind::Subgraph));

    let health = client.health().expect("health");
    assert_eq!(health.panics_recovered, 0);
    assert_eq!(health.load_shed, 0);
    server.shutdown();
}

#[test]
fn stats_scrape_reconciles_with_request_ledger() {
    let data = dataset(20, 8);
    let mut oracle = GraphCachePlus::new(GcConfig::default(), data.clone());
    // metrics-enabled config so the latency histogram records; the shared
    // start_server helper uses defaults, so build this server by hand
    let config = GcConfig {
        metrics: true,
        trace: true,
        ..GcConfig::default()
    };
    let cache = ShardedGraphCache::new(config, data.clone(), 2);
    let service = CacheService::new(cache, 64, QueryBudget::UNLIMITED);
    let server = serve(service, 0, None).expect("bind loopback");
    let mut client = CacheClient::connect(server.addr());

    let mut executed = 0u64;
    for seed in 0..5 {
        let q = query_graph(&data, 200 + seed);
        let reply = client.query(&q, QueryKind::Subgraph, None).expect("query");
        assert_eq!(
            reply.ids,
            ids_of(&mut oracle, &q, QueryKind::Subgraph),
            "seed {seed}"
        );
        executed += 1;
    }
    let g0 = data[0].clone();
    let (u, v) = g0.edges().next().expect("has edges");
    assert_eq!(client.ur(0, u, v).expect("ur"), 0);

    let stats = client.stats().expect("stats scrape");
    assert_eq!(stats.queries, executed);
    assert_eq!(stats.updates, 1);
    // reconciliation: every executed query classified exactly once per shard
    for (i, s) in stats.shards.iter().enumerate() {
        assert_eq!(s.hits + s.misses, executed, "shard {i}: {s:?}");
        assert_eq!(s.shed, 0, "shard {i}");
    }
    // metrics flag on: one latency sample per executed query
    assert_eq!(stats.latency.count, executed);
    assert!(stats.latency.max > 0, "latency recorded in microseconds");
    assert!(stats.latency.quantile(0.5) <= stats.latency.quantile(0.99));
    // trace flag on: pipeline stages accumulated real time
    assert!(
        stats.stages.total() > 0,
        "stage spans must accumulate: {:?}",
        stats.stages
    );

    // health carries the same per-shard counters
    let (health, shards) = client.health_full().expect("health");
    assert_eq!(health.load_shed, 0);
    assert_eq!(shards.len(), 2);
    for (a, b) in shards.iter().zip(stats.shards.iter()) {
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.misses, b.misses);
    }

    // the exposition text renders the same numbers
    let text = stats.render_prometheus();
    assert!(text.contains(&format!("gc_requests_total{{kind=\"query\"}} {executed}")));
    assert!(text.contains("gc_requests_total{kind=\"update\"} 1"));
    assert!(text.contains(&format!("gc_request_latency_microseconds_count {executed}")));
    server.shutdown();
}

#[test]
fn stalled_shard_returns_sound_partial_within_deadline() {
    let data = dataset(16, 2);
    let mut oracle = GraphCachePlus::new(GcConfig::default(), data.clone());
    // request #1 gets one shard stalled
    let server = start_server(data.clone(), 2, 64, None, Some("stall-shard@1"));
    let mut client = CacheClient::connect(server.addr());

    let q = query_graph(&data, 50);
    let exact = ids_of(&mut oracle, &q, QueryKind::Subgraph);
    let deadline = Duration::from_millis(60);
    let t = Instant::now();
    let reply = client
        .query(&q, QueryKind::Subgraph, Some(deadline))
        .expect("degraded is a success, not an error");
    let elapsed = t.elapsed();
    assert!(reply.degraded.is_some(), "stall must tag the answer");
    assert_eq!(reply.retries, 0, "degraded answers are never retried");
    assert!(elapsed >= deadline, "stall burns the deadline: {elapsed:?}");
    assert!(
        elapsed < deadline * 2,
        "must resolve within 2x deadline: {elapsed:?}"
    );
    for id in &reply.ids {
        assert!(exact.contains(id), "unsound positive {id}");
    }

    // request #2 is fault-free: exact again
    let reply = client
        .query(&q, QueryKind::Subgraph, Some(Duration::from_secs(5)))
        .expect("query");
    assert_eq!(reply.ids, exact);
    assert_eq!(reply.degraded, None);
    server.shutdown();
}

#[test]
fn dropped_connection_retries_idempotent_queries() {
    let data = dataset(12, 3);
    let mut oracle = GraphCachePlus::new(GcConfig::default(), data.clone());
    // the server kills the connection on the first request, before replying
    let server = start_server(data.clone(), 2, 64, None, Some("drop-conn@1"));
    let mut client = CacheClient::connect(server.addr()).with_policy(RetryPolicy {
        max_retries: 3,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(10),
    });

    let q = query_graph(&data, 60);
    let reply = client
        .query(&q, QueryKind::Subgraph, None)
        .expect("retried");
    assert_eq!(reply.ids, ids_of(&mut oracle, &q, QueryKind::Subgraph));
    assert_eq!(reply.retries, 1, "one drop, one retry");
    assert_eq!(client.retries_total(), 1);
    server.shutdown();
}

#[test]
fn updates_are_not_retried_on_transport_errors() {
    let data = dataset(12, 4);
    let server = start_server(data.clone(), 2, 64, None, Some("drop-conn@1"));
    let mut client = CacheClient::connect(server.addr());

    let g0 = &data[0];
    let (u, v) = g0.edges().next().expect("has edges");
    let err = client.ur(0, u, v).expect_err("dropped before reply");
    assert!(matches!(err, ClientError::Transport(_)), "{err}");
    assert_eq!(client.retries_total(), 0, "no blind replay of updates");

    // the drop fired before execution, so the edge is still there; the
    // caller decides to re-issue, and the second request goes through
    assert_eq!(client.ur(0, u, v).expect("reissued"), 0);
    let reply = client.query(g0, QueryKind::Subgraph, None).expect("query");
    assert!(
        !reply.ids.contains(&0),
        "graph 0 lost an edge, no longer a supergraph of its old self"
    );
    server.shutdown();
}

#[test]
fn explicit_overload_shedding_and_retry() {
    let data = dataset(10, 5);
    // one in-flight request per shard; request #1 stalls a shard long
    // enough for a second client to hit the saturated gate
    let server = start_server(data.clone(), 2, 1, None, Some("stall-shard@1"));
    let q = query_graph(&data, 70);

    let addr = server.addr();
    let slow = {
        let q = q.clone();
        std::thread::spawn(move || {
            let mut c = CacheClient::connect(addr);
            c.query(&q, QueryKind::Subgraph, Some(Duration::from_millis(400)))
        })
    };
    // give the stalled query time to take every gate slot
    std::thread::sleep(Duration::from_millis(100));
    let mut fast = CacheClient::connect(addr).with_policy(RetryPolicy {
        max_retries: 0,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(1),
    });
    let err = fast.query(&q, QueryKind::Subgraph, None).expect_err("shed");
    assert!(matches!(err, ClientError::Overloaded), "{err}");

    let slow_reply = slow.join().expect("no panic").expect("degraded success");
    assert!(slow_reply.degraded.is_some());

    // once the stall clears, the same client succeeds with retries allowed
    let mut fast = CacheClient::connect(addr).with_policy(RetryPolicy {
        max_retries: 5,
        base: Duration::from_millis(20),
        cap: Duration::from_millis(100),
    });
    let reply = fast.query(&q, QueryKind::Subgraph, None).expect("recovers");
    assert_eq!(reply.degraded, None);

    let health = fast.health().expect("health");
    assert!(health.load_shed >= 1, "shed must be counted: {health:?}");
    server.shutdown();
}

#[test]
fn twice_panicking_shard_serves_baseline_until_audit_clears() {
    let data = dataset(18, 6);
    let mut oracle = GraphCachePlus::new(GcConfig::default(), data.clone());
    // shard 1's first query panics, and so does the isolation retry:
    // that crosses the failover threshold
    let server = start_server(
        data.clone(),
        3,
        64,
        Some((1, "panic-query@1;panic-query@2")),
        None,
    );
    let mut client = CacheClient::connect(server.addr());

    let q = query_graph(&data, 80);
    let exact = ids_of(&mut oracle, &q, QueryKind::Subgraph);

    let first = quiet_panics(|| client.query(&q, QueryKind::Subgraph, None)).expect("query");
    assert_eq!(first.ids, exact, "shard-level baseline keeps it exact");
    assert_eq!(server.service().unhealthy_shards(), vec![1]);

    // while failed over, the shard's slice comes from router baseline
    let second = client.query(&q, QueryKind::Subgraph, None).expect("query");
    assert_eq!(second.ids, exact);
    assert_eq!(second.degraded, None, "baseline answers are exact");
    assert_eq!(second.baseline_shards, 1);
    let health = client.health().expect("health");
    assert_eq!(health.shard_failovers, 1);
    assert!(health.baseline_served >= 1);

    // a full audit clears the quarantine and rejoins the shard
    let (_, _, _, _) = client.audit(1.0, 9).expect("audit");
    assert!(server.service().unhealthy_shards().is_empty());
    let third = client.query(&q, QueryKind::Subgraph, None).expect("query");
    assert_eq!(third.ids, exact);
    assert_eq!(third.baseline_shards, 0, "traffic is back on the cache");
    server.shutdown();
}

#[test]
fn delayed_frames_burn_the_deadline_not_the_client() {
    let data = dataset(12, 7);
    // 80 ms server-side delay on request #1
    let server = start_server(data.clone(), 2, 64, None, Some("delay-conn@1:80"));
    let mut client = CacheClient::connect(server.addr());
    let q = query_graph(&data, 90);

    let t = Instant::now();
    let reply = client
        .query(&q, QueryKind::Subgraph, Some(Duration::from_millis(50)))
        .expect("a delayed reply is still a reply");
    let elapsed = t.elapsed();
    // the injected delay outlives the deadline, so the budget was spent
    // before execution: sound degraded answer, bounded latency
    assert!(reply.degraded.is_some(), "{reply:?}");
    assert!(elapsed >= Duration::from_millis(80));
    assert!(elapsed < Duration::from_millis(400), "{elapsed:?}");
    server.shutdown();
}
