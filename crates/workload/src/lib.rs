//! Query workload generators for the GC+ evaluation (paper §7.1).
//!
//! Two workload families, both producing 10,000-query streams (configurable
//! here) with the literature-typical sizes of 4, 8, 12, 16 and 20 edges:
//!
//! * **Type A** ([`typea`]) — queries extracted by BFS from dataset graphs;
//!   the source graph and the start node are each drawn from either a
//!   Uniform or a Zipf(α = 1.4) distribution, yielding the paper's three
//!   categories **UU**, **ZU** and **ZZ** (first letter = graph selection,
//!   second = node selection);
//! * **Type B** ([`typeb`]) — per-size pools of random-walk queries: a
//!   positive pool (non-empty answers against the initial dataset) and a
//!   *no-answer* pool (queries relabeled until they keep a non-empty
//!   candidate set but have an empty answer set). Workload items flip a
//!   biased coin (no-answer probability 0%, 20% or 50%) and Zipf-select
//!   from the chosen pool — the paper's **0%/20%/50%** categories.
//!
//! Zipf skew everywhere defaults to the paper's α = 1.4.

pub mod typea;
pub mod typeb;

pub use typea::{generate_type_a, Dist, TypeAConfig};
pub use typeb::{generate_type_b, TypeBConfig};

use gc_graph::LabeledGraph;
use gc_subiso::QueryKind;

/// The paper's query sizes (edge counts).
pub const PAPER_QUERY_SIZES: [usize; 5] = [4, 8, 12, 16, 20];

/// The paper's default Zipf skew.
pub const PAPER_ZIPF_ALPHA: f64 = 1.4;

/// A generated query stream.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload label as it appears in the paper's figures (e.g. "ZU",
    /// "20%").
    pub name: String,
    /// The queries, in arrival order.
    pub queries: Vec<LabeledGraph>,
    /// Whether the stream consists of subgraph or supergraph queries.
    pub kind: QueryKind,
}

impl Workload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` iff the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Number of *distinct* queries up to isomorphism (canonical-form
    /// dedup). Zipf-selected streams repeat heavily; this quantifies the
    /// repetition the cache's exact-match optimal case can exploit.
    pub fn distinct_queries(&self) -> usize {
        let mut keys: Vec<gc_graph::CanonicalForm> =
            self.queries.iter().map(gc_graph::canonical_form).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_dedup_counts_isomorphism_classes() {
        let g1 = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]).unwrap();
        let g2 = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]).unwrap();
        // same edge with vertices written in the opposite order: an
        // isomorphic restatement, counted once
        let g3 = LabeledGraph::from_parts(vec![1, 0], &[(0, 1)]).unwrap();
        // genuinely different labels
        let g4 = LabeledGraph::from_parts(vec![2, 2], &[(0, 1)]).unwrap();
        let w = Workload {
            name: "test".into(),
            queries: vec![g1, g2, g3, g4],
            kind: QueryKind::Subgraph,
        };
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert_eq!(w.distinct_queries(), 2);
    }
}
