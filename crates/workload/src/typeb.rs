//! Type B workloads — with no-answer queries (paper §7.1).
//!
//! > "For each of the query sizes, we first create two query pools: a
//! > 10,000-query pool with queries with non-empty answer sets against the
//! > initial dataset, and a second 3,000-query pool with no match in any
//! > untreated dataset graph (i.e., empty result set). Queries for the
//! > first pool are extracted from dataset graphs by uniformly selecting a
//! > start node across all nodes in all dataset graphs, and then
//! > performing a random walk till the required query graph size is
//! > reached. Generation of no-answer queries has one extra step: we
//! > continuously relabel the nodes in the query with randomly selected
//! > labels from the dataset, until the resulting query has a non-empty
//! > candidate set but an empty answer set against the dataset graphs.
//! > Once the query pools are filled up, we generate workloads by first
//! > flipping a biased coin to choose between the two pools (with the
//! > 'no-answer' pool selected with probability 0%, 20% or 50%), then
//! > randomly (Zipf) selecting a query from the chosen pool."
//!
//! *Candidate set* here is the filter-stage proxy: dataset graphs whose
//! size and label multiset dominate the query's (the same necessary
//! conditions every FTV filter implies), so a no-answer query still forces
//! real sub-iso work — that is precisely what makes the 20%/50% workloads
//! harder for Method M and more rewarding for the §6.3 empty-answer
//! optimal case.

use gc_graph::{LabeledGraph, Zipf};
use gc_subiso::{Algorithm, QueryKind, SubgraphMatcher};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Workload, PAPER_QUERY_SIZES, PAPER_ZIPF_ALPHA};

/// Configuration for [`generate_type_b`].
#[derive(Debug, Clone)]
pub struct TypeBConfig {
    /// Number of queries in the workload (paper: 10,000).
    pub num_queries: usize,
    /// Positive-pool size per query size (paper: 10,000).
    pub positive_pool: usize,
    /// No-answer-pool size per query size (paper: 3,000).
    pub noanswer_pool: usize,
    /// Probability of drawing from the no-answer pool (0.0 / 0.2 / 0.5).
    pub noanswer_prob: f64,
    /// Query sizes in edges (paper: 4/8/12/16/20).
    pub sizes: Vec<usize>,
    /// Zipf skew for pool selection (paper: 1.4).
    pub zipf_alpha: f64,
    /// RNG seed.
    pub seed: u64,
    /// Bound on relabeling attempts per no-answer query before a fresh
    /// walk is drawn.
    pub max_relabel_attempts: usize,
}

impl TypeBConfig {
    /// Paper-shaped configuration with scaled pool sizes. `noanswer_prob`
    /// ∈ {0.0, 0.2, 0.5} gives the "0%", "20%", "50%" categories.
    pub fn scaled(
        num_queries: usize,
        positive_pool: usize,
        noanswer_pool: usize,
        noanswer_prob: f64,
        seed: u64,
    ) -> Self {
        TypeBConfig {
            num_queries,
            positive_pool,
            noanswer_pool,
            noanswer_prob,
            sizes: PAPER_QUERY_SIZES.to_vec(),
            zipf_alpha: PAPER_ZIPF_ALPHA,
            seed,
            max_relabel_attempts: 200,
        }
    }

    /// Workload label as in the paper's figures ("0%", "20%", "50%").
    pub fn name(&self) -> String {
        format!("{}%", (self.noanswer_prob * 100.0).round() as u32)
    }
}

/// Necessary-condition candidate check used during no-answer generation:
/// `true` iff some dataset graph could pass an FTV filter for this query.
fn has_candidates(query: &LabeledGraph, dataset: &[LabeledGraph]) -> bool {
    dataset.iter().any(|g| {
        query.vertex_count() <= g.vertex_count()
            && query.edge_count() <= g.edge_count()
            && query.labels_dominated_by(g)
    })
}

/// `true` iff the query matches no dataset graph (empty answer set).
fn has_empty_answer(
    query: &LabeledGraph,
    dataset: &[LabeledGraph],
    matcher: &dyn SubgraphMatcher,
) -> bool {
    !dataset.iter().any(|g| matcher.contains(query, g))
}

struct NodeIndex {
    /// Prefix sums of vertex counts, for uniform node selection "across
    /// all nodes in all dataset graphs".
    prefix: Vec<usize>,
    total: usize,
}

impl NodeIndex {
    fn new(dataset: &[LabeledGraph]) -> Self {
        let mut prefix = Vec::with_capacity(dataset.len());
        let mut acc = 0usize;
        for g in dataset {
            prefix.push(acc);
            acc += g.vertex_count();
        }
        NodeIndex { prefix, total: acc }
    }

    /// Uniformly selects `(graph index, node id)` over all nodes.
    fn sample(&self, rng: &mut StdRng) -> (usize, u32) {
        let k = rng.random_range(0..self.total);
        let gi = match self.prefix.binary_search(&k) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        ((gi), (k - self.prefix[gi]) as u32)
    }
}

/// Draws one positive-pool query of exactly `size` edges.
fn draw_positive(
    dataset: &[LabeledGraph],
    index: &NodeIndex,
    size: usize,
    rng: &mut StdRng,
) -> LabeledGraph {
    loop {
        let (gi, node) = index.sample(rng);
        if let Some(q) = gc_graph::generate::random_walk_extract(rng, &dataset[gi], node, size) {
            return q;
        }
    }
}

/// Global label pool of the dataset (frequency-weighted, as "randomly
/// selected labels from the dataset" implies).
fn label_pool(dataset: &[LabeledGraph]) -> Vec<u16> {
    dataset
        .iter()
        .flat_map(|g| g.labels().iter().copied())
        .collect()
}

/// Generates a Type B workload against the initial dataset.
///
/// Pool construction dominates the cost (each no-answer candidate must be
/// verified to have an empty answer set by real sub-iso tests); pools are
/// per query size, exactly as the paper describes.
pub fn generate_type_b(dataset: &[LabeledGraph], cfg: &TypeBConfig) -> Workload {
    assert!(!dataset.is_empty(), "Type B needs a non-empty dataset");
    assert!(
        (0.0..=1.0).contains(&cfg.noanswer_prob),
        "no-answer probability must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let index = NodeIndex::new(dataset);
    let labels = label_pool(dataset);
    let matcher = Algorithm::Vf2Plus.matcher();

    // --- pool construction, per size ---
    let mut positive_pools: Vec<Vec<LabeledGraph>> = Vec::with_capacity(cfg.sizes.len());
    let mut noanswer_pools: Vec<Vec<LabeledGraph>> = Vec::with_capacity(cfg.sizes.len());
    for &size in &cfg.sizes {
        let mut pos = Vec::with_capacity(cfg.positive_pool);
        while pos.len() < cfg.positive_pool {
            pos.push(draw_positive(dataset, &index, size, &mut rng));
        }
        let mut neg = Vec::with_capacity(cfg.noanswer_pool);
        'outer: while neg.len() < cfg.noanswer_pool {
            // fresh walk, then relabel until no-answer with candidates
            let base = draw_positive(dataset, &index, size, &mut rng);
            for _ in 0..cfg.max_relabel_attempts {
                let mut q = base.clone();
                let relabeled: Vec<u16> = (0..q.vertex_count())
                    .map(|_| labels[rng.random_range(0..labels.len())])
                    .collect();
                // rebuild with new labels (vertex labels are immutable on
                // LabeledGraph by design; reconstruct instead)
                let edges: Vec<_> = q.edges().collect();
                q = LabeledGraph::from_parts(relabeled, &edges)
                    .expect("edges come from a valid graph");
                if has_candidates(&q, dataset) && has_empty_answer(&q, dataset, matcher) {
                    neg.push(q);
                    continue 'outer;
                }
            }
            // fall through: draw a fresh base walk and retry
        }
        positive_pools.push(pos);
        noanswer_pools.push(neg);
    }

    // --- workload assembly ---
    let pos_zipf = Zipf::new(cfg.positive_pool.max(1), cfg.zipf_alpha);
    let neg_zipf = Zipf::new(cfg.noanswer_pool.max(1), cfg.zipf_alpha);
    let mut queries = Vec::with_capacity(cfg.num_queries);
    for _ in 0..cfg.num_queries {
        let size_idx = rng.random_range(0..cfg.sizes.len());
        let use_noanswer = cfg.noanswer_prob > 0.0 && rng.random::<f64>() < cfg.noanswer_prob;
        let q = if use_noanswer && !noanswer_pools[size_idx].is_empty() {
            let k = neg_zipf
                .sample(&mut rng)
                .min(noanswer_pools[size_idx].len() - 1);
            noanswer_pools[size_idx][k].clone()
        } else {
            let k = pos_zipf
                .sample(&mut rng)
                .min(positive_pools[size_idx].len() - 1);
            positive_pools[size_idx][k].clone()
        };
        queries.push(q);
    }

    Workload {
        name: cfg.name(),
        queries,
        kind: QueryKind::Subgraph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::generate::random_connected_graph;

    fn dataset(count: usize, seed: u64) -> Vec<LabeledGraph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let n = rng.random_range(15..30usize);
                random_connected_graph(&mut rng, n, 6, |r| r.random_range(0..6u16))
            })
            .collect()
    }

    fn small_cfg(prob: f64, seed: u64) -> TypeBConfig {
        TypeBConfig {
            num_queries: 40,
            positive_pool: 10,
            noanswer_pool: 5,
            noanswer_prob: prob,
            sizes: vec![4, 8],
            zipf_alpha: PAPER_ZIPF_ALPHA,
            seed,
            max_relabel_attempts: 300,
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(small_cfg(0.0, 0).name(), "0%");
        assert_eq!(small_cfg(0.2, 0).name(), "20%");
        assert_eq!(small_cfg(0.5, 0).name(), "50%");
    }

    #[test]
    fn zero_percent_workload_all_positive() {
        let data = dataset(8, 1);
        let w = generate_type_b(&data, &small_cfg(0.0, 2));
        assert_eq!(w.len(), 40);
        let m = Algorithm::Vf2.matcher();
        for q in &w.queries {
            assert!(data.iter().any(|g| m.contains(q, g)));
        }
    }

    #[test]
    fn fifty_percent_contains_noanswer_queries() {
        let data = dataset(8, 3);
        let w = generate_type_b(&data, &small_cfg(0.5, 4));
        let m = Algorithm::Vf2.matcher();
        let empties = w
            .queries
            .iter()
            .filter(|q| !data.iter().any(|g| m.contains(q, g)))
            .count();
        // 40 queries at p=0.5: ~20 expected, demand at least a handful
        assert!(empties >= 8, "got {empties} no-answer queries");
        // every no-answer query still has FTV candidates
        for q in &w.queries {
            assert!(has_candidates(q, &data));
        }
    }

    #[test]
    fn pool_reuse_causes_repetition() {
        let data = dataset(8, 5);
        let w = generate_type_b(&data, &small_cfg(0.2, 6));
        // 40 draws from pools of ≤ 10+5 per size → repetitions must occur
        assert!(w.distinct_queries() < w.len());
    }

    #[test]
    fn determinism() {
        let data = dataset(6, 7);
        let a = generate_type_b(&data, &small_cfg(0.2, 8));
        let b = generate_type_b(&data, &small_cfg(0.2, 8));
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn node_index_uniform_over_all_nodes() {
        let data = dataset(5, 9);
        let idx = NodeIndex::new(&data);
        let total: usize = data.iter().map(|g| g.vertex_count()).sum();
        assert_eq!(idx.total, total);
        let mut rng = StdRng::seed_from_u64(10);
        let mut per_graph = vec![0usize; data.len()];
        for _ in 0..5000 {
            let (gi, node) = idx.sample(&mut rng);
            assert!((node as usize) < data[gi].vertex_count());
            per_graph[gi] += 1;
        }
        // frequency proportional to vertex count (loose check)
        for (gi, g) in data.iter().enumerate() {
            let expected = 5000.0 * g.vertex_count() as f64 / total as f64;
            assert!(
                (per_graph[gi] as f64 - expected).abs() < expected * 0.5 + 20.0,
                "graph {gi}: {} vs {expected}",
                per_graph[gi]
            );
        }
    }
}
