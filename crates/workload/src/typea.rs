//! Type A workloads (paper §7.1).
//!
//! > "first, a source graph is randomly selected from dataset graphs;
//! > then, a node is selected randomly in the said graph; finally, a query
//! > size is selected uniformly at random from given sizes and a BFS is
//! > performed starting from the selected node. […] For the first two
//! > random selections above, we have used two different distributions;
//! > namely, Uniform (U) and Zipf (Z) […]. Ultimately, we had three
//! > categories of Type A workloads: 'UU', 'ZU' and 'ZZ'."
//!
//! Because every Type A query is a BFS-extracted subgraph of a dataset
//! graph (labels preserved), each has a non-empty answer set against the
//! initial dataset — its source graph at minimum.

use gc_graph::{LabeledGraph, Zipf};
use gc_subiso::QueryKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Workload, PAPER_QUERY_SIZES, PAPER_ZIPF_ALPHA};

/// Selection distribution for source graphs / start nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Uniform over the domain.
    Uniform,
    /// Zipf with the given α; rank 0 (the most likely) is index 0.
    Zipf(f64),
}

impl Dist {
    fn sampler(self, n: usize) -> DistSampler {
        match self {
            Dist::Uniform => DistSampler::Uniform(n),
            Dist::Zipf(alpha) => DistSampler::Zipf(Zipf::new(n, alpha)),
        }
    }

    /// Paper letter code: U or Z.
    pub fn letter(self) -> char {
        match self {
            Dist::Uniform => 'U',
            Dist::Zipf(_) => 'Z',
        }
    }
}

enum DistSampler {
    Uniform(usize),
    Zipf(Zipf),
}

impl DistSampler {
    fn sample(&self, rng: &mut StdRng) -> usize {
        match self {
            DistSampler::Uniform(n) => rng.random_range(0..*n),
            DistSampler::Zipf(z) => z.sample(rng),
        }
    }
}

/// Configuration for [`generate_type_a`].
#[derive(Debug, Clone)]
pub struct TypeAConfig {
    /// Number of queries (paper: 10,000).
    pub num_queries: usize,
    /// Distribution used to pick the source graph (first letter).
    pub graph_dist: Dist,
    /// Distribution used to pick the start node (second letter).
    pub node_dist: Dist,
    /// Query sizes in edges, chosen uniformly (paper: 4/8/12/16/20).
    pub sizes: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl TypeAConfig {
    /// The paper's UU workload.
    pub fn uu(num_queries: usize, seed: u64) -> Self {
        Self::with_dists(num_queries, Dist::Uniform, Dist::Uniform, seed)
    }

    /// The paper's ZU workload (Zipf graphs, uniform nodes).
    pub fn zu(num_queries: usize, seed: u64) -> Self {
        Self::with_dists(
            num_queries,
            Dist::Zipf(PAPER_ZIPF_ALPHA),
            Dist::Uniform,
            seed,
        )
    }

    /// The paper's ZZ workload (Zipf graphs, Zipf nodes).
    pub fn zz(num_queries: usize, seed: u64) -> Self {
        Self::with_dists(
            num_queries,
            Dist::Zipf(PAPER_ZIPF_ALPHA),
            Dist::Zipf(PAPER_ZIPF_ALPHA),
            seed,
        )
    }

    fn with_dists(num_queries: usize, graph_dist: Dist, node_dist: Dist, seed: u64) -> Self {
        TypeAConfig {
            num_queries,
            graph_dist,
            node_dist,
            sizes: PAPER_QUERY_SIZES.to_vec(),
            seed,
        }
    }

    /// Workload label ("UU"/"ZU"/"ZZ").
    pub fn name(&self) -> String {
        format!("{}{}", self.graph_dist.letter(), self.node_dist.letter())
    }
}

/// Generates a Type A workload against the initial dataset.
///
/// Draws whose BFS cannot reach the requested size (tiny source graph) are
/// retried with fresh draws; after a bounded number of attempts the target
/// size falls back to the largest extractable size so generation always
/// terminates.
pub fn generate_type_a(dataset: &[LabeledGraph], cfg: &TypeAConfig) -> Workload {
    assert!(!dataset.is_empty(), "Type A needs a non-empty dataset");
    assert!(
        !cfg.sizes.is_empty(),
        "Type A needs at least one query size"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let graph_sampler = cfg.graph_dist.sampler(dataset.len());

    let mut queries = Vec::with_capacity(cfg.num_queries);
    while queries.len() < cfg.num_queries {
        let mut produced = None;
        for _attempt in 0..32 {
            let gi = graph_sampler.sample(&mut rng);
            let source = &dataset[gi];
            if source.vertex_count() == 0 || source.edge_count() == 0 {
                continue;
            }
            let node_sampler = cfg.node_dist.sampler(source.vertex_count());
            let start = node_sampler.sample(&mut rng) as u32;
            let size = cfg.sizes[rng.random_range(0..cfg.sizes.len())];
            if let Some(q) = gc_graph::generate::bfs_extract(&mut rng, source, start, size) {
                produced = Some(q);
                break;
            }
        }
        let q = produced.unwrap_or_else(|| {
            // fallback: extract whatever the largest graph can give
            let (gi, _) = dataset
                .iter()
                .enumerate()
                .max_by_key(|(_, g)| g.edge_count())
                .expect("non-empty dataset");
            let size = dataset[gi].edge_count().min(cfg.sizes[0]).max(1);
            gc_graph::generate::bfs_extract(&mut rng, &dataset[gi], 0, size)
                .expect("largest graph supports smallest size")
        });
        queries.push(q);
    }

    Workload {
        name: cfg.name(),
        queries,
        kind: QueryKind::Subgraph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::generate::random_connected_graph;
    use gc_subiso::Algorithm;

    fn dataset(count: usize, seed: u64) -> Vec<LabeledGraph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let n = rng.random_range(20..40usize);
                random_connected_graph(&mut rng, n, 8, |r| r.random_range(0..5u16))
            })
            .collect()
    }

    #[test]
    fn names_match_paper_codes() {
        assert_eq!(TypeAConfig::uu(1, 0).name(), "UU");
        assert_eq!(TypeAConfig::zu(1, 0).name(), "ZU");
        assert_eq!(TypeAConfig::zz(1, 0).name(), "ZZ");
    }

    #[test]
    fn queries_have_paper_sizes_and_are_connected() {
        let data = dataset(20, 1);
        let w = generate_type_a(&data, &TypeAConfig::uu(50, 2));
        assert_eq!(w.len(), 50);
        for q in &w.queries {
            assert!(
                PAPER_QUERY_SIZES.contains(&q.edge_count()),
                "{}",
                q.edge_count()
            );
            assert!(q.is_connected());
        }
    }

    #[test]
    fn queries_have_nonempty_answers() {
        let data = dataset(10, 3);
        let w = generate_type_a(&data, &TypeAConfig::zz(20, 4));
        let m = Algorithm::Vf2Plus.matcher();
        for q in &w.queries {
            assert!(
                data.iter().any(|g| m.contains(q, g)),
                "Type A query must match at least one dataset graph"
            );
        }
    }

    #[test]
    fn zipf_graph_selection_skews_sources() {
        // With Zipf graph selection, queries should predominantly come from
        // low-index graphs. We can't observe the source directly, but label
        // the first graph uniquely and count queries using that label.
        let mut data = dataset(50, 5);
        // graph 0 gets an exclusive label 99
        let mut g0 = LabeledGraph::new();
        for _ in 0..30 {
            g0.add_vertex(99);
        }
        for i in 1..30 {
            g0.add_edge(i - 1, i).unwrap();
        }
        data[0] = g0;
        let wz = generate_type_a(&data, &TypeAConfig::zz(300, 6));
        let wu = generate_type_a(&data, &TypeAConfig::uu(300, 6));
        let count_99 = |w: &Workload| {
            w.queries
                .iter()
                .filter(|q| q.labels().contains(&99))
                .count()
        };
        assert!(
            count_99(&wz) > 3 * count_99(&wu).max(1),
            "Zipf: {} vs Uniform: {}",
            count_99(&wz),
            count_99(&wu)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let data = dataset(10, 7);
        let a = generate_type_a(&data, &TypeAConfig::zu(30, 8));
        let b = generate_type_a(&data, &TypeAConfig::zu(30, 8));
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn tiny_dataset_falls_back_gracefully() {
        // dataset whose graphs can't host 20-edge queries
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<LabeledGraph> = (0..3)
            .map(|_| random_connected_graph(&mut rng, 4, 1, |r| r.random_range(0..2u16)))
            .collect();
        let w = generate_type_a(&data, &TypeAConfig::uu(10, 10));
        assert_eq!(w.len(), 10);
        for q in &w.queries {
            assert!(q.edge_count() >= 1);
        }
    }
}
