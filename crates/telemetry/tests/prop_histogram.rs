//! Property tests for the log-bucketed histogram against a sorted-vector
//! oracle: every reported quantile must land in the same log bucket as the
//! exact order statistic, merging must be exactly associative with
//! recording, and the exact max must always survive.

use gc_telemetry::{bucket_index, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// The exact order statistic the histogram's `quantile(q)` approximates:
/// the smallest value whose rank covers `ceil(q * n)`.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #[test]
    fn quantiles_match_sorted_vector_oracle_at_bucket_resolution(
        values in prop::collection::vec(0u64..5_000_000, 1..400),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();

        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.max, *sorted.last().unwrap());

        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let got = snap.quantile(q);
            let exact = oracle_quantile(&sorted, q);
            // log-bucket resolution: the reported value must sit in the
            // same bucket as the exact order statistic, and never exceed
            // the true maximum
            prop_assert_eq!(
                bucket_index(got),
                bucket_index(exact),
                "q={} got={} exact={}",
                q,
                got,
                exact
            );
            prop_assert!(got <= snap.max);
        }
        // the top quantile is exact, not bucket-rounded
        prop_assert_eq!(snap.quantile(1.0), *sorted.last().unwrap());
    }

    #[test]
    fn arbitrary_splits_merge_to_the_same_snapshot(
        values in prop::collection::vec(0u64..1_000_000_000, 0..200),
        split in 0usize..200,
    ) {
        let cut = split.min(values.len());
        let (left, right) = values.split_at(cut);
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for &v in left {
            a.record(v);
        }
        for &v in right {
            b.record(v);
        }
        for &v in &values {
            whole.record(v);
        }
        let mut folded = a.snapshot();
        folded.merge(&b.snapshot());
        prop_assert_eq!(folded, whole.snapshot());
        // merging an empty snapshot is the identity
        folded.merge(&HistogramSnapshot::default());
        prop_assert_eq!(folded, whole.snapshot());
    }
}
