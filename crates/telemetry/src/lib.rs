//! `gc_telemetry` — lock-free observability primitives for GraphCache+.
//!
//! Three layers, none of which may slow the query hot path down:
//!
//! * **Counters and gauges** — named `AtomicU64`s ([`Counter`], [`Gauge`])
//!   collected in a [`Registry`]. Updates are `fetch_add`/`store` with
//!   `Relaxed` ordering; registration happens once at setup, so the hot
//!   path never takes a lock. Counters are cheap enough to stay always-on.
//! * **Latency histograms** — [`Histogram`]: log-bucketed (one bucket per
//!   power of two), recorded with one `fetch_add` + one `fetch_max`.
//!   [`HistogramSnapshot`]s are plain data, merge field-wise, and report
//!   p50/p95/p99/max. Recording is intended to sit behind a config flag
//!   (`GcConfig::metrics`) so paper-setting timings are unaffected.
//! * **Trace spans** — [`Stage`] names the pipeline stages of one query
//!   (signature pre-filter, candidate scan, sub-iso verify, hit probe,
//!   admission, audit, delta repair); [`StageSpans`] is a per-query record
//!   of nanoseconds
//!   spent in each, attached to `QueryMetrics` and folded into per-cache
//!   totals. Span recording sits behind `GcConfig::trace`.
//!
//! [`Exposition`] renders any of the above into Prometheus-style text
//! (`# TYPE` headers, `name{label="v"} value` samples, cumulative
//! `_bucket{le="..."}` histogram lines) for the server's `stats` scrape
//! and the `experiments` drivers' `METRICS_report.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log buckets: bucket 0 holds the value 0, bucket `b` (1..)
/// holds values in `[2^(b-1), 2^b)`, and the last bucket absorbs the tail.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing lock-free counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free gauge (a value that can go up or down).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Index of the log bucket holding `v`: 0 for 0, else `floor(log2 v) + 1`,
/// capped at the last bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper edge of bucket `b` (the value reported for quantiles
/// that land in it). The last bucket is open-ended.
#[inline]
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A live log-bucketed histogram. One `fetch_add` on the bucket, one on
/// count/sum, one `fetch_max` for the exact maximum — no locks, no
/// allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy (individual cells exact, set not read
    /// atomically — same contract as `RuntimeHealth::snapshot`).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        };
        for (dst, src) in s.buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        s
    }
}

/// Plain-data copy of a [`Histogram`]: mergeable, serializable, and the
/// unit that travels over the wire in a `stats` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Exact maximum observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Field-wise sum: merging per-client (or per-shard) snapshots yields
    /// exactly the snapshot of the merged stream.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`, resolved to the containing
    /// bucket's upper edge (clamped to the exact max, which keeps the tail
    /// honest). 0 when empty. Non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (log-bucket resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (log-bucket resolution).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (log-bucket resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact maximum observed value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One pipeline stage of a GC+ query, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// O(1) signature pre-filter inside Method M.
    Prefilter,
    /// The Method M scan over the pruned candidate set (pre-filter and
    /// verification included).
    CandidateScan,
    /// Sub-iso decision procedures (VF2/VF2+/GQL) alone.
    Verify,
    /// Hit discovery against cache + window entries.
    HitProbe,
    /// Window push / cache admission / credit attribution.
    Admission,
    /// Consistency-auditor passes (per cache, not per query).
    Audit,
    /// Delta-repair maintenance: classifying touched entries and splicing
    /// repaired bits in place instead of invalidating.
    Repair,
}

/// All stages, in the order their spans are laid out in [`StageSpans`].
pub const STAGES: [Stage; 7] = [
    Stage::Prefilter,
    Stage::CandidateScan,
    Stage::Verify,
    Stage::HitProbe,
    Stage::Admission,
    Stage::Audit,
    Stage::Repair,
];

impl Stage {
    /// Stable metric-name suffix.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Prefilter => "prefilter",
            Stage::CandidateScan => "candidate_scan",
            Stage::Verify => "verify",
            Stage::HitProbe => "hit_probe",
            Stage::Admission => "admission",
            Stage::Audit => "audit",
            Stage::Repair => "repair",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Prefilter => 0,
            Stage::CandidateScan => 1,
            Stage::Verify => 2,
            Stage::HitProbe => 3,
            Stage::Admission => 4,
            Stage::Audit => 5,
            Stage::Repair => 6,
        }
    }
}

/// Nanoseconds spent in each pipeline stage — the per-query trace record
/// attached to `QueryMetrics`, and (summed) the per-cache stage totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSpans {
    nanos: [u64; STAGES.len()],
}

impl StageSpans {
    /// An all-zero record.
    pub fn new() -> Self {
        StageSpans::default()
    }

    /// Adds `nanos` to the given stage's span.
    pub fn record(&mut self, stage: Stage, nanos: u64) {
        self.nanos[stage.index()] += nanos;
    }

    /// Nanoseconds recorded for one stage.
    pub fn get(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()]
    }

    /// Field-wise sum.
    pub fn merge(&mut self, other: &StageSpans) {
        for (dst, src) in self.nanos.iter_mut().zip(&other.nanos) {
            *dst += src;
        }
    }

    /// Total nanoseconds across all stages.
    pub fn total(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// `(stage, nanos)` pairs in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        STAGES.iter().map(move |&s| (s, self.nanos[s.index()]))
    }
}

/// A named collection of live metrics. Built once at setup (registration
/// takes `&mut self`); afterwards every handle is an `Arc` whose updates
/// are lock-free. `render` folds the current values into Prometheus text.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    histograms: Vec<(String, Arc<Histogram>)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or re-fetches) a named counter.
    pub fn counter(&mut self, name: &str) -> Arc<Counter> {
        if let Some((_, c)) = self.counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        self.counters.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// Registers (or re-fetches) a named gauge.
    pub fn gauge(&mut self, name: &str) -> Arc<Gauge> {
        if let Some((_, g)) = self.gauges.iter().find(|(n, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        self.gauges.push((name.to_string(), Arc::clone(&g)));
        g
    }

    /// Registers (or re-fetches) a named histogram.
    pub fn histogram(&mut self, name: &str) -> Arc<Histogram> {
        if let Some((_, h)) = self.histograms.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        self.histograms.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Renders every registered metric into one exposition.
    pub fn render(&self) -> String {
        let mut exp = Exposition::new();
        for (name, c) in &self.counters {
            exp.counter(name, &[], c.get());
        }
        for (name, g) in &self.gauges {
            exp.gauge(name, &[], g.get());
        }
        for (name, h) in &self.histograms {
            exp.histogram(name, &[], &h.snapshot());
        }
        exp.render()
    }
}

/// Prometheus-style text builder: `# TYPE` headers, `name{k="v"} value`
/// samples, cumulative `_bucket{le="..."}` lines for histograms.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Exposition::default()
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: impl std::fmt::Display) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(&format!("{k}=\"{v}\""));
            }
            self.out.push('}');
        }
        self.out.push_str(&format!(" {value}\n"));
    }

    /// Appends one counter sample.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        if !self.out.contains(&format!("# TYPE {name} ")) {
            self.out.push_str(&format!("# TYPE {name} counter\n"));
        }
        self.sample(name, labels, value);
    }

    /// Appends one gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        if !self.out.contains(&format!("# TYPE {name} ")) {
            self.out.push_str(&format!("# TYPE {name} gauge\n"));
        }
        self.sample(name, labels, value);
    }

    /// Appends one histogram: cumulative `_bucket{le=..}` lines (empty
    /// buckets elided, `+Inf` always present), then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        if !self.out.contains(&format!("# TYPE {name} ")) {
            self.out.push_str(&format!("# TYPE {name} histogram\n"));
        }
        let mut cum = 0u64;
        for (b, &n) in snap.buckets.iter().enumerate() {
            cum += n;
            if n == 0 {
                continue;
            }
            let mut le_labels: Vec<(&str, &str)> = labels.to_vec();
            let le = if b >= HISTOGRAM_BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                bucket_upper(b).to_string()
            };
            le_labels.push(("le", &le));
            self.sample(&format!("{name}_bucket"), &le_labels, cum);
        }
        let mut inf_labels: Vec<(&str, &str)> = labels.to_vec();
        inf_labels.push(("le", "+Inf"));
        self.sample(&format!("{name}_bucket"), &inf_labels, snap.count);
        self.sample(&format!("{name}_sum"), labels, snap.sum);
        self.sample(&format!("{name}_count"), labels, snap.count);
    }

    /// The accumulated text.
    pub fn render(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_are_lock_free_and_shared() {
        let mut reg = Registry::new();
        let c = reg.counter("gc_requests_total");
        let again = reg.counter("gc_requests_total");
        c.inc();
        again.add(4);
        assert_eq!(c.get(), 5, "same name resolves to the same counter");
        let g = reg.gauge("gc_occupancy");
        g.set(7);
        g.set(3);
        assert_eq!(reg.gauge("gc_occupancy").get(), 3);
        let text = reg.render();
        assert!(text.contains("# TYPE gc_requests_total counter"));
        assert!(text.contains("gc_requests_total 5"));
        assert!(text.contains("gc_occupancy 3"));
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // bucket 0 = {0}; bucket b = [2^(b-1), 2^b)
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for b in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = 1u64 << (b - 1);
            assert_eq!(bucket_index(lo), b, "lower edge of bucket {b}");
            assert_eq!(bucket_index(lo + (lo - 1)), b, "upper edge of bucket {b}");
            if b + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(bucket_index(lo * 2), b + 1, "first value past bucket {b}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // the reported quantile value lands in the same bucket as the
        // observation it stands for
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 900, 1023, 1024, 1 << 40] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.max, 1 << 40);
        assert_eq!(s.quantile(1.0), 1 << 40, "top quantile clamps to max");
    }

    #[test]
    fn merge_of_snapshots_equals_snapshot_of_merged() {
        let a = Histogram::new();
        let b = Histogram::new();
        let merged = Histogram::new();
        for (i, v) in [3u64, 17, 0, 255, 256, 99, 1 << 30, 5].iter().enumerate() {
            if i % 2 == 0 { &a } else { &b }.record(*v);
            merged.record(*v);
        }
        let mut folded = a.snapshot();
        folded.merge(&b.snapshot());
        assert_eq!(folded, merged.snapshot());
        // and quantiles agree, by construction
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(folded.quantile(q), merged.snapshot().quantile(q));
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v * v);
        }
        let s = h.snapshot();
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = s.quantile(q);
            assert!(v >= prev, "quantile({q}) regressed: {v} < {prev}");
            assert!(v <= s.max, "quantile({q}) above max");
            prev = v;
        }
        assert_eq!(s.p50(), s.quantile(0.5));
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99() && s.p99() <= s.max());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn stage_spans_record_merge_and_iterate() {
        let mut q = StageSpans::new();
        q.record(Stage::HitProbe, 120);
        q.record(Stage::Verify, 480);
        q.record(Stage::Verify, 20);
        assert_eq!(q.get(Stage::Verify), 500);
        assert_eq!(q.get(Stage::Prefilter), 0);
        let mut total = StageSpans::new();
        total.merge(&q);
        total.merge(&q);
        assert_eq!(total.get(Stage::HitProbe), 240);
        assert_eq!(total.total(), 1240);
        let names: Vec<&str> = total.iter().map(|(s, _)| s.name()).collect();
        assert_eq!(
            names,
            [
                "prefilter",
                "candidate_scan",
                "verify",
                "hit_probe",
                "admission",
                "audit",
                "repair"
            ]
        );
    }

    #[test]
    fn exposition_renders_prometheus_histogram_lines() {
        let h = Histogram::new();
        for v in [1u64, 3, 3, 300] {
            h.record(v);
        }
        let mut exp = Exposition::new();
        exp.counter("gc_queries_total", &[("shard", "0")], 4);
        exp.histogram("gc_query_latency_ns", &[], &h.snapshot());
        let text = exp.render();
        assert!(text.contains("# TYPE gc_queries_total counter"));
        assert!(text.contains("gc_queries_total{shard=\"0\"} 4"));
        assert!(text.contains("# TYPE gc_query_latency_ns histogram"));
        // cumulative: le="1" sees 1 obs, le="3" sees 3, +Inf sees all 4
        assert!(text.contains("gc_query_latency_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("gc_query_latency_ns_bucket{le=\"3\"} 3"));
        assert!(text.contains("gc_query_latency_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("gc_query_latency_ns_sum 307"));
        assert!(text.contains("gc_query_latency_ns_count 4"));
    }
}
