//! Incremental-maintenance coverage for the postings-bitset index: after
//! arbitrary UA/UR splice sequences (interleaved with ADD/DEL and synced
//! at random points), the index must equal a fresh `LabelIndex::build`
//! **structurally** — same postings, same retained signatures, same
//! indexed set — not merely answer queries the same way. The
//! `records_replayed` counter additionally witnesses that convergence
//! went through log replay, never a rebuild.

use gc_dataset::{ChangeLog, GraphStore, LabelIndex, OpType};
use gc_graph::generate::random_connected_graph;
use gc_graph::LabeledGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
    LabeledGraph::from_parts(labels, edges).unwrap()
}

fn seed_dataset(seed: u64, n: usize) -> (GraphStore, ChangeLog) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graphs: Vec<LabeledGraph> = (0..n)
        .map(|_| {
            let v = rng.random_range(3..10usize);
            let extra = rng.random_range(0..v);
            random_connected_graph(&mut rng, v, extra, |r| r.random_range(0..4u16))
        })
        .collect();
    (GraphStore::from_graphs(graphs), ChangeLog::new())
}

/// Picks a live graph id, if any.
fn pick_live(rng: &mut StdRng, store: &GraphStore) -> Option<usize> {
    let live: Vec<usize> = store.iter_live().map(|(id, _)| id).collect();
    if live.is_empty() {
        None
    } else {
        Some(live[rng.random_range(0..live.len())])
    }
}

/// Applies one random op to the store + log. UA adds a random missing
/// edge, UR removes a random present one; both are skipped (returning
/// false) when the target graph has no such edge.
fn random_op(rng: &mut StdRng, store: &mut GraphStore, log: &mut ChangeLog) -> bool {
    match rng.random_range(0..6u32) {
        0 => {
            let v = rng.random_range(2..8usize);
            let fresh = random_connected_graph(rng, v, 1, |r| r.random_range(0..4u16));
            let id = store.add_graph(fresh);
            log.append(id, OpType::Add);
            true
        }
        1 => match pick_live(rng, store) {
            Some(id) => {
                store.delete(id).unwrap();
                log.append(id, OpType::Del);
                true
            }
            None => false,
        },
        // UA/UR get double weight: the splice path is the one under test
        2 | 3 => match pick_live(rng, store) {
            Some(id) => {
                let graph = store.get(id).unwrap();
                let n = graph.vertex_count() as u32;
                let missing: Vec<(u32, u32)> = (0..n)
                    .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
                    .filter(|&(u, v)| !graph.has_edge(u, v))
                    .collect();
                if missing.is_empty() {
                    return false;
                }
                let (u, v) = missing[rng.random_range(0..missing.len())];
                store.add_edge(id, u, v).unwrap();
                log.append_edge(id, OpType::Ua, u, v);
                true
            }
            None => false,
        },
        _ => match pick_live(rng, store) {
            Some(id) => {
                let edges: Vec<(u32, u32)> = store.get(id).unwrap().edges().collect();
                if edges.is_empty() {
                    return false;
                }
                let (u, v) = edges[rng.random_range(0..edges.len())];
                store.remove_edge(id, u, v).unwrap();
                log.append_edge(id, OpType::Ur, u, v);
                true
            }
            None => false,
        },
    }
}

#[test]
fn add_then_remove_same_edge_is_structurally_neutral() {
    let (mut store, mut log) = seed_dataset(11, 6);
    let mut idx = LabelIndex::build(&store, &log);
    let before = LabelIndex::build(&store, &log);

    // splice an edge in and straight back out, syncing in between so the
    // index really walks through the intermediate state
    let id = pick_live(&mut StdRng::seed_from_u64(1), &store).unwrap();
    let graph = store.get(id).unwrap();
    let n = graph.vertex_count() as u32;
    let (u, v) = (0..n)
        .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
        .find(|&(u, v)| !graph.has_edge(u, v))
        .expect("seeded graphs are not complete");
    store.add_edge(id, u, v).unwrap();
    log.append_edge(id, OpType::Ua, u, v);
    idx.sync(&store, &log);
    store.remove_edge(id, u, v).unwrap();
    log.append_edge(id, OpType::Ur, u, v);
    idx.sync(&store, &log);

    let fresh = LabelIndex::build(&store, &log);
    assert!(idx.same_structure(&fresh), "incremental ≠ fresh build");
    assert!(
        idx.same_structure(&before),
        "net-zero splice changed structure"
    );
    assert_eq!(
        idx.records_replayed(),
        2,
        "both records replayed, no rebuild"
    );
}

#[test]
fn label_churn_on_a_vertex_reindexes_postings() {
    // vertex labels are immutable under the paper's four ops; label churn
    // is expressed as DEL + ADD of the modified graph. The old label's
    // posting must drop the graph, the new label's must gain the fresh id.
    let (mut store, mut log) = seed_dataset(7, 4);
    let mut idx = LabelIndex::build(&store, &log);

    let victim = 2;
    let old = store.get(victim).unwrap();
    let mut labels: Vec<u16> = old.labels().to_vec();
    let edges: Vec<(u32, u32)> = old.edges().collect();
    labels[0] = 9; // churn vertex 0's label to one nothing else uses
    store.delete(victim).unwrap();
    log.append(victim, OpType::Del);
    let new_id = store.add_graph(g(labels, &edges));
    log.append(new_id, OpType::Add);
    idx.sync(&store, &log);

    let fresh = LabelIndex::build(&store, &log);
    assert!(idx.same_structure(&fresh));
    let probe = g(vec![9], &[]);
    assert_eq!(
        idx.subgraph_candidates(&probe)
            .iter_ones()
            .collect::<Vec<_>>(),
        vec![new_id]
    );
}

proptest! {
    /// Random op soup (ADD/DEL with UA/UR splices double-weighted),
    /// synced at random cut points: the incrementally maintained index is
    /// structurally identical to a fresh build at every cut and at the
    /// end, and replayed exactly the logged records.
    #[test]
    fn splice_sequences_converge_to_fresh_build(seed in 0u64..120) {
        let (mut store, mut log) = seed_dataset(seed, 8);
        let mut idx = LabelIndex::build(&store, &log);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        let ops = rng.random_range(5..40usize);
        for _ in 0..ops {
            random_op(&mut rng, &mut store, &mut log);
            if rng.random_range(0..4u32) == 0 {
                idx.sync(&store, &log);
                let fresh = LabelIndex::build(&store, &log);
                prop_assert!(idx.same_structure(&fresh), "diverged mid-sequence");
            }
        }
        idx.sync(&store, &log);
        let fresh = LabelIndex::build(&store, &log);
        prop_assert!(idx.same_structure(&fresh), "diverged at end");
        prop_assert_eq!(idx.records_replayed(), log.len() as u64);
        prop_assert_eq!(fresh.records_replayed(), 0);
    }
}
