//! Property tests for the postings-bitset label index: the candidate sets
//! produced by bitword intersection/subtraction are checked against a
//! brute-force reference model that filters by raw label multisets and
//! degree sequences, recomputed from scratch per graph. Covers arbitrary
//! graphs, arbitrary query label multisets, and the degenerate cases the
//! set algebra must get right: the empty intersection (a query label no
//! graph carries) and the single-label query (intersection of one
//! posting).

use std::collections::HashMap;

use gc_dataset::{ChangeLog, GraphStore, LabelIndex};
use gc_graph::generate::{bfs_extract, random_connected_graph};
use gc_graph::{Label, LabeledGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Label histogram computed from raw vertex labels — independent of the
/// maintained `GraphSignature`.
fn hist(g: &LabeledGraph) -> HashMap<Label, u32> {
    let mut h = HashMap::new();
    for &l in g.labels() {
        *h.entry(l).or_insert(0u32) += 1;
    }
    h
}

fn max_degree(g: &LabeledGraph) -> usize {
    g.vertices().map(|v| g.degree(v)).max().unwrap_or(0)
}

/// Brute-force signature domination: `big` could contain `small`, judged
/// only from raw graph data (the reference model the index must match).
fn dominates_model(big: &LabeledGraph, small: &LabeledGraph) -> bool {
    let bh = hist(big);
    big.vertex_count() >= small.vertex_count()
        && big.edge_count() >= small.edge_count()
        && max_degree(big) >= max_degree(small)
        && hist(small)
            .iter()
            .all(|(l, c)| bh.get(l).copied().unwrap_or(0) >= *c)
}

fn random_dataset(seed: u64) -> (GraphStore, ChangeLog, Vec<LabeledGraph>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(4..20usize);
    let label_span = rng.random_range(1..5u16);
    let graphs: Vec<LabeledGraph> = (0..n)
        .map(|_| {
            let v = rng.random_range(2..12usize);
            let extra = rng.random_range(0..v);
            random_connected_graph(&mut rng, v, extra, |r| r.random_range(0..label_span))
        })
        .collect();
    let store = GraphStore::from_graphs(graphs.clone());
    (store, ChangeLog::new(), graphs)
}

proptest! {
    /// Subgraph candidates from postings intersection + folded signature
    /// refine equal the brute-force filter over raw graph data, for
    /// structured queries extracted from (or generated independently of)
    /// the dataset.
    #[test]
    fn subgraph_candidates_match_bruteforce(seed in 0u64..300) {
        let (store, log, graphs) = random_dataset(seed);
        let idx = LabelIndex::build(&store, &log);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51AB);
        for round in 0..4u64 {
            let query = if round.is_multiple_of(2) {
                let src = &graphs[rng.random_range(0..graphs.len())];
                let start = rng.random_range(0..src.vertex_count() as u32);
                let want = rng.random_range(1..=src.edge_count().min(4));
                match bfs_extract(&mut rng, src, start, want) {
                    Some(q) => q,
                    None => continue,
                }
            } else {
                random_connected_graph(&mut rng, 3, 1, |r| r.random_range(0..6u16))
            };
            let got: Vec<usize> = idx.subgraph_candidates(&query).iter_ones().collect();
            let want: Vec<usize> = store
                .iter_live()
                .filter(|(_, g)| dominates_model(g, &query))
                .map(|(id, _)| id)
                .collect();
            prop_assert_eq!(got, want, "seed {} round {}", seed, round);
        }
    }

    /// Supergraph candidates (live set minus foreign-label postings,
    /// refined by reverse domination) equal the brute-force filter.
    #[test]
    fn supergraph_candidates_match_bruteforce(seed in 0u64..300) {
        let (store, log, _) = random_dataset(seed);
        let idx = LabelIndex::build(&store, &log);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50B1);
        for round in 0..4 {
            let v = rng.random_range(2..14usize);
            let extra = rng.random_range(0..v);
            let query = random_connected_graph(&mut rng, v, extra, |r| r.random_range(0..5u16));
            let got: Vec<usize> = idx.supergraph_candidates(&query).iter_ones().collect();
            let want: Vec<usize> = store
                .iter_live()
                .filter(|(_, g)| dominates_model(&query, g))
                .map(|(id, _)| id)
                .collect();
            prop_assert_eq!(got, want, "seed {} round {}", seed, round);
        }
    }

    /// Arbitrary label *multisets* (edge-free query graphs, so only the
    /// label/vertex-count fragment of the signature bites): the postings
    /// intersection must equal brute-force multiset inclusion. Includes
    /// the empty-intersection case (labels drawn from a wider span than
    /// the dataset's) and the single-label degenerate case.
    #[test]
    fn label_multiset_filter_matches_bruteforce(
        seed in 0u64..200,
        labels in prop::collection::vec(0u16..8, 1..6),
    ) {
        let (store, log, _) = random_dataset(seed);
        let idx = LabelIndex::build(&store, &log);
        let query = LabeledGraph::from_parts(labels.clone(), &[]).unwrap();
        let got: Vec<usize> = idx.subgraph_candidates(&query).iter_ones().collect();
        let qh = hist(&query);
        let want: Vec<usize> = store
            .iter_live()
            .filter(|(_, g)| {
                let gh = hist(g);
                g.vertex_count() >= query.vertex_count()
                    && qh.iter().all(|(l, c)| gh.get(l).copied().unwrap_or(0) >= *c)
            })
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(got, want);
        // datasets use labels < 5; a query containing label 7 must hit the
        // missing-posting fast path and return the empty set
        if labels.contains(&7) {
            prop_assert!(idx.subgraph_candidates(&query).is_empty());
        }
    }

    /// Single-label degenerate case: the candidate set is exactly that
    /// label's posting (every graph holding the label has ≥ 1 vertex and
    /// dominates a 1-vertex edge-free query).
    #[test]
    fn single_label_query_returns_the_posting(seed in 0u64..200, label in 0u16..5) {
        let (store, log, _) = random_dataset(seed);
        let idx = LabelIndex::build(&store, &log);
        let query = LabeledGraph::from_parts(vec![label], &[]).unwrap();
        let got: Vec<usize> = idx.subgraph_candidates(&query).iter_ones().collect();
        let want: Vec<usize> = store
            .iter_live()
            .filter(|(_, g)| g.labels().contains(&label))
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Candidates are always a subset of the live set, in both directions.
    #[test]
    fn candidates_are_live(seed in 0u64..200) {
        let (store, log, graphs) = random_dataset(seed);
        let idx = LabelIndex::build(&store, &log);
        let live = store.live_bitset();
        let q = &graphs[0];
        prop_assert!(idx.subgraph_candidates(q).is_subset_of(&live));
        prop_assert!(idx.supergraph_candidates(q).is_subset_of(&live));
    }
}
