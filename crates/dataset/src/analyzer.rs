//! Algorithm 1 — "Analyzing Log for the CON Cache".
//!
//! The Log Analyzer is the Dataset Manager component that preprocesses the
//! incremental records for cache validation. It launches a container with
//! three counters, each a map keyed by dataset graph id:
//!
//! * `CT` — total operations per graph (every record counts),
//! * `CA` — UA operations per graph,
//! * `CR` — UR operations per graph.
//!
//! Algorithm 2 later compares `CT` with `CA`/`CR` per graph: a graph whose
//! operations were *exclusively* UA (or UR) can preserve one polarity of
//! cached knowledge. ADD and DEL inflate `CT` without touching `CA`/`CR`,
//! so they always invalidate (correct: a deleted graph's knowledge is dead;
//! and the id of an added graph never collides with old knowledge because
//! ids are fresh).

use std::collections::HashMap;

use crate::log::{ChangeRecord, OpType};
use crate::store::GraphId;

/// The counter container `C` returned by Algorithm 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// `CT` — total operations per touched graph.
    pub total: HashMap<GraphId, u32>,
    /// `CA` — UA (edge-addition) operations per touched graph.
    pub ua: HashMap<GraphId, u32>,
    /// `CR` — UR (edge-removal) operations per touched graph.
    pub ur: HashMap<GraphId, u32>,
}

impl OpCounters {
    /// `true` iff no operation was recorded.
    pub fn is_empty(&self) -> bool {
        self.total.is_empty()
    }

    /// Graphs touched by at least one operation.
    pub fn touched(&self) -> impl Iterator<Item = GraphId> + '_ {
        self.total.keys().copied()
    }

    /// `true` iff all operations on `id` were UA (`tc == uac`, Algorithm 2
    /// line 12).
    pub fn ua_exclusive(&self, id: GraphId) -> bool {
        match self.total.get(&id) {
            Some(&tc) => self.ua.get(&id).copied().unwrap_or(0) == tc,
            None => false,
        }
    }

    /// `true` iff all operations on `id` were UR (`tc == urc`, Algorithm 2
    /// line 14).
    pub fn ur_exclusive(&self, id: GraphId) -> bool {
        match self.total.get(&id) {
            Some(&tc) => self.ur.get(&id).copied().unwrap_or(0) == tc,
            None => false,
        }
    }
}

/// Algorithm 1's Log Analyzer.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogAnalyzer;

impl LogAnalyzer {
    /// Runs Algorithm 1 over the incremental records: exhausts the records,
    /// bumping `CA` for UA, `CR` for UR, and `CT` for everything.
    pub fn analyze(records: &[ChangeRecord]) -> OpCounters {
        let mut c = OpCounters::default();
        for r in records {
            match r.op {
                OpType::Ua => {
                    *c.ua.entry(r.graph_id).or_insert(0) += 1;
                }
                OpType::Ur => {
                    *c.ur.entry(r.graph_id).or_insert(0) += 1;
                }
                OpType::Add | OpType::Del => {}
            }
            *c.total.entry(r.graph_id).or_insert(0) += 1;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(graph_id: GraphId, op: OpType) -> ChangeRecord {
        ChangeRecord {
            graph_id,
            op,
            edge: None,
        }
    }

    #[test]
    fn empty_log_empty_counters() {
        let c = LogAnalyzer::analyze(&[]);
        assert!(c.is_empty());
        assert!(!c.ua_exclusive(0));
        assert!(!c.ur_exclusive(0));
    }

    #[test]
    fn counters_categorize_per_graph() {
        let records = [
            rec(1, OpType::Ua),
            rec(1, OpType::Ua),
            rec(2, OpType::Ur),
            rec(3, OpType::Add),
            rec(4, OpType::Del),
            rec(5, OpType::Ua),
            rec(5, OpType::Ur),
        ];
        let c = LogAnalyzer::analyze(&records);
        assert_eq!(c.total[&1], 2);
        assert_eq!(c.ua[&1], 2);
        assert!(c.ua_exclusive(1));
        assert!(!c.ur_exclusive(1));

        assert!(c.ur_exclusive(2));
        assert!(!c.ua_exclusive(2));

        // ADD/DEL count in CT only → neither exclusive
        assert_eq!(c.total[&3], 1);
        assert!(!c.ua_exclusive(3));
        assert!(!c.ur_exclusive(3));
        assert_eq!(c.total[&4], 1);

        // mixed UA+UR → neither exclusive
        assert_eq!(c.total[&5], 2);
        assert!(!c.ua_exclusive(5));
        assert!(!c.ur_exclusive(5));
    }

    #[test]
    fn ua_then_del_is_not_exclusive() {
        let records = [rec(9, OpType::Ua), rec(9, OpType::Del)];
        let c = LogAnalyzer::analyze(&records);
        assert_eq!(c.total[&9], 2);
        assert_eq!(c.ua[&9], 1);
        assert!(!c.ua_exclusive(9));
        assert!(!c.ur_exclusive(9));
    }

    #[test]
    fn touched_lists_each_graph_once() {
        let records = [rec(1, OpType::Ua), rec(1, OpType::Ur), rec(2, OpType::Add)];
        let c = LogAnalyzer::analyze(&records);
        let mut touched: Vec<_> = c.touched().collect();
        touched.sort_unstable();
        assert_eq!(touched, vec![1, 2]);
    }
}
