//! Synthetic stand-in for the NCI DTP AIDS antiviral screen dataset.
//!
//! **Substitution note (see DESIGN.md §3).** The paper evaluates on the
//! real AIDS dataset: 40,000 molecule graphs averaging ≈45 vertices
//! (σ 22, max 245) and ≈47 edges (σ 23, max 250), with a label alphabet of
//! 62 atom symbols dominated by carbon. The raw dataset is not available
//! offline, so this module generates molecule-*like* graphs matched to the
//! published moments:
//!
//! * per-graph vertex counts follow a log-normal distribution fitted to
//!   mean 45 / σ 22 (μ = ln 45 − σ²/2, σ² = ln(1 + (22/45)²)), clipped to
//!   `[4, 245]` — log-normals naturally produce the "few largest graphs
//!   have an order of magnitude more vertices" tail the paper mentions;
//! * each graph is a degree-capped random tree (valence ≤ 4) plus `rings`
//!   ring-closing edges with `rings ~ Binomial(6, ½)` (mean 3), so
//!   `E[edges] = E[vertices] − 1 + 3 ≈ 47`;
//! * labels are Zipf(α = 1.7) over 62 symbols, mimicking the heavy
//!   C/O/N skew of chemistry.
//!
//! What matters for GC+ is preserved: many small-to-moderate sparse
//! labeled graphs with skewed labels, from which extracted queries hit
//! multiple dataset graphs and form natural sub/supergraph hierarchies.
//! `tests::moments_match_paper` asserts the generator stays within
//! tolerance of the published statistics.

use gc_graph::generate::molecule_like;
use gc_graph::{LabeledGraph, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`synthetic_aids`].
#[derive(Debug, Clone, Copy)]
pub struct AidsConfig {
    /// Number of graphs to generate (paper: 40,000).
    pub graph_count: usize,
    /// RNG seed.
    pub seed: u64,
    /// Target mean vertex count (paper: 45).
    pub mean_vertices: f64,
    /// Target vertex-count standard deviation (paper: 22).
    pub std_vertices: f64,
    /// Hard vertex-count bounds (paper max: 245).
    pub min_vertices: usize,
    /// Upper clip.
    pub max_vertices: usize,
    /// Label alphabet size (AIDS: 62 atom symbols).
    pub label_count: u16,
    /// Zipf skew of the label distribution.
    pub label_alpha: f64,
    /// Valence cap (organic molecules: 4).
    pub max_degree: usize,
}

impl AidsConfig {
    /// The paper-scale dataset (40,000 graphs).
    pub fn paper(seed: u64) -> Self {
        AidsConfig {
            graph_count: 40_000,
            seed,
            ..AidsConfig::default_shape()
        }
    }

    /// A dataset of `graph_count` graphs with the AIDS per-graph shape —
    /// used by the scaled-down default experiments.
    pub fn scaled(graph_count: usize, seed: u64) -> Self {
        AidsConfig {
            graph_count,
            seed,
            ..AidsConfig::default_shape()
        }
    }

    fn default_shape() -> Self {
        AidsConfig {
            graph_count: 0,
            seed: 0,
            mean_vertices: 45.0,
            std_vertices: 22.0,
            min_vertices: 4,
            max_vertices: 245,
            label_count: 62,
            label_alpha: 1.7,
            max_degree: 4,
        }
    }
}

/// Standard-normal sample via Box–Muller (rand ships only uniform sources
/// offline; two uniforms per normal is plenty here).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Generates the synthetic AIDS-like dataset.
pub fn synthetic_aids(cfg: &AidsConfig) -> Vec<LabeledGraph> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // log-normal parameters fitted to the requested mean/std
    let cv2 = (cfg.std_vertices / cfg.mean_vertices).powi(2);
    let sigma2 = (1.0 + cv2).ln();
    let mu = cfg.mean_vertices.ln() - sigma2 / 2.0;
    let sigma = sigma2.sqrt();

    let zipf = Zipf::new(cfg.label_count as usize, cfg.label_alpha);

    (0..cfg.graph_count)
        .map(|_| {
            let z = standard_normal(&mut rng);
            let n = (mu + sigma * z).exp().round() as i64;
            let n = n.clamp(cfg.min_vertices as i64, cfg.max_vertices as i64) as usize;
            // rings ~ Binomial(6, 1/2): mean 3, small variance
            let rings = (0..6).filter(|_| rng.random::<bool>()).count();
            molecule_like(&mut rng, n, rings, cfg.max_degree, |r| {
                zipf.sample(r) as u16
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::stats::DatasetStats;

    #[test]
    fn moments_match_paper() {
        let cfg = AidsConfig::scaled(2000, 42);
        let graphs = synthetic_aids(&cfg);
        let stats = DatasetStats::compute(&graphs);
        assert_eq!(stats.graph_count, 2000);
        // paper: vertices mean 45 (σ22), edges mean 47 (σ23); the clip at
        // [4, 245] shifts moments slightly — accept ±15%.
        assert!(
            (stats.vertices.mean - 45.0).abs() < 7.0,
            "vertex mean {}",
            stats.vertices.mean
        );
        assert!(
            (stats.vertices.std_dev - 22.0).abs() < 8.0,
            "vertex std {}",
            stats.vertices.std_dev
        );
        assert!(
            (stats.edges.mean - 47.0).abs() < 7.0,
            "edge mean {}",
            stats.edges.mean
        );
        assert!(stats.vertices.max <= 245);
        assert!(stats.vertices.min >= 4);
        // a heavy tail exists: some graph at least 3x the mean
        assert!(
            stats.vertices.max as f64 > 3.0 * 45.0,
            "max {}",
            stats.vertices.max
        );
        // label skew: most frequent label covers a plurality
        let total: u64 = stats.label_frequencies.iter().map(|&(_, c)| c).sum();
        let head = stats.label_frequencies[0].1;
        assert!(
            head as f64 / total as f64 > 0.3,
            "head label share {}",
            head as f64 / total as f64
        );
        assert!(stats.label_count <= 62);
    }

    #[test]
    fn graphs_are_molecule_like() {
        let cfg = AidsConfig::scaled(100, 7);
        for g in synthetic_aids(&cfg) {
            assert!(g.is_connected());
            assert!(g.max_degree() <= 4);
            assert!(g.edge_count() >= g.vertex_count() - 1);
            assert!(g.edge_count() <= g.vertex_count() + 6);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_aids(&AidsConfig::scaled(20, 99));
        let b = synthetic_aids(&AidsConfig::scaled(20, 99));
        assert_eq!(a, b);
        let c = synthetic_aids(&AidsConfig::scaled(20, 100));
        assert_ne!(a, c);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
