//! The postings-bitset label index — the default `CS_M` candidate source.
//!
//! The paper observes that "none of the proposed FTV algorithms so far has
//! updatable index or similar solutions to tackle dataset changes", which
//! is why GC+ targets SI methods. The observation concerns *structural*
//! indexes (frequent subgraphs, paths, trees, cycles): a UA/UR can create
//! or destroy arbitrarily many indexed features, forcing a rebuild.
//!
//! The **signature fragment** of FTV filtering, however, *is* updatable:
//! vertex labels never change under the paper's four operations, and
//! UA/UR shift only the per-graph edge count and maximum degree — both
//! maintained incrementally by [`LabeledGraph`] itself. This module keeps
//! that fragment as cheap set-algebra objects:
//!
//! * **postings** — one [`BitSet`] per label, holding every live graph in
//!   which the label occurs. A query's candidate set starts as the
//!   *intersection* of its distinct labels' postings (subgraph queries) or
//!   the live set minus the postings of foreign labels (supergraph
//!   queries) — pure bitword operations, no per-graph branching;
//! * **retained signatures** — the full [`GraphSignature`] (vertex/edge
//!   counts, maximum degree, label histogram) per indexed graph. The
//!   refine pass applies complete signature domination, so Method M's
//!   per-candidate signature pre-filter is *folded into the index*: one
//!   pass over the postings intersection yields the final candidate set
//!   and every emitted candidate already passes the pre-filter.
//!
//! The index never rebuilds on the update path. [`sync`](LabelIndex::sync)
//! replays the change log from a cursor:
//!
//! * ADD → index the new graph (fetched from the store);
//! * DEL → unindex using the signature the index itself retained (the
//!   graph is already gone from the store);
//! * UA/UR → refresh edge count and maximum degree from the live graph's
//!   own incrementally-maintained signature, O(1).
//!
//! `*_candidates(query)` returns a *superset* of the true answer set
//! (a sound filter), so it can replace the full live dataset as `CS_M`
//! in both plain Method M and GC+ — the default deployment since the
//! index became the standing candidate source.

use std::collections::HashMap;
use std::time::Instant;

use gc_graph::{BitSet, GraphSignature, Label, LabeledGraph};

use crate::log::{ChangeLog, LogCursor, OpType};
use crate::store::{GraphId, GraphStore};

/// Updatable postings-bitset candidate filter with the signature
/// pre-filter folded in.
#[derive(Debug, Default)]
pub struct LabelIndex {
    postings: HashMap<Label, BitSet>,
    /// Every indexed (live) graph — the supergraph sweep's starting set
    /// and the label-less query fallback.
    indexed: BitSet,
    /// Full retained signature per graph (`None` = not indexed). Kept
    /// even after DEL removes the graph from the store, until the DEL
    /// record is replayed, so unindexing needs no store access.
    signatures: Vec<Option<GraphSignature>>,
    cursor: LogCursor,
    /// Log records replayed through [`sync`](Self::sync) since
    /// construction — the witness that maintenance went through the
    /// incremental path instead of a rebuild.
    records_replayed: u64,
    /// Sync calls that actually replayed records (no-op syncs excluded —
    /// they cost a cursor compare, not a maintenance pass).
    syncs: u64,
    /// Cumulative wall time of those non-empty syncs, in nanoseconds.
    sync_nanos: u64,
}

impl LabelIndex {
    /// Builds the index over the store's current contents. The log cursor
    /// starts at `log.head()`, so subsequent [`sync`](Self::sync) calls
    /// replay only newer records. This is the only full pass the index
    /// ever makes; all maintenance afterwards is incremental.
    pub fn build(store: &GraphStore, log: &ChangeLog) -> Self {
        let mut idx = LabelIndex {
            postings: HashMap::new(),
            indexed: BitSet::with_capacity(store.id_span()),
            signatures: Vec::with_capacity(store.id_span()),
            cursor: log.head(),
            records_replayed: 0,
            syncs: 0,
            sync_nanos: 0,
        };
        idx.signatures.resize(store.id_span(), None);
        for (id, g) in store.iter_live() {
            idx.index_graph(id, g);
        }
        idx
    }

    fn index_graph(&mut self, id: GraphId, g: &LabeledGraph) {
        if id >= self.signatures.len() {
            self.signatures.resize(id + 1, None);
        }
        let sig = g.signature().clone();
        for &(label, _) in &sig.labels {
            self.postings.entry(label).or_default().set(id, true);
        }
        self.indexed.set(id, true);
        self.signatures[id] = Some(sig);
    }

    fn unindex_graph(&mut self, id: GraphId) {
        if let Some(sig) = self.signatures.get_mut(id).and_then(Option::take) {
            for (label, _) in sig.labels {
                if let Some(p) = self.postings.get_mut(&label) {
                    p.set(id, false);
                }
            }
            self.indexed.set(id, false);
        }
    }

    /// Incrementally replays the change log since the last sync. O(number
    /// of new records), independent of dataset size.
    pub fn sync(&mut self, store: &GraphStore, log: &ChangeLog) {
        // records_since borrows log; collect to a small Vec to keep the
        // borrow short — batches are tiny (paper: 20 ops)
        let records: Vec<_> = log.records_since(self.cursor).to_vec();
        self.cursor = log.head();
        if records.is_empty() {
            return;
        }
        let started = Instant::now();
        self.records_replayed += records.len() as u64;
        for r in records {
            match r.op {
                OpType::Add => {
                    if let Some(g) = store.get(r.graph_id) {
                        self.index_graph(r.graph_id, g);
                    }
                }
                OpType::Del => self.unindex_graph(r.graph_id),
                OpType::Ua | OpType::Ur => {
                    if let Some(Some(sig)) = self.signatures.get_mut(r.graph_id) {
                        match store.get(r.graph_id) {
                            // the graph maintains its own signature across
                            // UA/UR — mirror edge count and max degree
                            Some(g) => {
                                let live = g.signature();
                                sig.edges = live.edges;
                                sig.max_degree = live.max_degree;
                            }
                            // already deleted later in this batch: keep the
                            // counter roughly right; the DEL record will
                            // unindex it before any candidate can leak
                            None => match r.op {
                                OpType::Ua => sig.edges += 1,
                                _ => sig.edges = sig.edges.saturating_sub(1),
                            },
                        }
                    }
                }
            }
        }
        self.syncs += 1;
        self.sync_nanos += started.elapsed().as_nanos() as u64;
    }

    /// Number of indexed (live) graphs.
    pub fn indexed_count(&self) -> usize {
        self.indexed.count_ones()
    }

    /// Sync calls that replayed at least one log record.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Cumulative wall time spent in non-empty syncs, in nanoseconds.
    /// `sync_nanos / syncs` is the mean incremental-maintenance latency a
    /// stats scrape reports.
    pub fn sync_nanos(&self) -> u64 {
        self.sync_nanos
    }

    /// Approximate resident bytes: postings bitset blocks, the indexed
    /// set, and the retained signatures (struct + label histogram).
    /// Counts owned payload, not allocator or hash-table overhead — the
    /// number is a comparable gauge across datasets, not an RSS claim.
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        let postings: usize = self
            .postings
            .values()
            .map(|p| size_of::<Label>() + size_of::<BitSet>() + p.block_count() * 8)
            .sum();
        let signatures: usize = self
            .signatures
            .iter()
            .map(|s| {
                size_of::<Option<GraphSignature>>()
                    + s.as_ref()
                        .map_or(0, |sig| sig.labels.len() * size_of::<(Label, u32)>())
            })
            .sum();
        (postings + self.indexed.block_count() * 8 + signatures) as u64
    }

    /// Log records replayed incrementally since construction. Stays at 0
    /// until the first post-build [`sync`](Self::sync) sees new records —
    /// callers that churn the dataset can assert this grew to prove the
    /// index was maintained, not rebuilt.
    pub fn records_replayed(&self) -> u64 {
        self.records_replayed
    }

    /// Structural equality with another index: same indexed set, same
    /// retained signatures, same postings (a posting emptied by deletions
    /// equals an absent one). The cursor and replay counter are *not*
    /// compared — two structurally equal indexes may have different
    /// histories. This is the maintenance tests' witness that incremental
    /// sync converges to exactly what a fresh build would produce.
    pub fn same_structure(&self, other: &LabelIndex) -> bool {
        if self.indexed != other.indexed {
            return false;
        }
        let span = self.signatures.len().max(other.signatures.len());
        for id in 0..span {
            let a = self.signatures.get(id).and_then(Option::as_ref);
            let b = other.signatures.get(id).and_then(Option::as_ref);
            if a != b {
                return false;
            }
        }
        let empty = BitSet::new();
        self.postings
            .keys()
            .chain(other.postings.keys())
            .all(|label| {
                let a = self.postings.get(label).unwrap_or(&empty);
                let b = other.postings.get(label).unwrap_or(&empty);
                a == b
            })
    }

    /// Filter stage for a **subgraph** query: intersects the postings of
    /// the query's distinct labels *before* any signature or degree check,
    /// then refines the survivors by full signature domination (vertex and
    /// edge counts, maximum degree, label multiset). Sound — a superset of
    /// the answer set — and *complete as a pre-filter*: every emitted
    /// candidate passes Method M's signature pre-filter, so the scan can
    /// skip that stage entirely.
    pub fn subgraph_candidates(&self, query: &LabeledGraph) -> BitSet {
        let qsig = query.signature();
        // intersect postings of the query's distinct labels
        let mut cands: Option<BitSet> = None;
        for &(label, _) in &qsig.labels {
            match self.postings.get(&label) {
                Some(p) => match cands.as_mut() {
                    Some(c) => c.intersect_with(p),
                    None => cands = Some(p.clone()),
                },
                None => return BitSet::new(),
            }
        }
        // label-less query (no vertices): all indexed graphs qualify
        let coarse = cands.unwrap_or_else(|| self.indexed.clone());
        // refine by full signature domination (the folded pre-filter)
        let mut out = coarse.clone();
        for id in coarse.iter_ones() {
            let sig = self.signatures[id].as_ref().expect("posted ⇒ indexed");
            if !sig.dominates(qsig) {
                out.set(id, false);
            }
        }
        out
    }

    /// Filter stage for a **supergraph** query: graphs the query could
    /// contain. Starts from the live set, subtracts the postings of every
    /// label the query does *not* carry (a graph with a foreign label can
    /// never be contained), then refines by the reverse signature
    /// domination. Same soundness and pre-filter-completeness guarantees
    /// as [`subgraph_candidates`](Self::subgraph_candidates).
    pub fn supergraph_candidates(&self, query: &LabeledGraph) -> BitSet {
        let qsig = query.signature();
        let mut out = self.indexed.clone();
        for (label, posting) in &self.postings {
            let known = qsig.labels.binary_search_by_key(label, |&(l, _)| l).is_ok();
            if !known {
                out.difference_with(posting);
            }
        }
        let coarse = out.clone();
        for id in coarse.iter_ones() {
            let sig = self.signatures[id].as_ref().expect("posted ⇒ indexed");
            if !qsig.dominates(sig) {
                out.set(id, false);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    fn setup() -> (GraphStore, ChangeLog, LabelIndex) {
        let store = GraphStore::from_graphs(vec![
            g(vec![0, 0, 1], &[(0, 1), (1, 2)]), // 0
            g(vec![0, 0], &[(0, 1)]),            // 1
            g(vec![1, 1, 2], &[(0, 1), (1, 2)]), // 2
        ]);
        let log = ChangeLog::new();
        let idx = LabelIndex::build(&store, &log);
        (store, log, idx)
    }

    #[test]
    fn build_indexes_all_live_graphs() {
        let (_, _, idx) = setup();
        assert_eq!(idx.indexed_count(), 3);
        assert_eq!(idx.records_replayed(), 0, "build is not a replay");
    }

    #[test]
    fn subgraph_filter_is_sound_and_tight() {
        let (_, _, idx) = setup();
        // query 0-0 edge: graphs 0 and 1 have two 0-labels
        let q = g(vec![0, 0], &[(0, 1)]);
        assert_eq!(
            idx.subgraph_candidates(&q).iter_ones().collect::<Vec<_>>(),
            vec![0, 1]
        );
        // query needing labels {1,2}: only graph 2
        let q2 = g(vec![1, 2], &[(0, 1)]);
        assert_eq!(
            idx.subgraph_candidates(&q2).iter_ones().collect::<Vec<_>>(),
            vec![2]
        );
        // query with an unknown label: empty
        let q3 = g(vec![9], &[]);
        assert!(idx.subgraph_candidates(&q3).is_empty());
    }

    #[test]
    fn max_degree_is_folded_into_the_filter() {
        let (_, _, idx) = setup();
        // star on three 0/1-labeled vertices: center degree 2. Graph 1
        // (single 0-0 edge, max degree 1) passes the label intersection
        // and the edge-count bound is irrelevant, but graph 0 is the only
        // one whose max degree supports the star's center.
        let star = g(vec![0, 0, 1], &[(0, 1), (0, 2)]);
        assert_eq!(
            idx.subgraph_candidates(&star)
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn supergraph_filter_is_sound() {
        let (_, _, idx) = setup();
        // supergraph query with labels 0,0,1,1,2 and enough structure could
        // contain all three graphs (max degree 2 ≥ each graph's)
        let q = g(vec![0, 0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(
            idx.supergraph_candidates(&q)
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // small query can only contain graph 1
        let q2 = g(vec![0, 0], &[(0, 1)]);
        assert_eq!(
            idx.supergraph_candidates(&q2)
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn sync_tracks_add_del() {
        let (mut store, mut log, mut idx) = setup();
        let id = store.add_graph(g(vec![0, 2], &[(0, 1)]));
        log.append(id, OpType::Add);
        store.delete(1).unwrap();
        log.append(1, OpType::Del);
        idx.sync(&store, &log);
        assert_eq!(idx.indexed_count(), 3);
        assert_eq!(idx.records_replayed(), 2);
        // the new graph (labels {0,2}) answers a 0-2 query
        let q = g(vec![0, 2], &[(0, 1)]);
        assert_eq!(
            idx.subgraph_candidates(&q).iter_ones().collect::<Vec<_>>(),
            vec![id]
        );
        // deleted graph no longer appears
        let q2 = g(vec![0, 0], &[(0, 1)]);
        assert_eq!(
            idx.subgraph_candidates(&q2).iter_ones().collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn sync_tracks_edge_count_changes() {
        let (mut store, mut log, mut idx) = setup();
        // graph 1 has 1 edge; a 2-edge query on labels {0,0} misses it
        // only via the edge-count bound — add an edge and re-check.
        // (graph 1 is complete on 2 vertices; grow via a fresh graph)
        let id = store.add_graph(g(vec![0, 0, 0], &[(0, 1)]));
        log.append(id, OpType::Add);
        idx.sync(&store, &log);
        let q = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
        assert!(!idx.subgraph_candidates(&q).get(id), "1 edge < 2 required");

        store.add_edge(id, 1, 2).unwrap();
        log.append_edge(id, OpType::Ua, 1, 2);
        idx.sync(&store, &log);
        assert!(idx.subgraph_candidates(&q).get(id), "edge count updated");

        store.remove_edge(id, 1, 2).unwrap();
        log.append_edge(id, OpType::Ur, 1, 2);
        idx.sync(&store, &log);
        assert!(!idx.subgraph_candidates(&q).get(id));
    }

    #[test]
    fn sync_tracks_max_degree_changes() {
        let (mut store, mut log, mut idx) = setup();
        // star query needing a degree-2 center on 0-labels
        let star = g(vec![0, 0, 0], &[(0, 1), (0, 2)]);
        let id = store.add_graph(g(vec![0, 0, 0], &[(0, 1), (1, 2)]));
        log.append(id, OpType::Add);
        idx.sync(&store, &log);
        assert!(idx.subgraph_candidates(&star).get(id), "path has degree 2");

        // UR the middle edge: max degree drops to 1, the star is
        // infeasible — only the folded max-degree bound can see this
        // (vertex count, edge count and labels all still dominate)
        store.remove_edge(id, 1, 2).unwrap();
        log.append_edge(id, OpType::Ur, 1, 2);
        idx.sync(&store, &log);
        assert_eq!(store.get(id).unwrap().edge_count(), 1);
        assert!(
            !idx.subgraph_candidates(&star).get(id),
            "max degree 1 cannot host a degree-2 star center"
        );

        store.add_edge(id, 1, 2).unwrap();
        log.append_edge(id, OpType::Ua, 1, 2);
        idx.sync(&store, &log);
        assert!(idx.subgraph_candidates(&star).get(id));
    }

    #[test]
    fn incremental_sync_matches_fresh_build_structurally() {
        let (mut store, mut log, mut idx) = setup();
        let id = store.add_graph(g(vec![0, 1, 2], &[(0, 1), (1, 2)]));
        log.append(id, OpType::Add);
        store.remove_edge(id, 0, 1).unwrap();
        log.append_edge(id, OpType::Ur, 0, 1);
        store.delete(0).unwrap();
        log.append(0, OpType::Del);
        idx.sync(&store, &log);
        let fresh = LabelIndex::build(&store, &log);
        assert!(idx.same_structure(&fresh));
        assert!(fresh.same_structure(&idx), "symmetric");
        assert_eq!(fresh.records_replayed(), 0);
        assert_eq!(idx.records_replayed(), 3);
    }

    #[test]
    fn footprint_and_sync_latency_gauges() {
        let (mut store, mut log, mut idx) = setup();
        let base = idx.memory_bytes();
        assert!(base > 0, "a built index occupies memory");
        assert_eq!(idx.syncs(), 0);
        assert_eq!(idx.sync_nanos(), 0);

        // a no-op sync is not a maintenance pass
        idx.sync(&store, &log);
        assert_eq!(idx.syncs(), 0);

        let id = store.add_graph(g(vec![0, 7, 7], &[(0, 1), (1, 2)]));
        log.append(id, OpType::Add);
        idx.sync(&store, &log);
        assert_eq!(idx.syncs(), 1);
        assert!(
            idx.memory_bytes() > base,
            "indexing a graph with a new label grows the footprint"
        );

        store.delete(id).unwrap();
        log.append(id, OpType::Del);
        idx.sync(&store, &log);
        assert_eq!(idx.syncs(), 2);
    }

    #[test]
    fn filter_never_drops_true_answers() {
        use gc_graph::generate::{bfs_extract, random_connected_graph};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let graphs: Vec<LabeledGraph> = (0..30)
            .map(|_| {
                let n = rng.random_range(5..15usize);
                random_connected_graph(&mut rng, n, 3, |r| r.random_range(0..4u16))
            })
            .collect();
        let store = GraphStore::from_graphs(graphs.clone());
        let log = ChangeLog::new();
        let idx = LabelIndex::build(&store, &log);
        let m = gc_subiso_stub::contains;
        for src in graphs.iter().take(10) {
            if let Some(q) = bfs_extract(&mut rng, src, 0, 4) {
                let cands = idx.subgraph_candidates(&q);
                for (id, g) in store.iter_live() {
                    if m(&q, g) {
                        assert!(cands.get(id), "filter dropped a true answer (graph {id})");
                    }
                }
            }
        }
    }

    /// Minimal embedded matcher so gc-dataset's tests need no dev
    /// dependency on gc-subiso (which depends on gc-graph only). Plain
    /// exhaustive search over tiny graphs.
    mod gc_subiso_stub {
        use gc_graph::LabeledGraph;

        pub fn contains(p: &LabeledGraph, t: &LabeledGraph) -> bool {
            fn rec(
                p: &LabeledGraph,
                t: &LabeledGraph,
                depth: u32,
                map: &mut Vec<u32>,
                used: &mut Vec<bool>,
            ) -> bool {
                if depth as usize == p.vertex_count() {
                    return p
                        .edges()
                        .all(|(a, b)| t.has_edge(map[a as usize], map[b as usize]));
                }
                for v in 0..t.vertex_count() as u32 {
                    if !used[v as usize] && p.label(depth) == t.label(v) {
                        used[v as usize] = true;
                        map.push(v);
                        if rec(p, t, depth + 1, map, used) {
                            return true;
                        }
                        map.pop();
                        used[v as usize] = false;
                    }
                }
                false
            }
            if p.vertex_count() > t.vertex_count() {
                return false;
            }
            rec(p, t, 0, &mut Vec::new(), &mut vec![false; t.vertex_count()])
        }
    }
}
