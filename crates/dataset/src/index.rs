//! An *updatable* filter-then-verify (FTV) candidate index.
//!
//! The paper observes that "none of the proposed FTV algorithms so far has
//! updatable index or similar solutions to tackle dataset changes", which
//! is why GC+ targets SI methods. The observation concerns *structural*
//! indexes (frequent subgraphs, paths, trees, cycles): a UA/UR can create
//! or destroy arbitrarily many indexed features, forcing a rebuild.
//!
//! The **label/size fragment** of FTV filtering, however, *is* updatable:
//! vertex labels never change under the paper's four operations, and
//! UA/UR shift only a per-graph edge counter. This module implements that
//! fragment — per-label posting bitsets plus per-graph size/label
//! signatures — kept incrementally in sync with the dataset by replaying
//! the change log from a cursor:
//!
//! * ADD → index the new graph (fetched from the store);
//! * DEL → unindex using the signature the index itself retained (the
//!   graph is already gone from the store);
//! * UA/UR → bump the edge counter, O(1).
//!
//! `candidates(query, kind)` returns a *superset* of the true answer set
//! (a sound filter), so it can replace the full live dataset as `CS_M`
//! in both plain Method M and GC+ — turning the deployment into the
//! paper's "GC+ over an FTV method" configuration.

use std::collections::HashMap;

use gc_graph::{BitSet, Label, LabeledGraph};

use crate::log::{ChangeLog, LogCursor, OpType};
use crate::store::{GraphId, GraphStore};

/// Per-graph signature retained by the index.
#[derive(Debug, Clone)]
struct Signature {
    vertices: u32,
    edges: u32,
    /// label histogram, sorted by label
    hist: Vec<(Label, u32)>,
}

/// Updatable label/size candidate filter.
#[derive(Debug, Default)]
pub struct LabelIndex {
    postings: HashMap<Label, BitSet>,
    signatures: Vec<Option<Signature>>,
    cursor: LogCursor,
}

impl LabelIndex {
    /// Builds the index over the store's current contents. The log cursor
    /// starts at `log.head()`, so subsequent [`sync`](Self::sync) calls
    /// replay only newer records.
    pub fn build(store: &GraphStore, log: &ChangeLog) -> Self {
        let mut idx = LabelIndex {
            postings: HashMap::new(),
            signatures: Vec::with_capacity(store.id_span()),
            cursor: log.head(),
        };
        idx.signatures.resize(store.id_span(), None);
        for (id, g) in store.iter_live() {
            idx.index_graph(id, g);
        }
        idx
    }

    fn index_graph(&mut self, id: GraphId, g: &LabeledGraph) {
        if id >= self.signatures.len() {
            self.signatures.resize(id + 1, None);
        }
        let hist = g.label_histogram();
        for &(label, _) in &hist {
            self.postings.entry(label).or_default().set(id, true);
        }
        self.signatures[id] = Some(Signature {
            vertices: g.vertex_count() as u32,
            edges: g.edge_count() as u32,
            hist,
        });
    }

    fn unindex_graph(&mut self, id: GraphId) {
        if let Some(sig) = self.signatures.get_mut(id).and_then(Option::take) {
            for (label, _) in sig.hist {
                if let Some(p) = self.postings.get_mut(&label) {
                    p.set(id, false);
                }
            }
        }
    }

    /// Incrementally replays the change log since the last sync. O(number
    /// of new records), independent of dataset size.
    pub fn sync(&mut self, store: &GraphStore, log: &ChangeLog) {
        // records_since borrows log; collect to a small Vec to keep the
        // borrow short — batches are tiny (paper: 20 ops)
        let records: Vec<_> = log.records_since(self.cursor).to_vec();
        self.cursor = log.head();
        for r in records {
            match r.op {
                OpType::Add => {
                    if let Some(g) = store.get(r.graph_id) {
                        self.index_graph(r.graph_id, g);
                    }
                }
                OpType::Del => self.unindex_graph(r.graph_id),
                OpType::Ua => {
                    if let Some(Some(sig)) = self.signatures.get_mut(r.graph_id) {
                        sig.edges += 1;
                    }
                }
                OpType::Ur => {
                    if let Some(Some(sig)) = self.signatures.get_mut(r.graph_id) {
                        sig.edges = sig.edges.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// Number of indexed (live) graphs.
    pub fn indexed_count(&self) -> usize {
        self.signatures.iter().filter(|s| s.is_some()).count()
    }

    /// Filter stage for a **subgraph** query: graphs that could contain
    /// the query (size ≥, label multiset dominates). Sound: a superset of
    /// the answer set.
    pub fn subgraph_candidates(&self, query: &LabeledGraph) -> BitSet {
        let qhist = query.label_histogram();
        let qv = query.vertex_count() as u32;
        let qe = query.edge_count() as u32;
        // intersect postings of the query's distinct labels
        let mut cands: Option<BitSet> = None;
        for &(label, _) in &qhist {
            match self.postings.get(&label) {
                Some(p) => match cands.as_mut() {
                    Some(c) => c.intersect_with(p),
                    None => cands = Some(p.clone()),
                },
                None => return BitSet::new(),
            }
        }
        let coarse = match cands {
            Some(c) => c,
            // label-less query (no vertices): all indexed graphs qualify
            None => BitSet::from_indices(
                self.signatures
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_some())
                    .map(|(i, _)| i),
            ),
        };
        // refine by size + multiset dominance
        let mut out = coarse.clone();
        for id in coarse.iter_ones() {
            let sig = self.signatures[id].as_ref().expect("posted ⇒ indexed");
            if sig.vertices < qv || sig.edges < qe || !hist_dominates(&sig.hist, &qhist) {
                out.set(id, false);
            }
        }
        out
    }

    /// Filter stage for a **supergraph** query: graphs the query could
    /// contain (size ≤, label multiset dominated by the query's).
    pub fn supergraph_candidates(&self, query: &LabeledGraph) -> BitSet {
        let qhist = query.label_histogram();
        let qv = query.vertex_count() as u32;
        let qe = query.edge_count() as u32;
        let mut out = BitSet::new();
        for (id, sig) in self.signatures.iter().enumerate() {
            if let Some(sig) = sig {
                if sig.vertices <= qv && sig.edges <= qe && hist_dominates(&qhist, &sig.hist) {
                    out.set(id, true);
                }
            }
        }
        out
    }
}

/// `true` iff histogram `big` dominates `small` (both sorted by label).
fn hist_dominates(big: &[(Label, u32)], small: &[(Label, u32)]) -> bool {
    let mut bi = 0;
    for &(l, c) in small {
        while bi < big.len() && big[bi].0 < l {
            bi += 1;
        }
        if bi >= big.len() || big[bi].0 != l || big[bi].1 < c {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(labels: Vec<u16>, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::from_parts(labels, edges).unwrap()
    }

    fn setup() -> (GraphStore, ChangeLog, LabelIndex) {
        let store = GraphStore::from_graphs(vec![
            g(vec![0, 0, 1], &[(0, 1), (1, 2)]), // 0
            g(vec![0, 0], &[(0, 1)]),            // 1
            g(vec![1, 1, 2], &[(0, 1), (1, 2)]), // 2
        ]);
        let log = ChangeLog::new();
        let idx = LabelIndex::build(&store, &log);
        (store, log, idx)
    }

    #[test]
    fn build_indexes_all_live_graphs() {
        let (_, _, idx) = setup();
        assert_eq!(idx.indexed_count(), 3);
    }

    #[test]
    fn subgraph_filter_is_sound_and_tight() {
        let (_, _, idx) = setup();
        // query 0-0 edge: graphs 0 and 1 have two 0-labels
        let q = g(vec![0, 0], &[(0, 1)]);
        assert_eq!(
            idx.subgraph_candidates(&q).iter_ones().collect::<Vec<_>>(),
            vec![0, 1]
        );
        // query needing labels {1,2}: only graph 2
        let q2 = g(vec![1, 2], &[(0, 1)]);
        assert_eq!(
            idx.subgraph_candidates(&q2).iter_ones().collect::<Vec<_>>(),
            vec![2]
        );
        // query with an unknown label: empty
        let q3 = g(vec![9], &[]);
        assert!(idx.subgraph_candidates(&q3).is_empty());
    }

    #[test]
    fn supergraph_filter_is_sound() {
        let (_, _, idx) = setup();
        // supergraph query with labels 0,0,1,1,2 and 4 edges could contain
        // all three graphs
        let q = g(vec![0, 0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(
            idx.supergraph_candidates(&q)
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // small query can only contain graph 1
        let q2 = g(vec![0, 0], &[(0, 1)]);
        assert_eq!(
            idx.supergraph_candidates(&q2)
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn sync_tracks_add_del() {
        let (mut store, mut log, mut idx) = setup();
        let id = store.add_graph(g(vec![0, 2], &[(0, 1)]));
        log.append(id, OpType::Add);
        store.delete(1).unwrap();
        log.append(1, OpType::Del);
        idx.sync(&store, &log);
        assert_eq!(idx.indexed_count(), 3);
        // the new graph (labels {0,2}) answers a 0-2 query
        let q = g(vec![0, 2], &[(0, 1)]);
        assert_eq!(
            idx.subgraph_candidates(&q).iter_ones().collect::<Vec<_>>(),
            vec![id]
        );
        // deleted graph no longer appears
        let q2 = g(vec![0, 0], &[(0, 1)]);
        assert_eq!(
            idx.subgraph_candidates(&q2).iter_ones().collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn sync_tracks_edge_count_changes() {
        let (mut store, mut log, mut idx) = setup();
        // graph 1 has 1 edge; a 2-edge query on labels {0,0} misses it
        // only via the edge-count bound — add an edge and re-check.
        // (graph 1 is complete on 2 vertices; grow via a fresh graph)
        let id = store.add_graph(g(vec![0, 0, 0], &[(0, 1)]));
        log.append(id, OpType::Add);
        idx.sync(&store, &log);
        let q = g(vec![0, 0, 0], &[(0, 1), (1, 2)]);
        assert!(!idx.subgraph_candidates(&q).get(id), "1 edge < 2 required");

        store.add_edge(id, 1, 2).unwrap();
        log.append_edge(id, OpType::Ua, 1, 2);
        idx.sync(&store, &log);
        assert!(idx.subgraph_candidates(&q).get(id), "edge count updated");

        store.remove_edge(id, 1, 2).unwrap();
        log.append_edge(id, OpType::Ur, 1, 2);
        idx.sync(&store, &log);
        assert!(!idx.subgraph_candidates(&q).get(id));
    }

    #[test]
    fn filter_never_drops_true_answers() {
        use gc_graph::generate::{bfs_extract, random_connected_graph};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let graphs: Vec<LabeledGraph> = (0..30)
            .map(|_| {
                let n = rng.random_range(5..15usize);
                random_connected_graph(&mut rng, n, 3, |r| r.random_range(0..4u16))
            })
            .collect();
        let store = GraphStore::from_graphs(graphs.clone());
        let log = ChangeLog::new();
        let idx = LabelIndex::build(&store, &log);
        let m = gc_subiso_stub::contains;
        for src in graphs.iter().take(10) {
            if let Some(q) = bfs_extract(&mut rng, src, 0, 4) {
                let cands = idx.subgraph_candidates(&q);
                for (id, g) in store.iter_live() {
                    if m(&q, g) {
                        assert!(cands.get(id), "filter dropped a true answer (graph {id})");
                    }
                }
            }
        }
    }

    /// Minimal embedded matcher so gc-dataset's tests need no dev
    /// dependency on gc-subiso (which depends on gc-graph only). Plain
    /// exhaustive search over tiny graphs.
    mod gc_subiso_stub {
        use gc_graph::LabeledGraph;

        pub fn contains(p: &LabeledGraph, t: &LabeledGraph) -> bool {
            fn rec(
                p: &LabeledGraph,
                t: &LabeledGraph,
                depth: u32,
                map: &mut Vec<u32>,
                used: &mut Vec<bool>,
            ) -> bool {
                if depth as usize == p.vertex_count() {
                    return p
                        .edges()
                        .all(|(a, b)| t.has_edge(map[a as usize], map[b as usize]));
                }
                for v in 0..t.vertex_count() as u32 {
                    if !used[v as usize] && p.label(depth) == t.label(v) {
                        used[v as usize] = true;
                        map.push(v);
                        if rec(p, t, depth + 1, map, used) {
                            return true;
                        }
                        map.pop();
                        used[v as usize] = false;
                    }
                }
                false
            }
            if p.vertex_count() > t.vertex_count() {
                return false;
            }
            rec(p, t, 0, &mut Vec::new(), &mut vec![false; t.vertex_count()])
        }
    }
}
