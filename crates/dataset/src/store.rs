//! The id-stable graph store.
//!
//! Dataset-graph ids index the cache's `Answer` and `CGvalid` bitsets
//! (paper Algorithm 2 speaks of "currently maximum graph id m in dataset"),
//! so ids must be dense-ish, monotonically assigned, and **never reused**:
//! a deleted graph leaves a tombstone. The live candidate set `CS_M` is the
//! bitset of non-tombstoned ids.

use gc_graph::{BitSet, GraphError, GraphSource, LabeledGraph, VertexId};

/// Stable dataset-graph identifier (bit position in answer/validity sets).
pub type GraphId = usize;

/// Errors raised by dataset mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The id was never assigned or the graph has been deleted.
    NoSuchGraph(GraphId),
    /// The underlying edge mutation failed (UA on existing edge, UR on
    /// missing edge, bad endpoint…).
    Graph { id: GraphId, source: GraphError },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::NoSuchGraph(id) => write!(f, "no graph with id {id}"),
            DatasetError::Graph { id, source } => write!(f, "graph {id}: {source}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Graph { source, .. } => Some(source),
            DatasetError::NoSuchGraph(_) => None,
        }
    }
}

/// An id-stable store of labeled graphs with ADD/DEL/UA/UR mutations.
#[derive(Debug, Clone, Default)]
pub struct GraphStore {
    slots: Vec<Option<LabeledGraph>>,
    live: usize,
}

impl GraphStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bulk-loads an initial dataset; graph `i` receives id `i`.
    pub fn from_graphs(graphs: Vec<LabeledGraph>) -> Self {
        let live = graphs.len();
        GraphStore {
            slots: graphs.into_iter().map(Some).collect(),
            live,
        }
    }

    /// **ADD**: inserts a graph under a fresh id (`max_id + 1`).
    pub fn add_graph(&mut self, g: LabeledGraph) -> GraphId {
        self.slots.push(Some(g));
        self.live += 1;
        self.slots.len() - 1
    }

    /// **DEL**: removes the graph, leaving a tombstone. The id is never
    /// reused.
    pub fn delete(&mut self, id: GraphId) -> Result<LabeledGraph, DatasetError> {
        match self.slots.get_mut(id) {
            Some(slot @ Some(_)) => {
                self.live -= 1;
                Ok(slot.take().expect("matched Some"))
            }
            _ => Err(DatasetError::NoSuchGraph(id)),
        }
    }

    /// **UA**: adds edge `(u, v)` to graph `id`.
    pub fn add_edge(&mut self, id: GraphId, u: VertexId, v: VertexId) -> Result<(), DatasetError> {
        let g = self.get_mut(id)?;
        g.add_edge(u, v)
            .map_err(|source| DatasetError::Graph { id, source })
    }

    /// **UR**: removes edge `(u, v)` from graph `id`.
    pub fn remove_edge(
        &mut self,
        id: GraphId,
        u: VertexId,
        v: VertexId,
    ) -> Result<(), DatasetError> {
        let g = self.get_mut(id)?;
        g.remove_edge(u, v)
            .map_err(|source| DatasetError::Graph { id, source })
    }

    /// The live graph with this id, if any.
    pub fn get(&self, id: GraphId) -> Option<&LabeledGraph> {
        self.slots.get(id).and_then(Option::as_ref)
    }

    fn get_mut(&mut self, id: GraphId) -> Result<&mut LabeledGraph, DatasetError> {
        self.slots
            .get_mut(id)
            .and_then(Option::as_mut)
            .ok_or(DatasetError::NoSuchGraph(id))
    }

    /// `true` iff `id` refers to a live (non-deleted) graph.
    pub fn is_live(&self, id: GraphId) -> bool {
        matches!(self.slots.get(id), Some(Some(_)))
    }

    /// Number of live graphs.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Number of ids ever assigned (`max_id + 1`).
    pub fn id_span(&self) -> usize {
        self.slots.len()
    }

    /// Iterator over live `(id, graph)` pairs.
    pub fn iter_live(&self) -> impl Iterator<Item = (GraphId, &LabeledGraph)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|g| (i, g)))
    }

    /// The live candidate set `CS_M` — a bitset with one bit per live id.
    pub fn live_bitset(&self) -> BitSet {
        let mut b = BitSet::with_capacity(self.slots.len());
        for (i, s) in self.slots.iter().enumerate() {
            if s.is_some() {
                b.set(i, true);
            }
        }
        b
    }
}

impl GraphSource for GraphStore {
    fn graph(&self, id: usize) -> Option<&LabeledGraph> {
        self.get(id)
    }
    fn id_span(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize) -> LabeledGraph {
        let mut graph = LabeledGraph::new();
        for i in 0..n {
            graph.add_vertex(i as u16);
        }
        for i in 1..n {
            graph.add_edge(i as u32 - 1, i as u32).unwrap();
        }
        graph
    }

    #[test]
    fn add_assigns_monotone_ids() {
        let mut s = GraphStore::new();
        assert_eq!(s.add_graph(g(2)), 0);
        assert_eq!(s.add_graph(g(3)), 1);
        assert_eq!(s.id_span(), 2);
        assert_eq!(s.live_count(), 2);
    }

    #[test]
    fn delete_leaves_tombstone_and_never_reuses() {
        let mut s = GraphStore::from_graphs(vec![g(2), g(3), g(4)]);
        let removed = s.delete(1).unwrap();
        assert_eq!(removed.vertex_count(), 3);
        assert_eq!(s.live_count(), 2);
        assert_eq!(s.id_span(), 3);
        assert!(s.get(1).is_none());
        assert!(!s.is_live(1));
        assert_eq!(s.delete(1), Err(DatasetError::NoSuchGraph(1)));
        // next add gets a brand-new id
        assert_eq!(s.add_graph(g(5)), 3);
        assert_eq!(s.id_span(), 4);
    }

    #[test]
    fn ua_ur_mutate_in_place() {
        let mut s = GraphStore::from_graphs(vec![g(4)]);
        s.add_edge(0, 0, 2).unwrap();
        assert!(s.get(0).unwrap().has_edge(0, 2));
        s.remove_edge(0, 0, 2).unwrap();
        assert!(!s.get(0).unwrap().has_edge(0, 2));
        // error paths
        assert!(matches!(
            s.add_edge(0, 0, 1),
            Err(DatasetError::Graph { id: 0, .. })
        ));
        assert!(matches!(
            s.remove_edge(0, 0, 3),
            Err(DatasetError::Graph { id: 0, .. })
        ));
        assert_eq!(s.add_edge(5, 0, 1), Err(DatasetError::NoSuchGraph(5)));
    }

    #[test]
    fn live_bitset_tracks_membership() {
        let mut s = GraphStore::from_graphs(vec![g(2), g(2), g(2)]);
        s.delete(0).unwrap();
        let live = s.live_bitset();
        assert_eq!(live.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(
            s.iter_live().map(|(i, _)| i).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn graph_source_impl() {
        let mut s = GraphStore::from_graphs(vec![g(2), g(3)]);
        s.delete(0).unwrap();
        assert!(GraphSource::graph(&s, 0).is_none());
        assert_eq!(GraphSource::graph(&s, 1).unwrap().vertex_count(), 3);
        assert_eq!(GraphSource::id_span(&s), 2);
    }
}
