//! The dynamic graph dataset substrate of GraphCache+.
//!
//! The paper's Dataset Manager owns the dataset graphs and the change log.
//! This crate provides:
//!
//! * [`GraphStore`] — an id-stable store of labeled graphs supporting the
//!   four change operations of the paper (ADD, DEL, UA = edge addition,
//!   UR = edge removal). Ids are never reused, so the `BitSet`-indexed
//!   answer/validity structures of the cache stay positionally stable;
//! * [`ChangeLog`] — the append-only dataset log with an *incremental
//!   records* cursor (Algorithm 1 line 5);
//! * [`LogAnalyzer`] — Algorithm 1: categorize the incremental records
//!   into per-graph counters `CT` (total), `CA` (UA-only), `CR` (UR-only);
//! * [`ChangePlan`] / [`PlanExecutor`] — the paper's "Dataset Change Plan"
//!   (§7.1): batches of operations whose occurrence times are uniform over
//!   query ids, with types uniform over {ADD, DEL, UA, UR}; ADD re-draws
//!   from the *initial* dataset to preserve its characteristics, DEL/UA/UR
//!   act on the live dataset at running time;
//! * [`aids::synthetic_aids`] — the synthetic stand-in for the NCI AIDS
//!   antiviral screen dataset, matched to the published moments (see
//!   DESIGN.md §3).

pub mod aids;
pub mod analyzer;
pub mod index;
pub mod log;
pub mod plan;
pub mod retro;
pub mod store;

pub use analyzer::{LogAnalyzer, OpCounters};
pub use index::LabelIndex;
pub use log::{ChangeLog, ChangeOp, ChangeRecord, LogCursor, OpType};
pub use plan::{ChangePlan, ChangePlanConfig, PlanExecutor, PlannedOp};
pub use retro::{NetEffect, NetEffects, RetroAnalyzer};
pub use store::{DatasetError, GraphId, GraphStore};
