//! Retrospective change analysis — the paper's §8 future-work item
//! ("further optimizing CON cache with retrospective validating
//! mechanisms"), implemented as an extension.
//!
//! Algorithm 1/2 classify a graph's pending operations by *category
//! counts*: a UA followed by a UR of the **same edge** leaves the graph
//! bit-identical, yet Algorithm 2 sees "mixed operations" and invalidates
//! everything cached about it. The retrospective analyzer instead folds
//! the incremental records into a **net edge delta** per graph:
//!
//! * net delta empty → the graph is exactly as the cache last saw it:
//!   **all** validity survives;
//! * net delta is additions-only → equivalent to UA-exclusive: positive
//!   subgraph-answers survive (dual for supergraph entries);
//! * net delta is removals-only → equivalent to UR-exclusive;
//! * mixed net delta, or any ADD/DEL → invalidate (as before).
//!
//! This is strictly more precise than Algorithm 1's counters — every bit
//! CON keeps, CON-R keeps too — at the cost of tracking edge endpoints in
//! the log (see [`crate::ChangeRecord::edge`]). The improvement is
//! workload-dependent: it pays off exactly when changes oscillate (edit
//! churn, undo-heavy pipelines, A/B flapping) and nets out.

use std::collections::HashMap;

use gc_graph::VertexId;

use crate::log::{ChangeRecord, OpType};
use crate::store::GraphId;

/// The net effect of all pending operations on one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEffect {
    /// Changes cancelled out exactly — the graph is unchanged.
    Neutral,
    /// Net effect is edge additions only (⊇ the old graph).
    AddOnly,
    /// Net effect is edge removals only (⊆ the old graph).
    RemoveOnly,
    /// Both additions and removals remain, or the graph was ADDed/DELed —
    /// no cached knowledge about it can be kept.
    Invalidating,
}

/// Per-graph net effects of an incremental record range.
#[derive(Debug, Clone, Default)]
pub struct NetEffects {
    effects: HashMap<GraphId, NetEffect>,
}

impl NetEffects {
    /// Graphs touched by at least one operation.
    pub fn touched(&self) -> impl Iterator<Item = GraphId> + '_ {
        self.effects.keys().copied()
    }

    /// The net effect for a graph (`None` = untouched).
    pub fn get(&self, id: GraphId) -> Option<&NetEffect> {
        self.effects.get(&id)
    }

    /// `true` iff nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }
}

/// The retrospective log analyzer.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetroAnalyzer;

impl RetroAnalyzer {
    /// Folds incremental records into per-graph net effects.
    pub fn analyze(records: &[ChangeRecord]) -> NetEffects {
        // per graph: signed count per edge (+1 per UA, -1 per UR), plus a
        // structural flag for ADD/DEL
        let mut deltas: HashMap<GraphId, HashMap<(VertexId, VertexId), i32>> = HashMap::new();
        let mut structural: HashMap<GraphId, bool> = HashMap::new();
        for r in records {
            match r.op {
                OpType::Add | OpType::Del => {
                    structural.insert(r.graph_id, true);
                }
                OpType::Ua | OpType::Ur => {
                    let sign = if r.op == OpType::Ua { 1 } else { -1 };
                    match r.edge {
                        Some(e) => {
                            *deltas.entry(r.graph_id).or_default().entry(e).or_insert(0) += sign;
                        }
                        None => {
                            // a log without endpoints cannot be folded:
                            // conservatively treat as structural
                            structural.insert(r.graph_id, true);
                        }
                    }
                }
            }
        }

        let mut effects = HashMap::new();
        for (&id, _) in structural.iter() {
            effects.insert(id, NetEffect::Invalidating);
        }
        for (id, delta) in deltas {
            if effects.contains_key(&id) {
                continue; // structural wins
            }
            let mut adds = false;
            let mut removes = false;
            for (_, net) in delta {
                if net > 0 {
                    adds = true;
                } else if net < 0 {
                    removes = true;
                }
            }
            let effect = match (adds, removes) {
                (false, false) => NetEffect::Neutral,
                (true, false) => NetEffect::AddOnly,
                (false, true) => NetEffect::RemoveOnly,
                (true, true) => NetEffect::Invalidating,
            };
            effects.insert(id, effect);
        }
        NetEffects { effects }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ua(id: GraphId, u: VertexId, v: VertexId) -> ChangeRecord {
        ChangeRecord::edge(id, OpType::Ua, u, v)
    }
    fn ur(id: GraphId, u: VertexId, v: VertexId) -> ChangeRecord {
        ChangeRecord::edge(id, OpType::Ur, u, v)
    }

    #[test]
    fn empty_log() {
        let e = RetroAnalyzer::analyze(&[]);
        assert!(e.is_empty());
        assert!(e.get(0).is_none());
    }

    #[test]
    fn cancelling_ops_are_neutral() {
        // UA(0,1) then UR(0,1) — and the reverse order, with swapped
        // endpoint notation — both net out
        let e = RetroAnalyzer::analyze(&[ua(3, 0, 1), ur(3, 1, 0)]);
        assert_eq!(e.get(3), Some(&NetEffect::Neutral));

        let e2 = RetroAnalyzer::analyze(&[ur(3, 5, 2), ua(3, 2, 5)]);
        assert_eq!(e2.get(3), Some(&NetEffect::Neutral));
    }

    #[test]
    fn residual_directions() {
        // add two edges, remove one of them → AddOnly
        let e = RetroAnalyzer::analyze(&[ua(1, 0, 1), ua(1, 2, 3), ur(1, 0, 1)]);
        assert_eq!(e.get(1), Some(&NetEffect::AddOnly));
        // remove two, re-add one → RemoveOnly
        let e2 = RetroAnalyzer::analyze(&[ur(1, 0, 1), ur(1, 2, 3), ua(1, 0, 1)]);
        assert_eq!(e2.get(1), Some(&NetEffect::RemoveOnly));
        // one net add + one net remove → Invalidating
        let e3 = RetroAnalyzer::analyze(&[ua(1, 0, 1), ur(1, 2, 3)]);
        assert_eq!(e3.get(1), Some(&NetEffect::Invalidating));
    }

    #[test]
    fn structural_ops_invalidate_regardless() {
        let e = RetroAnalyzer::analyze(&[
            ua(2, 0, 1),
            ur(2, 0, 1),
            ChangeRecord::structural(2, OpType::Del),
        ]);
        assert_eq!(e.get(2), Some(&NetEffect::Invalidating));
        let e2 = RetroAnalyzer::analyze(&[ChangeRecord::structural(9, OpType::Add)]);
        assert_eq!(e2.get(9), Some(&NetEffect::Invalidating));
    }

    #[test]
    fn endpointless_edge_records_are_conservative() {
        // a UA without endpoints (e.g. from a legacy log) cannot be folded
        let legacy = ChangeRecord {
            graph_id: 5,
            op: OpType::Ua,
            edge: None,
        };
        let e = RetroAnalyzer::analyze(&[legacy]);
        assert_eq!(e.get(5), Some(&NetEffect::Invalidating));
    }

    #[test]
    fn multiple_graphs_tracked_independently() {
        let e = RetroAnalyzer::analyze(&[ua(1, 0, 1), ur(1, 0, 1), ua(2, 0, 1)]);
        assert_eq!(e.get(1), Some(&NetEffect::Neutral));
        assert_eq!(e.get(2), Some(&NetEffect::AddOnly));
        let mut touched: Vec<_> = e.touched().collect();
        touched.sort_unstable();
        assert_eq!(touched, vec![1, 2]);
    }

    #[test]
    fn oscillation_beyond_one_round_trip() {
        // UA, UR, UA, UR of the same edge nets to neutral
        let recs = [ua(0, 1, 2), ur(0, 1, 2), ua(0, 1, 2), ur(0, 1, 2)];
        let e = RetroAnalyzer::analyze(&recs);
        assert_eq!(e.get(0), Some(&NetEffect::Neutral));
        // odd number of flips leaves a residue
        let recs2 = [ua(0, 1, 2), ur(0, 1, 2), ua(0, 1, 2)];
        let e2 = RetroAnalyzer::analyze(&recs2);
        assert_eq!(e2.get(0), Some(&NetEffect::AddOnly));
    }
}
