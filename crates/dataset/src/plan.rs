//! The Dataset Change Plan (paper §7.1).
//!
//! > "Dataset change operations are performed in batches, with occurrence
//! > time indicated by the id of queries in workload. The plan we used for
//! > AIDS consists of 2,000 operations (in 100 batches, 20 operations per
//! > batch), during the processing of 10,000 queries. A batch of
//! > operations are generated as following: first, an occurrence time for
//! > the batch is selected uniformly at random from the id of queries;
//! > then, a type uniformly selected from {ADD, DEL, UA, UR}, a graph
//! > uniformly selected from dataset (ADD using the initial dataset …;
//! > DEL, UA and UR using the up-to-date dataset at running time) and a
//! > uniformly selected edge within the graph providing UA or UR being the
//! > selected type (UA would add an edge that has not been in the graph
//! > yet; UR would remove an existed edge)."
//!
//! Because DEL/UA/UR must bind to the *live* dataset at running time, a
//! plan stores only `(occurrence time, op type)` pairs ([`ChangePlan`]);
//! the [`PlanExecutor`] materializes concrete operations against the store
//! as the query stream advances and appends the applied records to the
//! [`ChangeLog`].

use gc_graph::{LabeledGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::log::{ChangeLog, OpType};
use crate::store::GraphStore;

/// A planned (not yet materialized) operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedOp {
    /// The operation category to materialize.
    pub op: OpType,
}

/// One batch of planned operations, due when the query with index
/// `at_query` arrives.
#[derive(Debug, Clone)]
pub struct ChangeBatch {
    /// Workload position (query index) at which the batch fires.
    pub at_query: usize,
    /// Operations in the batch.
    pub ops: Vec<PlannedOp>,
}

/// Configuration for [`ChangePlan::generate`]. The paper's AIDS plan is
/// `batches = 100`, `ops_per_batch = 20`, `num_queries = 10_000`.
#[derive(Debug, Clone, Copy)]
pub struct ChangePlanConfig {
    /// Number of batches.
    pub batches: usize,
    /// Operations per batch.
    pub ops_per_batch: usize,
    /// Workload length the occurrence times are drawn from.
    pub num_queries: usize,
    /// RNG seed for occurrence times and op types.
    pub seed: u64,
}

impl ChangePlanConfig {
    /// The paper's plan for AIDS: 2,000 ops in 100 batches of 20 over
    /// 10,000 queries.
    pub fn paper_aids() -> Self {
        ChangePlanConfig {
            batches: 100,
            ops_per_batch: 20,
            num_queries: 10_000,
            seed: 0x6c75,
        }
    }

    /// A proportionally scaled plan for a workload of `num_queries`
    /// queries, preserving the paper's 20-ops-per-batch granularity and
    /// ops/query ratio (0.2).
    pub fn scaled(num_queries: usize, seed: u64) -> Self {
        let total_ops = num_queries / 5; // paper ratio: 2,000 ops / 10,000 queries
        let ops_per_batch = 20usize.min(total_ops.max(1));
        let batches = (total_ops / ops_per_batch).max(1);
        ChangePlanConfig {
            batches,
            ops_per_batch,
            num_queries,
            seed,
        }
    }
}

/// A generated change plan: batches sorted by occurrence time.
#[derive(Debug, Clone)]
pub struct ChangePlan {
    /// Batches in non-decreasing `at_query` order.
    pub batches: Vec<ChangeBatch>,
}

impl ChangePlan {
    /// Generates a plan per the paper's recipe.
    pub fn generate(cfg: &ChangePlanConfig) -> ChangePlan {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut batches: Vec<ChangeBatch> = (0..cfg.batches)
            .map(|_| {
                let at_query = if cfg.num_queries == 0 {
                    0
                } else {
                    rng.random_range(0..cfg.num_queries)
                };
                let ops = (0..cfg.ops_per_batch)
                    .map(|_| PlannedOp {
                        op: OpType::ALL[rng.random_range(0..4usize)],
                    })
                    .collect();
                ChangeBatch { at_query, ops }
            })
            .collect();
        batches.sort_by_key(|b| b.at_query);
        ChangePlan { batches }
    }

    /// Total planned operations.
    pub fn total_ops(&self) -> usize {
        self.batches.iter().map(|b| b.ops.len()).sum()
    }

    /// An empty plan (static dataset — the GC baseline setting).
    pub fn empty() -> ChangePlan {
        ChangePlan {
            batches: Vec::new(),
        }
    }
}

/// Materializes a [`ChangePlan`] against a live [`GraphStore`] as the
/// workload advances.
#[derive(Debug)]
pub struct PlanExecutor {
    plan: ChangePlan,
    /// Snapshot of the initial dataset; ADD re-draws from here "so as to
    /// maximally keep the original dataset characteristics".
    initial: Vec<LabeledGraph>,
    rng: StdRng,
    next_batch: usize,
    /// Operations that could not be materialized (e.g. UR on an edgeless
    /// dataset); counted for reporting, never silently retried forever.
    pub skipped: usize,
}

impl PlanExecutor {
    /// Creates an executor. `initial` should be the dataset as loaded
    /// (before any change).
    pub fn new(plan: ChangePlan, initial: Vec<LabeledGraph>, seed: u64) -> Self {
        PlanExecutor {
            plan,
            initial,
            rng: StdRng::seed_from_u64(seed),
            next_batch: 0,
            skipped: 0,
        }
    }

    /// `true` iff every batch has fired.
    pub fn finished(&self) -> bool {
        self.next_batch >= self.plan.batches.len()
    }

    /// Fires all batches due at or before `query_idx`, mutating `store` and
    /// appending to `log`. Returns the number of operations applied.
    pub fn apply_due(
        &mut self,
        query_idx: usize,
        store: &mut GraphStore,
        log: &mut ChangeLog,
    ) -> usize {
        let mut applied = 0;
        while self.next_batch < self.plan.batches.len()
            && self.plan.batches[self.next_batch].at_query <= query_idx
        {
            let ops: Vec<PlannedOp> = self.plan.batches[self.next_batch].ops.clone();
            for planned in ops {
                if self.apply_one(planned.op, store, log) {
                    applied += 1;
                } else {
                    self.skipped += 1;
                }
            }
            self.next_batch += 1;
        }
        applied
    }

    fn apply_one(&mut self, op: OpType, store: &mut GraphStore, log: &mut ChangeLog) -> bool {
        match op {
            OpType::Add => {
                if self.initial.is_empty() {
                    return false;
                }
                let pick = self.rng.random_range(0..self.initial.len());
                let id = store.add_graph(self.initial[pick].clone());
                log.append(id, OpType::Add);
                true
            }
            OpType::Del => match self.pick_live(store, |_| true) {
                Some(id) => {
                    store.delete(id).expect("picked a live graph");
                    log.append(id, OpType::Del);
                    true
                }
                None => false,
            },
            OpType::Ua => {
                // pick a live graph with at least one absent edge slot
                match self.pick_live(store, |g| {
                    let n = g.vertex_count();
                    n >= 2 && g.edge_count() < n * (n - 1) / 2
                }) {
                    Some(id) => {
                        let (u, v) = {
                            let g = store.get(id).expect("live");
                            self.pick_absent_edge(g)
                        };
                        store.add_edge(id, u, v).expect("edge chosen absent");
                        log.append_edge(id, OpType::Ua, u, v);
                        true
                    }
                    None => false,
                }
            }
            OpType::Ur => match self.pick_live(store, |g| g.edge_count() > 0) {
                Some(id) => {
                    let (u, v) = {
                        let g = store.get(id).expect("live");
                        let edges: Vec<_> = g.edges().collect();
                        edges[self.rng.random_range(0..edges.len())]
                    };
                    store.remove_edge(id, u, v).expect("edge chosen present");
                    log.append_edge(id, OpType::Ur, u, v);
                    true
                }
                None => false,
            },
        }
    }

    /// Uniformly picks a live graph id satisfying `pred`, with bounded
    /// rejection sampling followed by an exhaustive fallback.
    fn pick_live(
        &mut self,
        store: &GraphStore,
        pred: impl Fn(&LabeledGraph) -> bool,
    ) -> Option<usize> {
        let span = store.id_span();
        if span == 0 || store.live_count() == 0 {
            return None;
        }
        for _ in 0..64 {
            let id = self.rng.random_range(0..span);
            if let Some(g) = store.get(id) {
                if pred(g) {
                    return Some(id);
                }
            }
        }
        // rare fallback: scan
        let candidates: Vec<usize> = store
            .iter_live()
            .filter(|(_, g)| pred(g))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.random_range(0..candidates.len())])
        }
    }

    /// Uniformly picks an absent (non-)edge of `g`; caller guarantees one
    /// exists.
    fn pick_absent_edge(&mut self, g: &LabeledGraph) -> (VertexId, VertexId) {
        let n = g.vertex_count() as u32;
        loop {
            let u = self.rng.random_range(0..n);
            let v = self.rng.random_range(0..n);
            if u != v && !g.has_edge(u, v) {
                return (u, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::generate::random_connected_graph;

    fn small_dataset(count: usize, seed: u64) -> Vec<LabeledGraph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let n = rng.random_range(4..10usize);
                random_connected_graph(&mut rng, n, 2, |r| r.random_range(0..4u16))
            })
            .collect()
    }

    #[test]
    fn generate_respects_config() {
        let cfg = ChangePlanConfig {
            batches: 10,
            ops_per_batch: 5,
            num_queries: 100,
            seed: 3,
        };
        let plan = ChangePlan::generate(&cfg);
        assert_eq!(plan.batches.len(), 10);
        assert_eq!(plan.total_ops(), 50);
        // sorted occurrence times within range
        for w in plan.batches.windows(2) {
            assert!(w[0].at_query <= w[1].at_query);
        }
        assert!(plan.batches.iter().all(|b| b.at_query < 100));
    }

    #[test]
    fn paper_and_scaled_configs() {
        let p = ChangePlanConfig::paper_aids();
        assert_eq!(p.batches * p.ops_per_batch, 2000);
        let s = ChangePlanConfig::scaled(1000, 1);
        assert_eq!(s.batches * s.ops_per_batch, 200);
        assert_eq!(s.ops_per_batch, 20);
        // tiny workloads still produce a valid plan
        let t = ChangePlanConfig::scaled(10, 1);
        assert!(t.batches >= 1 && t.ops_per_batch >= 1);
    }

    #[test]
    fn executor_applies_batches_in_order() {
        let initial = small_dataset(20, 7);
        let mut store = GraphStore::from_graphs(initial.clone());
        let mut log = ChangeLog::new();
        let cfg = ChangePlanConfig {
            batches: 5,
            ops_per_batch: 4,
            num_queries: 50,
            seed: 11,
        };
        let plan = ChangePlan::generate(&cfg);
        let first_due = plan.batches[0].at_query;
        let mut exec = PlanExecutor::new(plan, initial, 13);

        // nothing due before the first batch time
        if first_due > 0 {
            assert_eq!(exec.apply_due(first_due - 1, &mut store, &mut log), 0);
        }
        let mut total = 0;
        for q in 0..50 {
            total += exec.apply_due(q, &mut store, &mut log);
        }
        assert!(exec.finished());
        assert_eq!(total + exec.skipped, 20);
        assert_eq!(log.len(), total);
    }

    #[test]
    fn ops_preserve_store_invariants() {
        let initial = small_dataset(10, 21);
        let mut store = GraphStore::from_graphs(initial.clone());
        let mut log = ChangeLog::new();
        let cfg = ChangePlanConfig {
            batches: 30,
            ops_per_batch: 10,
            num_queries: 30,
            seed: 5,
        };
        let plan = ChangePlan::generate(&cfg);
        let mut exec = PlanExecutor::new(plan, initial, 5);
        for q in 0..30 {
            exec.apply_due(q, &mut store, &mut log);
        }
        // log record types match counters recomputed from scratch
        let counters = crate::analyzer::LogAnalyzer::analyze(log.records_since(Default::default()));
        let total: u32 = counters.total.values().sum();
        assert_eq!(total as usize, log.len());
        // every live graph is still a simple graph (no panic implies sorted
        // adjacency invariants held throughout)
        for (_, g) in store.iter_live() {
            for v in g.vertices() {
                let ns = g.neighbors(v);
                assert!(ns.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn executor_skips_when_dataset_exhausted() {
        // dataset of one tiny graph; DELs will eventually exhaust it
        let initial = vec![LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]).unwrap()];
        let mut store = GraphStore::from_graphs(initial.clone());
        let mut log = ChangeLog::new();
        // plan with many DELs: craft manually
        let plan = ChangePlan {
            batches: vec![ChangeBatch {
                at_query: 0,
                ops: vec![PlannedOp { op: OpType::Del }; 5],
            }],
        };
        let mut exec = PlanExecutor::new(plan, initial, 2);
        let applied = exec.apply_due(0, &mut store, &mut log);
        assert_eq!(applied, 1, "only one graph existed to delete");
        assert_eq!(exec.skipped, 4);
        assert_eq!(store.live_count(), 0);
    }
}
