//! The dataset change log.
//!
//! Every applied change appends a [`ChangeRecord`] — `(graph id, op type)`
//! — exactly the information Algorithm 1 consumes. Consumers (the Cache
//! Validator, via the Log Analyzer) remember a [`LogCursor`]; the records
//! appended after their cursor are the paper's "incremental records that
//! have not been reflected in cache" (Algorithm 1 line 5).

use gc_graph::{LabeledGraph, VertexId};

use crate::store::GraphId;

/// The four dataset change categories of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpType {
    /// Graph addition.
    Add,
    /// Graph deletion.
    Del,
    /// Graph update by edge addition.
    Ua,
    /// Graph update by edge removal.
    Ur,
}

impl OpType {
    /// All types, in the paper's enumeration order.
    pub const ALL: [OpType; 4] = [OpType::Add, OpType::Del, OpType::Ua, OpType::Ur];

    /// Paper abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            OpType::Add => "ADD",
            OpType::Del => "DEL",
            OpType::Ua => "UA",
            OpType::Ur => "UR",
        }
    }
}

impl std::fmt::Display for OpType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully materialized change operation, ready to apply to a
/// [`crate::GraphStore`].
#[derive(Debug, Clone)]
pub enum ChangeOp {
    /// Insert this graph under a fresh id.
    Add(LabeledGraph),
    /// Delete the graph with this id.
    Del(GraphId),
    /// Add edge `(u, v)` to graph `id`.
    Ua {
        /// Target graph id.
        id: GraphId,
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// Remove edge `(u, v)` from graph `id`.
    Ur {
        /// Target graph id.
        id: GraphId,
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
}

impl ChangeOp {
    /// The log category of this operation.
    pub fn op_type(&self) -> OpType {
        match self {
            ChangeOp::Add(_) => OpType::Add,
            ChangeOp::Del(_) => OpType::Del,
            ChangeOp::Ua { .. } => OpType::Ua,
            ChangeOp::Ur { .. } => OpType::Ur,
        }
    }
}

/// One line of the dataset log: which graph changed, and how.
///
/// `edge` carries the touched endpoints for UA/UR records (normalized
/// `u < v`). Algorithm 1 ignores it; the *retrospective* validator (the
/// paper's future-work extension, implemented in `gc-core`) uses it to
/// detect changes that net out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeRecord {
    /// The affected dataset graph (for ADD: the id the graph received).
    pub graph_id: GraphId,
    /// The operation category.
    pub op: OpType,
    /// For UA/UR: the edge endpoints, normalized `u < v`. `None` for
    /// ADD/DEL.
    pub edge: Option<(VertexId, VertexId)>,
}

impl ChangeRecord {
    /// An ADD/DEL record.
    pub fn structural(graph_id: GraphId, op: OpType) -> Self {
        debug_assert!(matches!(op, OpType::Add | OpType::Del));
        ChangeRecord {
            graph_id,
            op,
            edge: None,
        }
    }

    /// A UA/UR record with its edge (endpoints normalized).
    pub fn edge(graph_id: GraphId, op: OpType, u: VertexId, v: VertexId) -> Self {
        debug_assert!(matches!(op, OpType::Ua | OpType::Ur));
        ChangeRecord {
            graph_id,
            op,
            edge: Some((u.min(v), u.max(v))),
        }
    }
}

/// A consumer's position in the log; records at indices `>= cursor` are
/// the consumer's pending "incremental records".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogCursor(pub usize);

/// Append-only dataset change log.
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    records: Vec<ChangeRecord>,
}

impl ChangeLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an ADD/DEL record.
    pub fn append(&mut self, graph_id: GraphId, op: OpType) {
        self.records.push(ChangeRecord {
            graph_id,
            op,
            edge: None,
        });
    }

    /// Appends a UA/UR record with its edge endpoints.
    pub fn append_edge(&mut self, graph_id: GraphId, op: OpType, u: VertexId, v: VertexId) {
        self.records.push(ChangeRecord::edge(graph_id, op, u, v));
    }

    /// Total records ever appended.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff nothing was ever logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The cursor pointing just past the current tail.
    pub fn head(&self) -> LogCursor {
        LogCursor(self.records.len())
    }

    /// The incremental records since `cursor` (Algorithm 1 line 5).
    pub fn records_since(&self, cursor: LogCursor) -> &[ChangeRecord] {
        &self.records[cursor.0.min(self.records.len())..]
    }

    /// `true` iff records were appended after `cursor` — the Dataset
    /// Manager's "has the dataset been changed recently?" check that gates
    /// cache validation on each query arrival.
    pub fn changed_since(&self, cursor: LogCursor) -> bool {
        cursor.0 < self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_tracks_incremental_records() {
        let mut log = ChangeLog::new();
        assert!(log.is_empty());
        let c0 = log.head();
        assert!(!log.changed_since(c0));

        log.append(3, OpType::Ua);
        log.append(3, OpType::Ur);
        assert!(log.changed_since(c0));
        assert_eq!(log.records_since(c0).len(), 2);

        let c1 = log.head();
        log.append(7, OpType::Del);
        let inc = log.records_since(c1);
        assert_eq!(inc, &[ChangeRecord::structural(7, OpType::Del)]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn stale_cursor_is_clamped() {
        let log = ChangeLog::new();
        assert_eq!(log.records_since(LogCursor(10)).len(), 0);
    }

    #[test]
    fn edge_records_normalize_endpoints() {
        let r = ChangeRecord::edge(4, OpType::Ua, 9, 2);
        assert_eq!(r.edge, Some((2, 9)));
        let mut log = ChangeLog::new();
        log.append_edge(4, OpType::Ur, 5, 1);
        assert_eq!(
            log.records_since(LogCursor::default())[0].edge,
            Some((1, 5))
        );
    }

    #[test]
    fn op_types_roundtrip() {
        for t in OpType::ALL {
            assert!(!t.name().is_empty());
        }
        assert_eq!(OpType::Ua.to_string(), "UA");
        let op = ChangeOp::Ua { id: 1, u: 0, v: 1 };
        assert_eq!(op.op_type(), OpType::Ua);
        assert_eq!(ChangeOp::Del(0).op_type(), OpType::Del);
        assert_eq!(ChangeOp::Add(LabeledGraph::new()).op_type(), OpType::Add);
        assert_eq!(ChangeOp::Ur { id: 0, u: 0, v: 1 }.op_type(), OpType::Ur);
    }
}
